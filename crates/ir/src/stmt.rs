//! Statements: the effectful, structured part of the IR.

use std::fmt;

use crate::expr::{BinOp, Expr};
use crate::types::VarId;

/// Identifier of a shared-memory array declared by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SharedId(pub u32);

impl SharedId {
    /// Index into the kernel's `shared` declarations.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SharedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A reference to an addressable memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemRef {
    /// A buffer parameter of the enclosing kernel, by parameter index.
    /// The parameter's declaration supplies the memory space.
    Param(usize),
    /// A block-shared scratchpad array declared by the kernel.
    Shared(SharedId),
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemRef::Param(i) => write!(f, "p{i}"),
            MemRef::Shared(s) => write!(f, "{s}"),
        }
    }
}

/// Atomic read-modify-write operations.
///
/// The paper's reduction detection (§3.3.2) treats loops containing atomic
/// add/min/max/inc/and/or/xor as reduction loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// `atomicAdd`
    Add,
    /// `atomicMin`
    Min,
    /// `atomicMax`
    Max,
    /// `atomicInc` (modeled as add of the operand)
    Inc,
    /// `atomicAnd`
    And,
    /// `atomicOr`
    Or,
    /// `atomicXor`
    Xor,
}

impl AtomicOp {
    /// The plain binary operator with the same combining semantics.
    pub fn to_bin_op(self) -> BinOp {
        match self {
            AtomicOp::Add | AtomicOp::Inc => BinOp::Add,
            AtomicOp::Min => BinOp::Min,
            AtomicOp::Max => BinOp::Max,
            AtomicOp::And => BinOp::And,
            AtomicOp::Or => BinOp::Or,
            AtomicOp::Xor => BinOp::Xor,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AtomicOp::Add => "atomic_add",
            AtomicOp::Min => "atomic_min",
            AtomicOp::Max => "atomic_max",
            AtomicOp::Inc => "atomic_inc",
            AtomicOp::And => "atomic_and",
            AtomicOp::Or => "atomic_or",
            AtomicOp::Xor => "atomic_xor",
        }
    }
}

impl fmt::Display for AtomicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The continuation condition of a counted loop, compared against the loop
/// variable each iteration.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum LoopCond {
    /// `var < bound`
    Lt(Expr),
    /// `var <= bound`
    Le(Expr),
    /// `var > bound`
    Gt(Expr),
    /// `var >= bound`
    Ge(Expr),
}

impl LoopCond {
    /// The bound expression, regardless of comparison direction.
    pub fn bound(&self) -> &Expr {
        match self {
            LoopCond::Lt(e) | LoopCond::Le(e) | LoopCond::Gt(e) | LoopCond::Ge(e) => e,
        }
    }

    /// Map the bound expression, preserving the comparison direction.
    pub fn map_bound(self, f: impl FnOnce(Expr) -> Expr) -> LoopCond {
        match self {
            LoopCond::Lt(e) => LoopCond::Lt(f(e)),
            LoopCond::Le(e) => LoopCond::Le(f(e)),
            LoopCond::Gt(e) => LoopCond::Gt(f(e)),
            LoopCond::Ge(e) => LoopCond::Ge(f(e)),
        }
    }
}

/// The per-iteration update of a counted loop's variable.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum LoopStep {
    /// `var += step`
    Add(Expr),
    /// `var -= step`
    Sub(Expr),
    /// `var *= step`
    Mul(Expr),
    /// `var <<= step`
    Shl(Expr),
    /// `var >>= step`
    Shr(Expr),
}

impl LoopStep {
    /// The step expression.
    pub fn amount(&self) -> &Expr {
        match self {
            LoopStep::Add(e)
            | LoopStep::Sub(e)
            | LoopStep::Mul(e)
            | LoopStep::Shl(e)
            | LoopStep::Shr(e) => e,
        }
    }

    /// Map the step expression, preserving the update kind.
    ///
    /// This is the hook used by the reduction optimization, which multiplies
    /// an additive step by the skipping rate.
    pub fn map_amount(self, f: impl FnOnce(Expr) -> Expr) -> LoopStep {
        match self {
            LoopStep::Add(e) => LoopStep::Add(f(e)),
            LoopStep::Sub(e) => LoopStep::Sub(f(e)),
            LoopStep::Mul(e) => LoopStep::Mul(f(e)),
            LoopStep::Shl(e) => LoopStep::Shl(f(e)),
            LoopStep::Shr(e) => LoopStep::Shr(f(e)),
        }
    }
}

/// A structured statement.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Stmt {
    /// Bind a local variable to the value of an expression. A `Let` may
    /// later be re-assigned with [`Stmt::Assign`] (locals are mutable, as in
    /// the C kernels the IR mirrors).
    Let {
        /// Variable being bound.
        var: VarId,
        /// Initializer.
        init: Expr,
    },
    /// Overwrite an existing local variable.
    Assign {
        /// Variable being assigned.
        var: VarId,
        /// New value.
        value: Expr,
    },
    /// Write `value` to `mem[index]`.
    Store {
        /// Destination memory object.
        mem: MemRef,
        /// Element index (type `i32`).
        index: Expr,
        /// Value to write.
        value: Expr,
    },
    /// Atomic read-modify-write of `mem[index]`.
    Atomic {
        /// Combining operation.
        op: AtomicOp,
        /// Destination memory object.
        mem: MemRef,
        /// Element index (type `i32`).
        index: Expr,
        /// Operand value.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Boolean condition, evaluated per thread.
        cond: Expr,
        /// Statements executed where the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed where it does not.
        else_body: Vec<Stmt>,
    },
    /// Counted loop: `for (var = init; var COND; var STEP) body`.
    For {
        /// Loop variable (must be a declared local).
        var: VarId,
        /// Initial value.
        init: Expr,
        /// Continuation condition.
        cond: LoopCond,
        /// Per-iteration update.
        step: LoopStep,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Block-wide barrier (`__syncthreads`).
    Sync,
    /// Return a value from a device function (not valid in kernels).
    Return(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_maps_to_binop() {
        assert_eq!(AtomicOp::Add.to_bin_op(), BinOp::Add);
        assert_eq!(AtomicOp::Inc.to_bin_op(), BinOp::Add);
        assert_eq!(AtomicOp::Min.to_bin_op(), BinOp::Min);
        assert_eq!(AtomicOp::Xor.to_bin_op(), BinOp::Xor);
    }

    #[test]
    fn loop_step_map_preserves_kind() {
        let step = LoopStep::Add(Expr::i32(1));
        let scaled = step.map_amount(|e| e * Expr::i32(4));
        match scaled {
            LoopStep::Add(e) => assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _))),
            other => panic!("kind changed: {other:?}"),
        }
    }

    #[test]
    fn loop_cond_bound_access() {
        let cond = LoopCond::Lt(Expr::i32(10));
        assert_eq!(cond.bound(), &Expr::i32(10));
        let mapped = cond.map_bound(|e| e - Expr::i32(2));
        assert!(matches!(mapped, LoopCond::Lt(_)));
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!MemRef::Param(0).to_string().is_empty());
        assert!(!MemRef::Shared(SharedId(1)).to_string().is_empty());
        assert!(!AtomicOp::Add.to_string().is_empty());
    }
}
