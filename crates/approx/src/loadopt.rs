//! Redundant-load elimination for one read-only buffer.
//!
//! The stencil optimization (paper §3.2) snaps neighboring accesses to a
//! representative element, which leaves several loads with *identical*
//! index expressions. The actual saving comes from removing those memory
//! instructions; this pass does that with two classic transformations,
//! restricted to a single buffer that the kernel never writes:
//!
//! * **CSE**: within a block, repeated loads with structurally equal
//!   indices collapse to one `let`,
//! * **hoisting**: loads inside a `for` body whose index does not depend on
//!   the loop variable (or anything assigned in the body) move in front of
//!   the loop.
//!
//! Scoping follows SIMT masking rules: a binding introduced inside an `if`
//! arm or loop body is not reused outside of it, and loads under a `Select`
//! arm are left untouched (they execute under a refined mask).

use paraprox_ir::{Expr, Kernel, LocalDecl, MemRef, Stmt, Ty, VarId};

struct Ctx<'k> {
    buffer: MemRef,
    locals: &'k mut Vec<LocalDecl>,
}

impl Ctx<'_> {
    fn fresh(&mut self) -> VarId {
        let id = VarId(self.locals.len() as u32);
        self.locals.push(LocalDecl {
            name: format!("ld{}", self.locals.len()),
            ty: Ty::F32,
        });
        id
    }
}

type Env = Vec<(Expr, VarId)>;

/// Does the loop provably execute its body at least once? Requires constant
/// `init` and bound with a satisfied comparison. Conservative: anything
/// non-constant returns `false`.
fn provably_runs_once(
    init: &Expr,
    cond: &paraprox_ir::LoopCond,
    _step: &paraprox_ir::LoopStep,
) -> bool {
    use paraprox_ir::{LoopCond, Scalar};
    let as_i64 = |e: &Expr| match e {
        Expr::Const(Scalar::I32(v)) => Some(i64::from(*v)),
        Expr::Const(Scalar::U32(v)) => Some(i64::from(*v)),
        _ => None,
    };
    let (Some(start), Some(bound)) = (as_i64(init), as_i64(cond.bound())) else {
        return false;
    };
    match cond {
        LoopCond::Lt(_) => start < bound,
        LoopCond::Le(_) => start <= bound,
        LoopCond::Gt(_) => start > bound,
        LoopCond::Ge(_) => start >= bound,
    }
}

/// Replace loads from the target buffer in `e`, using `env` for known
/// indices and emitting new `let`s into `prelude` for unknown ones.
/// `Select` arms are not descended into (their loads are conditional).
fn replace_loads(e: Expr, ctx: &mut Ctx<'_>, env: &mut Env, prelude: &mut Vec<Stmt>) -> Expr {
    match e {
        Expr::Load { mem, index } if mem == ctx.buffer => {
            let index = replace_loads(*index, ctx, env, prelude);
            if let Some((_, var)) = env.iter().find(|(idx, _)| *idx == index) {
                return Expr::Var(*var);
            }
            let var = ctx.fresh();
            prelude.push(Stmt::Let {
                var,
                init: Expr::Load {
                    mem,
                    index: Box::new(index.clone()),
                },
            });
            env.push((index, var));
            Expr::Var(var)
        }
        Expr::Load { mem, index } => Expr::Load {
            mem,
            index: Box::new(replace_loads(*index, ctx, env, prelude)),
        },
        Expr::Unary(op, a) => Expr::Unary(op, Box::new(replace_loads(*a, ctx, env, prelude))),
        Expr::Cast(ty, a) => Expr::Cast(ty, Box::new(replace_loads(*a, ctx, env, prelude))),
        Expr::Binary(op, a, b) => Expr::Binary(
            op,
            Box::new(replace_loads(*a, ctx, env, prelude)),
            Box::new(replace_loads(*b, ctx, env, prelude)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            op,
            Box::new(replace_loads(*a, ctx, env, prelude)),
            Box::new(replace_loads(*b, ctx, env, prelude)),
        ),
        // Select arms execute under refined masks; leave them alone.
        e @ Expr::Select { .. } => e,
        Expr::Call { func, args } => Expr::Call {
            func,
            args: args
                .into_iter()
                .map(|a| replace_loads(a, ctx, env, prelude))
                .collect(),
        },
        other => other,
    }
}

/// Variables assigned anywhere in a statement list (including `Let`s, loop
/// variables, and nested bodies).
fn assigned_vars(stmts: &[Stmt], out: &mut Vec<VarId>) {
    paraprox_ir::for_each_stmt(stmts, &mut |stmt| match stmt {
        Stmt::Let { var, .. } | Stmt::Assign { var, .. } if !out.contains(var) => {
            out.push(*var);
        }
        Stmt::For { var, .. } if !out.contains(var) => {
            out.push(*var);
        }
        _ => {}
    });
}

fn expr_uses_any(e: &Expr, vars: &[VarId]) -> bool {
    let mut uses = false;
    paraprox_ir::for_each_expr(e, &mut |node| {
        if let Expr::Var(v) = node {
            if vars.contains(v) {
                uses = true;
            }
        }
    });
    uses
}

/// Collect the index expressions of loads from `buffer` that appear in the
/// unconditional (non-`If`) part of a loop body and do not reference any
/// variable assigned in it — these are safe and profitable to hoist.
fn hoistable_indices(stmts: &[Stmt], buffer: MemRef, forbidden: &[VarId], out: &mut Vec<Expr>) {
    fn scan_expr(e: &Expr, buffer: MemRef, forbidden: &[VarId], out: &mut Vec<Expr>) {
        paraprox_ir::for_each_expr(e, &mut |node| {
            if let Expr::Load { mem, index } = node {
                if *mem == buffer
                    && !expr_uses_any(index, forbidden)
                    && !out.iter().any(|i| i == index.as_ref())
                {
                    // The index itself must not contain loads (would change
                    // evaluation order) — conservative.
                    let mut has_load = false;
                    paraprox_ir::for_each_expr(index, &mut |n| {
                        if matches!(n, Expr::Load { .. }) {
                            has_load = true;
                        }
                    });
                    if !has_load {
                        out.push((**index).clone());
                    }
                }
            }
        });
    }
    for stmt in stmts {
        match stmt {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                scan_expr(init, buffer, forbidden, out)
            }
            Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                scan_expr(index, buffer, forbidden, out);
                scan_expr(value, buffer, forbidden, out);
            }
            // Do not descend into `If` (conditional execution) — but nested
            // unconditional loops are fair game.
            Stmt::For { body, .. } => hoistable_indices(body, buffer, forbidden, out),
            _ => {}
        }
    }
}

fn process_block(stmts: Vec<Stmt>, ctx: &mut Ctx<'_>, env: &mut Env) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        let mut prelude = Vec::new();
        match stmt {
            Stmt::Let { var, init } => {
                let init = replace_loads(init, ctx, env, &mut prelude);
                out.extend(prelude);
                out.push(Stmt::Let { var, init });
            }
            Stmt::Assign { var, value } => {
                let value = replace_loads(value, ctx, env, &mut prelude);
                out.extend(prelude);
                out.push(Stmt::Assign { var, value });
            }
            Stmt::Store { mem, index, value } => {
                let index = replace_loads(index, ctx, env, &mut prelude);
                let value = replace_loads(value, ctx, env, &mut prelude);
                out.extend(prelude);
                out.push(Stmt::Store { mem, index, value });
            }
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => {
                let index = replace_loads(index, ctx, env, &mut prelude);
                let value = replace_loads(value, ctx, env, &mut prelude);
                out.extend(prelude);
                out.push(Stmt::Atomic {
                    op,
                    mem,
                    index,
                    value,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = replace_loads(cond, ctx, env, &mut prelude);
                out.extend(prelude);
                let mark = env.len();
                let then_body = process_block(then_body, ctx, env);
                env.truncate(mark);
                let else_body = process_block(else_body, ctx, env);
                env.truncate(mark);
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                });
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let init = replace_loads(init, ctx, env, &mut prelude);
                out.extend(prelude);
                // Hoist loop-invariant loads in front of the loop — but
                // only when the loop provably executes at least once: a
                // zero-trip loop's loads never run, and hoisting them could
                // turn a never-executed out-of-bounds index into a fault.
                let hoist_safe = provably_runs_once(&init, &cond, &step);
                let mut forbidden = vec![var];
                assigned_vars(&body, &mut forbidden);
                let mut hoistable = Vec::new();
                if hoist_safe {
                    hoistable_indices(&body, ctx.buffer, &forbidden, &mut hoistable);
                }
                for index in hoistable {
                    if !env.iter().any(|(idx, _)| *idx == index) {
                        let v = ctx.fresh();
                        out.push(Stmt::Let {
                            var: v,
                            init: Expr::Load {
                                mem: ctx.buffer,
                                index: Box::new(index.clone()),
                            },
                        });
                        env.push((index, v));
                    }
                }
                let mark = env.len();
                let body = process_block(body, ctx, env);
                env.truncate(mark);
                out.push(Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                });
            }
            Stmt::Sync => out.push(Stmt::Sync),
            Stmt::Return(e) => {
                let e = replace_loads(e, ctx, env, &mut prelude);
                out.extend(prelude);
                out.push(Stmt::Return(e));
            }
        }
    }
    out
}

/// Eliminate redundant loads of one buffer in a kernel.
///
/// The pass is a no-op when the kernel ever stores to `buffer` (the value
/// could change between loads) or when `buffer` is a shared array
/// (barrier interactions).
pub fn optimize_buffer_loads(kernel: &mut Kernel, buffer: MemRef) {
    if matches!(buffer, MemRef::Shared(_)) {
        return;
    }
    let mut written = false;
    paraprox_ir::for_each_stmt(&kernel.body, &mut |stmt| match stmt {
        Stmt::Store { mem, .. } | Stmt::Atomic { mem, .. } if *mem == buffer => written = true,
        _ => {}
    });
    if written {
        return;
    }
    let body = std::mem::take(&mut kernel.body);
    let mut locals = std::mem::take(&mut kernel.locals);
    let mut ctx = Ctx {
        buffer,
        locals: &mut locals,
    };
    let mut env = Env::new();
    kernel.body = process_block(body, &mut ctx, &mut env);
    kernel.locals = locals;
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{count_ops, KernelBuilder, MemSpace};
    use paraprox_vgpu::{Device, DeviceProfile, Dim2};

    fn run_kernel(
        program: &paraprox_ir::Program,
        kid: paraprox_ir::KernelId,
        n: usize,
    ) -> (Vec<f32>, u64) {
        let mut device = Device::new(DeviceProfile::gtx560());
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let input = device.alloc_f32(MemSpace::Global, &data);
        let output = device.alloc_f32(MemSpace::Global, &vec![0.0; n]);
        let stats = device
            .launch(
                program,
                kid,
                Dim2::linear(n / 32),
                Dim2::linear(32),
                &[input.into(), output.into()],
            )
            .unwrap();
        (device.read_f32(output).unwrap(), stats.total_cycles())
    }

    #[test]
    fn cse_collapses_duplicate_loads() {
        let mut program = paraprox_ir::Program::new();
        let mut kb = KernelBuilder::new("dup");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        // Same load three times.
        let sum =
            kb.load(input, gid.clone()) + kb.load(input, gid.clone()) + kb.load(input, gid.clone());
        kb.store(output, gid, sum);
        let kid = program.add_kernel(kb.finish());

        let (exact_out, exact_cycles) = run_kernel(&program, kid, 64);

        let mut optimized = program.clone();
        optimize_buffer_loads(optimized.kernel_mut(kid), MemRef::Param(0));
        let counts = count_ops(&optimized.kernel(kid).body);
        assert_eq!(counts.loads, 1, "three identical loads must become one");

        let (opt_out, opt_cycles) = run_kernel(&optimized, kid, 64);
        assert_eq!(exact_out, opt_out, "semantics preserved");
        assert!(opt_cycles < exact_cycles);
    }

    #[test]
    fn loop_invariant_load_is_hoisted() {
        let mut program = paraprox_ir::Program::new();
        let mut kb = KernelBuilder::new("inv");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(8), Expr::i32(1), |kb, _i| {
            // Index does not depend on the loop variable.
            let v = kb.load(input, gid.clone());
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.store(output, gid, Expr::Var(acc));
        let kid = program.add_kernel(kb.finish());

        let (exact_out, exact_cycles) = run_kernel(&program, kid, 64);

        let mut optimized = program.clone();
        optimize_buffer_loads(optimized.kernel_mut(kid), MemRef::Param(0));
        let (opt_out, opt_cycles) = run_kernel(&optimized, kid, 64);
        assert_eq!(exact_out, opt_out);
        // 8 loads per thread -> 1: memory instructions must drop.
        assert!(opt_cycles < exact_cycles, "{opt_cycles} vs {exact_cycles}");
        // The hoisted load sits before the loop.
        let body = &optimized.kernel(kid).body;
        let pos_load = body.iter().position(|s| {
            matches!(
                s,
                Stmt::Let {
                    init: Expr::Load { .. },
                    ..
                }
            )
        });
        let pos_for = body.iter().position(|s| matches!(s, Stmt::For { .. }));
        assert!(pos_load.unwrap() < pos_for.unwrap());
    }

    #[test]
    fn loop_variant_load_stays_in_loop() {
        let mut program = paraprox_ir::Program::new();
        let mut kb = KernelBuilder::new("variant");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(4), Expr::i32(1), |kb, i| {
            let v = kb.load(input, (gid.clone() + i).rem(Expr::i32(64)));
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.store(output, gid, Expr::Var(acc));
        let kid = program.add_kernel(kb.finish());
        let (exact_out, _) = run_kernel(&program, kid, 64);
        let mut optimized = program.clone();
        optimize_buffer_loads(optimized.kernel_mut(kid), MemRef::Param(0));
        let (opt_out, _) = run_kernel(&optimized, kid, 64);
        assert_eq!(exact_out, opt_out, "loop-variant loads must not be hoisted");
    }

    #[test]
    fn written_buffer_is_left_alone() {
        let mut program = paraprox_ir::Program::new();
        let mut kb = KernelBuilder::new("rw");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(data, gid.clone()));
        kb.store(data, gid.clone(), v.clone() + Expr::f32(1.0));
        let v2 = kb.let_("v2", kb.load(data, gid.clone()));
        kb.store(out, gid, v2);
        let kid = program.add_kernel(kb.finish());
        let before = program.kernel(kid).clone();
        optimize_buffer_loads(program.kernel_mut(kid), MemRef::Param(0));
        assert_eq!(&before, program.kernel(kid), "pass must be a no-op");
    }

    #[test]
    fn if_arm_bindings_do_not_leak() {
        let mut program = paraprox_ir::Program::new();
        let mut kb = KernelBuilder::new("arms");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let flag = gid.clone().rem(Expr::i32(2)).eq_(Expr::i32(0));
        kb.if_(flag, |kb| {
            let v = kb.load(input, gid.clone());
            kb.store(output, gid.clone(), v);
        });
        // Same load after the if: must NOT reuse the masked binding.
        let v2 = kb.load(input, gid.clone());
        kb.store(output, gid.clone(), v2 * Expr::f32(2.0));
        let kid = program.add_kernel(kb.finish());

        let (exact_out, _) = run_kernel(&program, kid, 64);
        let mut optimized = program.clone();
        optimize_buffer_loads(optimized.kernel_mut(kid), MemRef::Param(0));
        let (opt_out, _) = run_kernel(&optimized, kid, 64);
        assert_eq!(exact_out, opt_out);
    }
}
