//! Reduction approximation: sampling plus adjustment (paper §3.3).
//!
//! The loop step of a detected reduction loop is multiplied by the
//! *skipping rate* `N`, so only every `N`-th iteration executes. For
//! additive reductions the partial result is scaled back up by `N` — using
//! the paper's exact recipe: the reduction variable is replaced inside the
//! loop by a temporary initialized to zero, and after the loop the scaled
//! temporary is added back to the original variable, so a nonzero initial
//! value is not erroneously multiplied.
//!
//! Loops reducing through atomic add/inc instead scale the atomic operand.

use paraprox_ir::{
    AtomicOp, BinOp, Expr, KernelId, LocalDecl, MemRef, Program, Scalar, Stmt, Ty, VarId,
};
use paraprox_patterns::path::{container_mut, stmt_at};
use paraprox_patterns::{ReductionKind, ReductionLoop};

use crate::error::ApproxError;

fn typed_const(ty: Ty, v: u32) -> Expr {
    match ty {
        Ty::F32 => Expr::f32(v as f32),
        Ty::I32 => Expr::i32(v as i32),
        Ty::U32 => Expr::u32(v),
        Ty::Bool => Expr::bool(v != 0),
    }
}

/// Replace reads and writes of `from` with `to` in a statement list.
fn rename_var(stmts: &mut Vec<Stmt>, from: VarId, to: VarId) {
    fn fix_expr(e: Expr, from: VarId, to: VarId) -> Expr {
        paraprox_ir::rewrite_expr(e, &mut |node| match node {
            Expr::Var(v) if v == from => Expr::Var(to),
            other => other,
        })
    }
    let body = std::mem::take(stmts);
    *stmts = body
        .into_iter()
        .map(|stmt| match stmt {
            Stmt::Let { var, init } => Stmt::Let {
                var: if var == from { to } else { var },
                init: fix_expr(init, from, to),
            },
            Stmt::Assign { var, value } => Stmt::Assign {
                var: if var == from { to } else { var },
                value: fix_expr(value, from, to),
            },
            Stmt::Store { mem, index, value } => Stmt::Store {
                mem,
                index: fix_expr(index, from, to),
                value: fix_expr(value, from, to),
            },
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => Stmt::Atomic {
                op,
                mem,
                index: fix_expr(index, from, to),
                value: fix_expr(value, from, to),
            },
            Stmt::If {
                cond,
                mut then_body,
                mut else_body,
            } => {
                rename_var(&mut then_body, from, to);
                rename_var(&mut else_body, from, to);
                Stmt::If {
                    cond: fix_expr(cond, from, to),
                    then_body,
                    else_body,
                }
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                mut body,
            } => {
                rename_var(&mut body, from, to);
                Stmt::For {
                    var,
                    init: fix_expr(init, from, to),
                    cond: cond.map_bound(|e| fix_expr(e, from, to)),
                    step: step.map_amount(|e| fix_expr(e, from, to)),
                    body,
                }
            }
            Stmt::Sync => Stmt::Sync,
            Stmt::Return(e) => Stmt::Return(fix_expr(e, from, to)),
        })
        .collect();
}

/// Scale the operand of every additive atomic in a statement list by
/// `skip` (typed by the destination's element type).
fn scale_atomics(stmts: &mut [Stmt], skip: u32, param_ty: &dyn Fn(MemRef) -> Ty) {
    for stmt in stmts.iter_mut() {
        match stmt {
            Stmt::Atomic {
                op: AtomicOp::Add | AtomicOp::Inc,
                mem,
                value,
                ..
            } => {
                let ty = param_ty(*mem);
                let old = std::mem::replace(value, Expr::i32(0));
                *value = old * typed_const(ty, skip);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                scale_atomics(then_body, skip, param_ty);
                scale_atomics(else_body, skip, param_ty);
            }
            Stmt::For { body, .. } => scale_atomics(body, skip, param_ty),
            _ => {}
        }
    }
}

/// Apply the reduction approximation with skipping rate `skip` to the
/// detected `red` loop of `kernel`.
///
/// # Errors
///
/// Fails when `skip < 2` (no approximation) or the loop path no longer
/// resolves (stale detection).
pub fn approximate_reduction(
    program: &Program,
    kernel: KernelId,
    red: &ReductionLoop,
    skip: u32,
) -> Result<Program, ApproxError> {
    approximate_reduction_group(program, kernel, std::slice::from_ref(red), skip)
}

/// Apply the reduction approximation to a *group* of detected reductions
/// sharing one loop (a loop can accumulate several variables — e.g. a
/// weighted average sums both values and weights). The loop step is
/// multiplied once; each additive variable gets its own adjustment.
///
/// # Errors
///
/// Fails when `skip < 2`, the group is empty or spans different loops, or
/// the loop path no longer resolves.
pub fn approximate_reduction_group(
    program: &Program,
    kernel: KernelId,
    reds: &[ReductionLoop],
    skip: u32,
) -> Result<Program, ApproxError> {
    if skip < 2 {
        return Err(ApproxError::NotApplicable(
            "skipping rate must be at least 2".to_string(),
        ));
    }
    let first = reds
        .first()
        .ok_or_else(|| ApproxError::NotApplicable("empty reduction group".to_string()))?;
    if reds.iter().any(|r| r.path != first.path) {
        return Err(ApproxError::NotApplicable(
            "reduction group spans different loops".to_string(),
        ));
    }
    // Safety gate (analysis-backed): perforating a loop skips whole
    // iterations, so the body must not carry per-iteration obligations the
    // surviving iterations cannot make up for.
    if let Some(Stmt::For { body, .. }) = stmt_at(&program.kernel(kernel).body, &first.path) {
        let fx = paraprox_analysis::summarize_stmts(program, body);
        // A barrier inside the loop pairs with the other threads' copies of
        // the *same* iteration; skipping iterations on a per-thread schedule
        // would desynchronize the block (and the adjustment math says
        // nothing about control flow).
        if fx.barriers > 0 {
            return Err(ApproxError::NotApplicable(
                "reduction loop body contains a barrier; sampling iterations would                  desynchronize the block"
                    .to_string(),
            ));
        }
        // Atomic accumulation is compensated by scaling the operand — but
        // only if the atomic is the sole access to that memory. A plain
        // load/store of the same buffer in the body is a read-modify-write
        // protocol the scaler does not understand.
        if fx
            .atomic_targets
            .iter()
            .any(|m| fx.reads.contains(m) || fx.writes.contains(m))
        {
            return Err(ApproxError::NotApplicable(
                "reduction loop mixes atomic and plain accesses to the same buffer;                  scaling the atomic operand would not preserve the protocol"
                    .to_string(),
            ));
        }
    }
    let mut out = program.clone();
    let k = out.kernel_mut(kernel);

    // Pre-compute type information and allocate temporaries before taking
    // mutable borrows into the body.
    let shared_tys: Vec<Ty> = k.shared.iter().map(|s| s.ty).collect();
    let param_tys: Vec<Ty> = k.params.iter().map(|p| p.ty()).collect();
    let mut acc_infos: Vec<(VarId, BinOp, Ty, VarId)> = Vec::new();
    let mut any_atomic = false;
    for red in reds {
        match red.kind {
            ReductionKind::Accumulation { var, op } => {
                let ty = k.locals[var.index()].ty;
                let temp = VarId(k.locals.len() as u32);
                k.locals.push(LocalDecl {
                    name: format!("red_tmp{}", acc_infos.len()),
                    ty,
                });
                acc_infos.push((var, op, ty, temp));
            }
            ReductionKind::Atomic { .. } => any_atomic = true,
        }
    }

    let (container, idx) = container_mut(&mut k.body, &first.path).ok_or_else(|| {
        ApproxError::NotApplicable("reduction loop path does not resolve".to_string())
    })?;
    let Stmt::For { step, body, .. } = &mut container[idx] else {
        return Err(ApproxError::NotApplicable(
            "reduction path does not address a for loop".to_string(),
        ));
    };

    // Multiply the loop step by the skipping rate (once for the group).
    let old_step = std::mem::replace(step, paraprox_ir::LoopStep::Add(Expr::i32(0)));
    *step = old_step.map_amount(|e| e * Expr::i32(skip as i32));

    for &(var, op, _, temp) in &acc_infos {
        if op == BinOp::Add {
            // Accumulate into a zeroed temporary, scale, add back.
            rename_var(body, var, temp);
        }
        // Non-additive reductions (min/max/and/or/xor/mul) are sampled
        // without adjustment — scaling has no meaning for them.
    }
    if any_atomic {
        let resolve = |mem: MemRef| -> Ty {
            match mem {
                MemRef::Param(i) => param_tys.get(i).copied().unwrap_or(Ty::F32),
                MemRef::Shared(s) => shared_tys.get(s.index()).copied().unwrap_or(Ty::F32),
            }
        };
        scale_atomics(body, skip, &resolve);
    }
    // Splice the temp initializations before the loop and the scaled
    // add-backs after it.
    let mut insert_at = idx;
    for &(_, op, ty, temp) in &acc_infos {
        if op == BinOp::Add {
            container.insert(
                insert_at,
                Stmt::Let {
                    var: temp,
                    init: typed_const(ty, 0),
                },
            );
            insert_at += 1;
        }
    }
    let mut after_at = insert_at + 1; // just past the loop
    for &(var, op, ty, temp) in &acc_infos {
        if op == BinOp::Add {
            container.insert(
                after_at,
                Stmt::Assign {
                    var,
                    value: Expr::Var(var) + Expr::Var(temp) * typed_const(ty, skip),
                },
            );
            after_at += 1;
        }
    }
    k.name = format!("{}__reduce_skip{}", k.name, skip);
    Ok(out)
}

/// Convenience: the scalar value `skip` as the same type as `s`.
pub fn skip_scalar_like(s: Scalar, skip: u32) -> Scalar {
    match s {
        Scalar::F32(_) => Scalar::F32(skip as f32),
        Scalar::I32(_) => Scalar::I32(skip as i32),
        Scalar::U32(_) => Scalar::U32(skip),
        Scalar::Bool(_) => Scalar::Bool(skip != 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{KernelBuilder, MemSpace};
    use paraprox_patterns::reduction::find_reduction_loops;
    use paraprox_quality::Metric;
    use paraprox_vgpu::{Device, DeviceProfile, Dim2};

    /// Per-thread serial sum over a chunk of the input.
    fn chunk_sum_kernel(program: &mut Program, chunk: i32) -> paraprox_ir::KernelId {
        let mut kb = KernelBuilder::new("chunk_sum");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let start = kb.let_("start", gid.clone() * Expr::i32(chunk));
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up(
            "i",
            start.clone(),
            start.clone() + Expr::i32(chunk),
            Expr::i32(1),
            |kb, i| {
                let v = kb.let_("v", kb.load(input, i));
                kb.assign(acc, Expr::Var(acc) + v);
            },
        );
        kb.store(out, gid, Expr::Var(acc));
        program.add_kernel(kb.finish())
    }

    fn run_sum(
        program: &Program,
        kid: paraprox_ir::KernelId,
        data: &[f32],
        threads: usize,
    ) -> (Vec<f32>, u64) {
        let mut device = Device::new(DeviceProfile::gtx560());
        let input = device.alloc_f32(MemSpace::Global, data);
        let out = device.alloc_f32(MemSpace::Global, &vec![0.0; threads]);
        let stats = device
            .launch(
                program,
                kid,
                Dim2::linear(threads / 32),
                Dim2::linear(32),
                &[input.into(), out.into()],
            )
            .unwrap();
        (device.read_f32(out).unwrap(), stats.total_cycles())
    }

    #[test]
    fn additive_reduction_skips_and_adjusts() {
        let threads = 64;
        let chunk = 64;
        let data: Vec<f32> = (0..threads * chunk).map(|i| 1.0 + (i % 7) as f32).collect();
        let mut program = Program::new();
        let kid = chunk_sum_kernel(&mut program, chunk as i32);
        let red = find_reduction_loops(program.kernel(kid));
        assert_eq!(red.len(), 1);
        let approx = approximate_reduction(&program, kid, &red[0], 4).unwrap();

        let (exact, exact_cycles) = run_sum(&program, kid, &data, threads);
        let (sampled, approx_cycles) = run_sum(&approx, kid, &data, threads);
        let quality = Metric::MeanRelative.quality_f32(&exact, &sampled);
        assert!(quality > 90.0, "quality = {quality}");
        let speedup = exact_cycles as f64 / approx_cycles as f64;
        assert!(speedup > 2.0, "speedup = {speedup}");
        // The adjustment keeps magnitudes right: sums must be ~4x a naive
        // unadjusted quarter-sum.
        let naive_quarter: f32 = exact[0] / 4.0;
        assert!(sampled[0] > naive_quarter * 2.0);
    }

    #[test]
    fn adjustment_preserves_nonzero_initial_values() {
        // acc starts at 100; the paper's temp-variable recipe must not
        // multiply the initial value by the skipping rate.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("offset_sum");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(100.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(32), Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.store(out, gid, Expr::Var(acc));
        let kid = program.add_kernel(kb.finish());
        let red = find_reduction_loops(program.kernel(kid));
        let approx = approximate_reduction(&program, kid, &red[0], 2).unwrap();

        let data = vec![1.0f32; 32];
        let (exact, _) = run_sum(&program, kid, &data, 32);
        let (sampled, _) = run_sum(&approx, kid, &data, 32);
        assert_eq!(exact[0], 132.0);
        // Perfect adjustment for uniform data: 100 + 2*(16*1) = 132.
        assert!((sampled[0] - 132.0).abs() < 1e-3, "got {}", sampled[0]);
    }

    #[test]
    fn min_reduction_is_sampled_without_adjustment() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("minimum");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(f32::MAX));
        kb.for_up("i", Expr::i32(0), Expr::i32(64), Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.assign(acc, Expr::Var(acc).min(v));
        });
        kb.store(out, gid, Expr::Var(acc));
        let kid = program.add_kernel(kb.finish());
        let red = find_reduction_loops(program.kernel(kid));
        let approx = approximate_reduction(&program, kid, &red[0], 2).unwrap();
        let data: Vec<f32> = (0..64).map(|i| 100.0 - i as f32).collect();
        let (sampled, _) = run_sum(&approx, kid, &data, 32);
        // True min is at index 63 (odd) — skipped with rate 2; the sampled
        // min is the min over even indices = 100-62 = 38.
        assert_eq!(sampled[0], 38.0);
    }

    #[test]
    fn atomic_reduction_scales_operand() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("atomic_sum");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        kb.for_up("i", Expr::i32(0), Expr::i32(64), Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.atomic(AtomicOp::Add, out, Expr::i32(0), v);
        });
        let kid = program.add_kernel(kb.finish());
        let red = find_reduction_loops(program.kernel(kid));
        assert_eq!(red.len(), 1);
        let approx = approximate_reduction(&program, kid, &red[0], 4).unwrap();

        let data = vec![1.0f32; 64];
        let mut device = Device::new(DeviceProfile::gtx560());
        let input_b = device.alloc_f32(MemSpace::Global, &data);
        let out_b = device.alloc_f32(MemSpace::Global, &[0.0]);
        let s_exact = device
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(1),
                &[input_b.into(), out_b.into()],
            )
            .unwrap();
        let exact = device.read_f32(out_b).unwrap()[0];
        device.write_f32(out_b, &[0.0]).unwrap();
        let s_approx = device
            .launch(
                &approx,
                kid,
                Dim2::linear(1),
                Dim2::linear(1),
                &[input_b.into(), out_b.into()],
            )
            .unwrap();
        let approx_v = device.read_f32(out_b).unwrap()[0];
        assert_eq!(exact, 64.0);
        assert_eq!(approx_v, 64.0, "uniform data: perfectly adjusted");
        assert!(s_approx.atomics < s_exact.atomics);
    }

    #[test]
    fn skip_below_two_rejected() {
        let mut program = Program::new();
        let kid = chunk_sum_kernel(&mut program, 8);
        let red = find_reduction_loops(program.kernel(kid));
        assert!(approximate_reduction(&program, kid, &red[0], 1).is_err());
    }

    #[test]
    fn grouped_accumulators_share_one_perforation() {
        // Weighted average: one loop, two accumulators.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("wavg");
        let values = kb.buffer("values", Ty::F32, MemSpace::Global);
        let weights = kb.buffer("weights", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let vsum = kb.let_mut("vsum", Ty::F32, Expr::f32(0.0));
        let wsum = kb.let_mut("wsum", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(64), Expr::i32(1), |kb, i| {
            let w = kb.let_("w", kb.load(weights, i.clone()));
            let v = kb.let_("v", kb.load(values, i));
            kb.assign(vsum, Expr::Var(vsum) + v * w.clone());
            kb.assign(wsum, Expr::Var(wsum) + w);
        });
        kb.store(out, gid, Expr::Var(vsum) / Expr::Var(wsum));
        let kid = program.add_kernel(kb.finish());

        let reds = find_reduction_loops(program.kernel(kid));
        assert_eq!(reds.len(), 2, "both accumulators detected");
        assert_eq!(reds[0].path, reds[1].path, "same loop");
        let approx = approximate_reduction_group(&program, kid, &reds, 4).unwrap();

        // Uniform weights: the ratio is invariant under proportional
        // sampling, so the result must be near-exact.
        let values_data = vec![3.0f32; 64];
        let weights_data = vec![0.5f32; 64];
        let mut device = Device::new(DeviceProfile::gtx560());
        let vb = device.alloc_f32(MemSpace::Global, &values_data);
        let wb = device.alloc_f32(MemSpace::Global, &weights_data);
        let ob = device.alloc_f32(MemSpace::Global, &[0.0; 32]);
        let s_exact = device
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(32),
                &[vb.into(), wb.into(), ob.into()],
            )
            .unwrap();
        let exact = device.read_f32(ob).unwrap();
        let s_approx = device
            .launch(
                &approx,
                kid,
                Dim2::linear(1),
                Dim2::linear(32),
                &[vb.into(), wb.into(), ob.into()],
            )
            .unwrap();
        let sampled = device.read_f32(ob).unwrap();
        assert!((exact[0] - 3.0).abs() < 1e-5);
        assert!((sampled[0] - 3.0).abs() < 1e-5, "got {}", sampled[0]);
        // Exactly one perforation: cycles drop ~4x, not ~16x.
        let ratio = s_exact.total_cycles() as f64 / s_approx.total_cycles() as f64;
        assert!(ratio > 2.0 && ratio < 6.0, "ratio = {ratio}");
    }

    #[test]
    fn group_spanning_different_loops_rejected() {
        let mut program = Program::new();
        let kid = chunk_sum_kernel(&mut program, 8);
        let mut kb = KernelBuilder::new("other");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(8), Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i.clone()));
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.for_up("j", Expr::i32(0), Expr::i32(8), Expr::i32(1), |kb, j| {
            let v = kb.let_("v2", kb.load(input, j));
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.store(out, Expr::i32(0), Expr::Var(acc));
        let kid2 = program.add_kernel(kb.finish());
        let reds = find_reduction_loops(program.kernel(kid2));
        assert_eq!(reds.len(), 2);
        assert_ne!(reds[0].path, reds[1].path);
        assert!(approximate_reduction_group(&program, kid2, &reds, 2).is_err());
        let _ = kid;
    }

    #[test]
    fn skip_scalar_like_types() {
        assert_eq!(skip_scalar_like(Scalar::F32(0.0), 4), Scalar::F32(4.0));
        assert_eq!(skip_scalar_like(Scalar::I32(0), 4), Scalar::I32(4));
        assert_eq!(skip_scalar_like(Scalar::U32(0), 4), Scalar::U32(4));
    }

    #[test]
    fn sync_in_loop_body_refuses_sampling() {
        use paraprox_patterns::path::StmtPath;
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("sync_red");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x()); // stmt 0
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0)); // stmt 1
        kb.for_up("i", Expr::i32(0), Expr::i32(64), Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.assign(acc, Expr::Var(acc) + v);
            kb.sync();
        }); // stmt 2
        kb.store(out, gid, Expr::Var(acc));
        let kid = program.add_kernel(kb.finish());
        let red = ReductionLoop {
            path: StmtPath::root().child(2),
            kind: ReductionKind::Accumulation {
                var: acc,
                op: BinOp::Add,
            },
        };
        let err = approximate_reduction(&program, kid, &red, 4).unwrap_err();
        let ApproxError::NotApplicable(msg) = err else {
            panic!("expected NotApplicable");
        };
        assert!(msg.contains("barrier"), "unexpected message: {msg}");
    }

    #[test]
    fn atomic_mixed_with_plain_access_refuses_sampling() {
        use paraprox_patterns::path::StmtPath;
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("mixed");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let hist = kb.buffer("hist", Ty::F32, MemSpace::Global);
        kb.for_up("i", Expr::i32(0), Expr::i32(16), Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            // A plain read of the atomically-accumulated buffer: the
            // operand scaler cannot preserve this protocol.
            let peek = kb.let_("peek", kb.load(hist, Expr::i32(0)));
            kb.atomic(AtomicOp::Add, hist, Expr::i32(0), v + peek);
        }); // stmt 0
        let kid = program.add_kernel(kb.finish());
        let red = ReductionLoop {
            path: StmtPath::root().child(0),
            kind: ReductionKind::Atomic { op: AtomicOp::Add },
        };
        let err = approximate_reduction(&program, kid, &red, 4).unwrap_err();
        let ApproxError::NotApplicable(msg) = err else {
            panic!("expected NotApplicable");
        };
        assert!(
            msg.contains("atomic and plain"),
            "unexpected message: {msg}"
        );
    }
}
