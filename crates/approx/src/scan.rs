//! Scan approximation: subarray prediction (paper §3.4).
//!
//! Skipping arbitrary iterations of a scan would cascade error into every
//! later output (the paper's Figure 18 experiment), so Paraprox instead
//! skips the *last* `S` subarrays: phases I and II run on the first `G−S`
//! subarrays only, and a rewritten phase III predicts the skipped tail by
//! replicating the first subarrays' results shifted by the running total
//! (the last element of phase II's output).

use paraprox_ir::{Expr, KernelBuilder, KernelId, Program, Scalar, Ty};
use paraprox_patterns::ScanMatch;
use paraprox_vgpu::{Pipeline, PlanArg};

use crate::error::ApproxError;

/// The roles of the canonical three-phase scan pipeline's launches and
/// buffers, inferred from a phase-I template match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRoles {
    /// Index of the phase-I launch in the pipeline.
    pub phase1_launch: usize,
    /// Index of the phase-II launch.
    pub phase2_launch: usize,
    /// Index of the phase-III launch.
    pub phase3_launch: usize,
    /// Buffer slot of the per-element partial scan.
    pub partial_slot: usize,
    /// Buffer slot of the per-subarray totals (`sumSub`).
    pub sums_slot: usize,
    /// Buffer slot of the scanned totals (phase II's output).
    pub sums_scan_slot: usize,
    /// Buffer slot of the final output.
    pub output_slot: usize,
    /// Position of phase II's element-count scalar argument, if present.
    pub phase2_count_arg: Option<usize>,
}

/// Infer [`ScanRoles`] from the pipeline structure.
///
/// Assumes the canonical shape: phase I is the matched kernel; phase II is
/// the next launch reading the `sumSub` buffer; phase III is a later launch
/// reading both the partial scan and phase II's output.
pub fn infer_scan_roles(
    pipeline: &Pipeline,
    phase1_kernel: KernelId,
    m: &ScanMatch,
) -> Option<ScanRoles> {
    let phase1_launch = pipeline
        .launches
        .iter()
        .position(|l| l.kernel == phase1_kernel)?;
    let p1 = &pipeline.launches[phase1_launch];
    let slot_of = |arg: &PlanArg| match arg {
        PlanArg::Buffer(s) => Some(*s),
        PlanArg::Scalar(_) => None,
    };
    let partial_slot = slot_of(p1.args.get(m.partial_param)?)?;
    let sums_slot = slot_of(p1.args.get(m.sums_param)?)?;

    // Phase II: the next launch reading sums_slot.
    let phase2_launch = (phase1_launch + 1..pipeline.launches.len()).find(|&i| {
        pipeline.launches[i]
            .args
            .iter()
            .any(|a| slot_of(a) == Some(sums_slot))
    })?;
    let p2 = &pipeline.launches[phase2_launch];
    let sums_scan_slot = p2
        .args
        .iter()
        .filter_map(slot_of)
        .find(|&s| s != sums_slot)?;
    let subarray_count = p1.grid.count() as i32;
    let phase2_count_arg = p2
        .args
        .iter()
        .position(|a| matches!(a, PlanArg::Scalar(Scalar::I32(v)) if *v == subarray_count));

    // Phase III: a later launch reading both partial and sums_scan.
    let phase3_launch = (phase2_launch + 1..pipeline.launches.len()).find(|&i| {
        let args = &pipeline.launches[i].args;
        args.iter().any(|a| slot_of(a) == Some(partial_slot))
            && args.iter().any(|a| slot_of(a) == Some(sums_scan_slot))
    })?;
    let output_slot = pipeline.launches[phase3_launch]
        .args
        .iter()
        .filter_map(slot_of)
        .find(|&s| s != partial_slot && s != sums_scan_slot)?;

    Some(ScanRoles {
        phase1_launch,
        phase2_launch,
        phase3_launch,
        partial_slot,
        sums_slot,
        sums_scan_slot,
        output_slot,
        phase2_count_arg,
    })
}

/// Generate the approximate phase-III kernel: kept blocks add their phase-II
/// offset as usual; skipped blocks replicate an early subarray's final
/// result shifted by the running total.
fn build_fixup_kernel(subarray_len: usize) -> paraprox_ir::Kernel {
    let mut kb = KernelBuilder::new("scan_phase3_approx");
    let partial = kb.buffer("partial", Ty::F32, paraprox_ir::MemSpace::Global);
    let sums_scan = kb.buffer("sums_scan", Ty::F32, paraprox_ir::MemSpace::Global);
    let output = kb.buffer("output", Ty::F32, paraprox_ir::MemSpace::Global);
    let kept = kb.scalar("kept", Ty::I32);
    let bid = kb.let_("bid", KernelBuilder::block_id_x());
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    let gid = kb.let_(
        "gid",
        bid.clone() * Expr::i32(subarray_len as i32) + tid.clone(),
    );
    kb.if_else(
        bid.clone().lt(kept.clone()),
        |kb| {
            // Exact path for the kept subarrays.
            let p = kb.let_("p", kb.load(partial, gid.clone()));
            kb.if_else(
                bid.clone().gt(Expr::i32(0)),
                |kb| {
                    let off = kb.let_("off", kb.load(sums_scan, bid.clone() - Expr::i32(1)));
                    kb.store(output, gid.clone(), p.clone() + off);
                },
                |kb| {
                    kb.store(output, gid.clone(), p.clone());
                },
            );
        },
        |kb| {
            // Predicted path: replicate subarray (bid - kept)'s final
            // result, shifted by the running total (paper Figure 8).
            let src = kb.let_("src", bid.clone() - kept.clone());
            let src_gid = kb.let_(
                "src_gid",
                src.clone() * Expr::i32(subarray_len as i32) + tid.clone(),
            );
            let p = kb.let_("p", kb.load(partial, src_gid));
            let total = kb.let_("total", kb.load(sums_scan, kept.clone() - Expr::i32(1)));
            let src_off = kb.let_(
                "src_off",
                src.clone().gt(Expr::i32(0)).select(
                    kb.load(sums_scan, src.clone() - Expr::i32(1)),
                    Expr::f32(0.0),
                ),
            );
            kb.store(output, gid.clone(), p + src_off + total);
        },
    );
    kb.finish()
}

/// Apply the scan approximation, skipping the last `skip` subarrays.
///
/// # Errors
///
/// Fails when `skip` is zero or ≥ half the subarray count (the prediction
/// replicates early subarrays, so at most half can be skipped), or when the
/// pipeline does not have the canonical three-phase shape.
pub fn approximate_scan(
    program: &Program,
    pipeline: &Pipeline,
    phase1_kernel: KernelId,
    m: &ScanMatch,
    skip: usize,
) -> Result<(Program, Pipeline), ApproxError> {
    let roles = infer_scan_roles(pipeline, phase1_kernel, m).ok_or_else(|| {
        ApproxError::NotApplicable(
            "pipeline does not match the canonical three-phase scan".to_string(),
        )
    })?;
    let subarrays = pipeline.launches[roles.phase1_launch].grid.count();
    if skip == 0 || skip * 2 > subarrays {
        return Err(ApproxError::NotApplicable(format!(
            "skip must be in 1..={} (half of {} subarrays)",
            subarrays / 2,
            subarrays
        )));
    }
    let kept = subarrays - skip;

    let mut out_program = program.clone();
    let fixup = out_program.add_kernel(build_fixup_kernel(m.subarray_len));

    let mut out_pipeline = pipeline.clone();
    // Phase I: launch fewer blocks.
    out_pipeline.launches[roles.phase1_launch].grid.x = kept;
    out_pipeline.launches[roles.phase1_launch].grid.y = 1;
    // Phase II: scan only the kept totals.
    if let Some(arg) = roles.phase2_count_arg {
        out_pipeline.launches[roles.phase2_launch].args[arg] =
            PlanArg::Scalar(Scalar::I32(kept as i32));
    }
    // Phase III: the predicting fix-up over ALL subarrays.
    let p3 = &mut out_pipeline.launches[roles.phase3_launch];
    p3.kernel = fixup;
    p3.grid = paraprox_vgpu::Dim2::linear(subarrays);
    p3.block = paraprox_vgpu::Dim2::linear(m.subarray_len);
    p3.args = vec![
        PlanArg::Buffer(roles.partial_slot),
        PlanArg::Buffer(roles.sums_scan_slot),
        PlanArg::Buffer(roles.output_slot),
        PlanArg::Scalar(Scalar::I32(kept as i32)),
    ];
    Ok((out_program, out_pipeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{BufferSpec, Device, DeviceProfile, Dim2, LaunchPlan};

    /// Build the canonical three-phase scan pipeline over `n` elements in
    /// subarrays of `b`. Returns (program, pipeline, phase1 kernel id).
    pub fn canonical_pipeline(
        data: Vec<f32>,
        b: usize,
    ) -> (Program, Pipeline, KernelId, ScanMatch) {
        let n = data.len();
        let g = n / b;
        let mut program = Program::new();

        // Phase 1: per-block inclusive scan (doubling butterfly).
        let mut kb = KernelBuilder::new("scan_phase1");
        let input = kb.buffer("input", Ty::F32, paraprox_ir::MemSpace::Global);
        let partial = kb.buffer("partial", Ty::F32, paraprox_ir::MemSpace::Global);
        let sums = kb.buffer("sums", Ty::F32, paraprox_ir::MemSpace::Global);
        let s_a = kb.shared_array("s_a", Ty::F32, b);
        let s_b = kb.shared_array("s_b", Ty::F32, b);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(s_a, tid.clone(), kb.load(input, gid.clone()));
        kb.sync();
        kb.for_loop(
            "d",
            Expr::i32(1),
            paraprox_ir::LoopCond::Lt(Expr::i32(b as i32)),
            paraprox_ir::LoopStep::Shl(Expr::i32(1)),
            |kb, d| {
                kb.if_else(
                    tid.clone().ge(d.clone()),
                    |kb| {
                        let a = kb.load(s_a, tid.clone());
                        let c = kb.load(s_a, tid.clone() - d.clone());
                        kb.store(s_b, tid.clone(), a + c);
                    },
                    |kb| {
                        let a = kb.load(s_a, tid.clone());
                        kb.store(s_b, tid.clone(), a);
                    },
                );
                kb.sync();
                kb.store(s_a, tid.clone(), kb.load(s_b, tid.clone()));
                kb.sync();
            },
        );
        kb.store(partial, gid.clone(), kb.load(s_a, tid.clone()));
        kb.if_(tid.clone().eq_(Expr::i32(b as i32 - 1)), |kb| {
            kb.store(sums, KernelBuilder::block_id_x(), kb.load(s_a, tid.clone()));
        });
        let phase1 = program.add_kernel(kb.finish());

        // Phase 2: single-block exclusive-ish scan of the sums (serial per
        // thread 0 for simplicity — it is tiny).
        let mut kb = KernelBuilder::new("scan_phase2");
        let sums_in = kb.buffer("sums", Ty::F32, paraprox_ir::MemSpace::Global);
        let sums_scan = kb.buffer("sums_scan", Ty::F32, paraprox_ir::MemSpace::Global);
        let count = kb.scalar("count", Ty::I32);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        kb.if_(tid.clone().eq_(Expr::i32(0)), |kb| {
            let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
            kb.for_up("i", Expr::i32(0), count.clone(), Expr::i32(1), |kb, i| {
                let v = kb.let_("v", kb.load(sums_in, i.clone()));
                kb.assign(acc, Expr::Var(acc) + v);
                kb.store(sums_scan, i, Expr::Var(acc));
            });
        });
        let phase2 = program.add_kernel(kb.finish());

        // Phase 3: add the scanned block totals.
        let mut kb = KernelBuilder::new("scan_phase3");
        let partial_in = kb.buffer("partial", Ty::F32, paraprox_ir::MemSpace::Global);
        let sums_scan_in = kb.buffer("sums_scan", Ty::F32, paraprox_ir::MemSpace::Global);
        let output = kb.buffer("output", Ty::F32, paraprox_ir::MemSpace::Global);
        let bid = kb.let_("bid", KernelBuilder::block_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let p = kb.let_("p", kb.load(partial_in, gid.clone()));
        kb.if_else(
            bid.clone().gt(Expr::i32(0)),
            |kb| {
                let off = kb.let_("off", kb.load(sums_scan_in, bid.clone() - Expr::i32(1)));
                kb.store(output, gid.clone(), p.clone() + off);
            },
            |kb| {
                kb.store(output, gid.clone(), p.clone());
            },
        );
        let phase3 = program.add_kernel(kb.finish());

        let m = paraprox_patterns::scan::match_scan(program.kernel(phase1))
            .expect("canonical scan matches");

        let mut pipeline = Pipeline::default();
        let input_b = pipeline.add_buffer(BufferSpec::f32("input", data));
        let partial_b = pipeline.add_buffer(BufferSpec::zeroed_f32("partial", n));
        let sums_b = pipeline.add_buffer(BufferSpec::zeroed_f32("sums", g));
        let sums_scan_b = pipeline.add_buffer(BufferSpec::zeroed_f32("sums_scan", g));
        let output_b = pipeline.add_buffer(BufferSpec::zeroed_f32("output", n));
        pipeline.launches.push(LaunchPlan {
            kernel: phase1,
            grid: Dim2::linear(g),
            block: Dim2::linear(b),
            args: vec![
                PlanArg::Buffer(input_b),
                PlanArg::Buffer(partial_b),
                PlanArg::Buffer(sums_b),
            ],
        });
        pipeline.launches.push(LaunchPlan {
            kernel: phase2,
            grid: Dim2::linear(1),
            block: Dim2::linear(b),
            args: vec![
                PlanArg::Buffer(sums_b),
                PlanArg::Buffer(sums_scan_b),
                PlanArg::Scalar(Scalar::I32(g as i32)),
            ],
        });
        pipeline.launches.push(LaunchPlan {
            kernel: phase3,
            grid: Dim2::linear(g),
            block: Dim2::linear(b),
            args: vec![
                PlanArg::Buffer(partial_b),
                PlanArg::Buffer(sums_scan_b),
                PlanArg::Buffer(output_b),
            ],
        });
        pipeline.outputs.push(output_b);
        (program, pipeline, phase1, m)
    }

    #[test]
    fn exact_pipeline_computes_prefix_sums() {
        let n = 256;
        let b = 32;
        let data: Vec<f32> = vec![1.0; n];
        let (program, pipeline, _, _) = canonical_pipeline(data, b);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = pipeline.execute(&mut device, &program).unwrap();
        let out = &run.outputs[0];
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i + 1) as f64, "prefix sum at {i}");
        }
    }

    #[test]
    fn roles_inferred_from_canonical_pipeline() {
        let (_, pipeline, phase1, m) = canonical_pipeline(vec![1.0; 256], 32);
        let roles = infer_scan_roles(&pipeline, phase1, &m).unwrap();
        assert_eq!(roles.phase1_launch, 0);
        assert_eq!(roles.phase2_launch, 1);
        assert_eq!(roles.phase3_launch, 2);
        assert_eq!(roles.partial_slot, 1);
        assert_eq!(roles.sums_slot, 2);
        assert_eq!(roles.sums_scan_slot, 3);
        assert_eq!(roles.output_slot, 4);
        assert_eq!(roles.phase2_count_arg, Some(2));
    }

    #[test]
    fn approximate_scan_is_fast_and_accurate_on_uniform_data() {
        let n = 1024;
        let b = 32;
        // "Uniformly distributed" data (the paper's assumption): noisy ones.
        let data: Vec<f32> = (0..n)
            .map(|i| 1.0 + 0.1 * ((i * 7 % 13) as f32 / 13.0))
            .collect();
        let (program, pipeline, phase1, m) = canonical_pipeline(data, b);
        let (ap, app) = approximate_scan(&program, &pipeline, phase1, &m, 8).unwrap();

        let mut device = Device::new(DeviceProfile::gtx560());
        let exact = pipeline.execute(&mut device, &program).unwrap();
        let approx = app.execute(&mut device, &ap).unwrap();
        let q =
            paraprox_quality::Metric::MeanRelative.quality(&exact.outputs[0], &approx.outputs[0]);
        assert!(q > 97.0, "quality = {q}");
        assert!(
            approx.stats.total_cycles() < exact.stats.total_cycles(),
            "{} vs {}",
            approx.stats.total_cycles(),
            exact.stats.total_cycles()
        );
    }

    #[test]
    fn kept_prefix_stays_exact() {
        let n = 512;
        let b = 32;
        let skip = 4;
        let data: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
        let (program, pipeline, phase1, m) = canonical_pipeline(data, b);
        let (ap, app) = approximate_scan(&program, &pipeline, phase1, &m, skip).unwrap();
        let mut device = Device::new(DeviceProfile::gtx560());
        let exact = pipeline.execute(&mut device, &program).unwrap();
        let approx = app.execute(&mut device, &ap).unwrap();
        let kept_elems = (n / b - skip) * b;
        for i in 0..kept_elems {
            assert_eq!(
                exact.outputs[0][i], approx.outputs[0][i],
                "kept element {i} must be exact"
            );
        }
    }

    #[test]
    fn invalid_skip_rejected() {
        let (program, pipeline, phase1, m) = canonical_pipeline(vec![1.0; 256], 32);
        assert!(approximate_scan(&program, &pipeline, phase1, &m, 0).is_err());
        assert!(approximate_scan(&program, &pipeline, phase1, &m, 5).is_err()); // > half of 8
    }
}
