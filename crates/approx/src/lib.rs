//! The four pattern-specific approximation optimizations of Paraprox (§3).
//!
//! Each optimization is an IR/pipeline rewriter paired with the paper's
//! tuning parameter:
//!
//! | Pattern | Optimization | Module | Tuning parameter |
//! |---|---|---|---|
//! | Map, Scatter/Gather | approximate memoization | [`memo`] | lookup-table size (plus mode and placement) |
//! | Stencil, Partition | tile value replication | [`stencil`] | scheme and reaching distance |
//! | Reduction | sampling + adjustment | [`reduction`] | skipping rate |
//! | Scan | subarray prediction | [`scan`] | skipped-subarray count |
//!
//! All rewriters are pure: they take a [`paraprox_ir::Program`] (and, for
//! scan, a [`paraprox_vgpu::Pipeline`]) and return rewritten clones, leaving
//! the exact versions untouched — the runtime chooses between variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod loadopt;
pub mod memo;
pub mod reduction;
pub mod safety;
pub mod scan;
pub mod stencil;

pub use error::ApproxError;
pub use loadopt::optimize_buffer_loads;
pub use memo::{
    bit_tune, build_table, choose_table_bits, input_ranges, memoize_kernel, BitTuneResult,
    InputRange, LookupMode, MemoConfig, MemoizedVariant, TablePlacement,
};
pub use reduction::{approximate_reduction, approximate_reduction_group};
pub use safety::{guard_divisions, unguarded_divisions};
pub use scan::{approximate_scan, infer_scan_roles, ScanRoles};
pub use stencil::{approximate_stencil, StencilScheme};
