//! Approximate memoization for map and scatter/gather patterns (paper §3.1).
//!
//! The optimization replaces a call to a pure, compute-heavy function with a
//! query into a lookup table of precomputed results:
//!
//! 1. each function input is **quantized** to `qᵢ` bits over its training
//!    range,
//! 2. the quantized inputs are **concatenated** into a table address
//!    (`Q = Σ qᵢ` bits, table size `2^Q`),
//! 3. the table entry is returned — either the **nearest** precomputed
//!    value, or a **linear** interpolation of the two nearest (paper §4.4.2).
//!
//! **Bit tuning** (§3.1.3, Figure 4) decides how to split the `Q` address
//! bits across the inputs: starting from an even split, a steepest-ascent
//! hill climb moves one bit at a time between inputs, keeping the division
//! with the best output quality on training data. Inputs that are constant
//! in training (e.g. `R` and `V` in BlackScholes) receive zero bits.
//!
//! The table can be placed in global, constant, or shared memory
//! (§4.4.2, Figure 16); the shared placement emits a cooperative staging
//! loop at kernel entry, so its copy-in overhead is *measured*, not
//! assumed.

use paraprox_ir::{
    Expr, Func, FuncId, KernelId, LocalDecl, MemRef, MemSpace, Param, Program, Scalar, Stmt, Ty,
    VarId,
};

use crate::error::ApproxError;

/// The observed range of one function input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputRange {
    /// Smallest training value.
    pub min: f32,
    /// Largest training value.
    pub max: f32,
}

impl InputRange {
    /// Width of the range.
    pub fn width(&self) -> f32 {
        self.max - self.min
    }

    /// True when the input never varied in training — it gets zero
    /// quantization bits and its constant value baked into the table.
    pub fn is_constant(&self) -> bool {
        self.width() <= 0.0
    }

    /// Quantization level of `v` under `q` bits (clamped to the range).
    pub fn level_of(&self, v: f32, q: u32) -> u32 {
        if q == 0 || self.is_constant() {
            return 0;
        }
        let levels = (1u64 << q) as f32;
        let norm = (v - self.min) / self.width() * levels;
        let lvl = norm.floor();
        lvl.clamp(0.0, levels - 1.0) as u32
    }

    /// Representative (midpoint) value of quantization level `level`.
    pub fn rep_of(&self, level: u32, q: u32) -> f32 {
        if q == 0 || self.is_constant() {
            return self.min;
        }
        let levels = (1u64 << q) as f32;
        self.min + (level as f32 + 0.5) * self.width() / levels
    }
}

/// Compute per-input ranges from training argument tuples.
///
/// # Errors
///
/// Returns [`ApproxError::NoTrainingData`] for an empty sample set.
pub fn input_ranges(samples: &[Vec<Scalar>]) -> Result<Vec<InputRange>, ApproxError> {
    let first = samples.first().ok_or(ApproxError::NoTrainingData)?;
    let mut ranges = vec![
        InputRange {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
        };
        first.len()
    ];
    for sample in samples {
        for (range, arg) in ranges.iter_mut().zip(sample) {
            let v = arg.to_f64_lossy() as f32;
            range.min = range.min.min(v);
            range.max = range.max.max(v);
        }
    }
    Ok(ranges)
}

/// How lookups handle inputs that fall between precomputed entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LookupMode {
    /// Return the nearest precomputed output (faster, less accurate).
    Nearest,
    /// Linearly interpolate the two nearest entries (one extra load and a
    /// few ALU ops; only applicable to single-variable-input functions).
    Linear,
}

/// Where the lookup table lives on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TablePlacement {
    /// Global memory, cached by the L1.
    Global,
    /// Constant memory with the broadcast constant cache.
    Constant,
    /// Shared memory, cooperatively staged from global at kernel entry.
    Shared,
}

impl TablePlacement {
    /// Short label for variant names.
    pub fn label(self) -> &'static str {
        match self {
            TablePlacement::Global => "global",
            TablePlacement::Constant => "constant",
            TablePlacement::Shared => "shared",
        }
    }
}

/// A complete memoization configuration for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoConfig {
    /// The function to replace.
    pub func: FuncId,
    /// Quantization bits per input (zero for constant inputs).
    pub split: Vec<u32>,
    /// Nearest or linear lookups.
    pub mode: LookupMode,
    /// Table placement.
    pub placement: TablePlacement,
    /// Input ranges from training.
    pub ranges: Vec<InputRange>,
}

impl MemoConfig {
    /// Total address bits.
    pub fn total_bits(&self) -> u32 {
        self.split.iter().sum()
    }

    /// Number of table entries (`2^Q`).
    pub fn table_len(&self) -> usize {
        1usize << self.total_bits()
    }

    /// Number of inputs that actually vary.
    pub fn variable_inputs(&self) -> usize {
        self.ranges.iter().filter(|r| !r.is_constant()).count()
    }
}

/// One node explored by bit tuning, for reporting (paper Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct BitTuneResult {
    /// The chosen bits-per-input division.
    pub split: Vec<u32>,
    /// Output quality (%) of the chosen division on training data.
    pub quality: f64,
    /// Every `(split, quality)` pair evaluated, in exploration order.
    pub explored: Vec<(Vec<u32>, f64)>,
}

/// Evaluate the output quality of a candidate bit division by running the
/// exact function on quantized-then-reconstructed inputs (no table needed —
/// paper §3.1.3).
fn split_quality(
    program: &Program,
    func: &Func,
    samples: &[Vec<Scalar>],
    ranges: &[InputRange],
    split: &[u32],
) -> Result<f64, ApproxError> {
    let mut err_sum = 0.0f64;
    let mut n = 0usize;
    for sample in samples {
        let exact = paraprox_ir::eval_func(program, func, sample)?.to_f64_lossy();
        let mut quantized = Vec::with_capacity(sample.len());
        for ((arg, range), &q) in sample.iter().zip(ranges).zip(split) {
            let v = arg.to_f64_lossy() as f32;
            let rep = range.rep_of(range.level_of(v, q), q);
            quantized.push(match arg.ty() {
                Ty::F32 => Scalar::F32(rep),
                Ty::I32 => Scalar::I32(rep.round() as i32),
                Ty::U32 => Scalar::U32(rep.round() as u32),
                Ty::Bool => *arg,
            });
        }
        let approx = paraprox_ir::eval_func(program, func, &quantized)?.to_f64_lossy();
        let denom = exact.abs().max(1e-9);
        err_sum += ((approx - exact).abs() / denom).min(1.0);
        n += 1;
    }
    Ok(100.0 * (1.0 - err_sum / n as f64))
}

/// Steepest-ascent hill climbing over bit divisions (paper §3.1.3).
///
/// # Errors
///
/// Fails when there are no training samples or the function cannot be
/// evaluated on them.
pub fn bit_tune(
    program: &Program,
    func: &Func,
    samples: &[Vec<Scalar>],
    ranges: &[InputRange],
    total_bits: u32,
) -> Result<BitTuneResult, ApproxError> {
    if samples.is_empty() {
        return Err(ApproxError::NoTrainingData);
    }
    let variable: Vec<usize> = ranges
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_constant())
        .map(|(i, _)| i)
        .collect();
    if variable.is_empty() {
        // Function of constants only — a single-entry table.
        let split = vec![0; ranges.len()];
        let quality = split_quality(program, func, samples, ranges, &split)?;
        return Ok(BitTuneResult {
            split: split.clone(),
            quality,
            explored: vec![(split, quality)],
        });
    }
    // Root: divide bits evenly among variable inputs.
    let mut split = vec![0u32; ranges.len()];
    let per = total_bits / variable.len() as u32;
    let mut rem = total_bits - per * variable.len() as u32;
    for &i in &variable {
        split[i] = per + u32::from(rem > 0);
        rem = rem.saturating_sub(1);
    }
    let mut explored = Vec::new();
    let mut best_quality = split_quality(program, func, samples, ranges, &split)?;
    explored.push((split.clone(), best_quality));

    for _ in 0..64 {
        // Children: move one bit from input i to input j.
        let mut best_child: Option<(Vec<u32>, f64)> = None;
        for &i in &variable {
            if split[i] == 0 {
                continue;
            }
            for &j in &variable {
                if i == j {
                    continue;
                }
                let mut child = split.clone();
                child[i] -= 1;
                child[j] += 1;
                let q = split_quality(program, func, samples, ranges, &child)?;
                explored.push((child.clone(), q));
                if best_child.as_ref().map(|(_, bq)| q > *bq).unwrap_or(true) {
                    best_child = Some((child, q));
                }
            }
        }
        match best_child {
            Some((child, q)) if q > best_quality => {
                split = child;
                best_quality = q;
            }
            _ => break,
        }
    }
    Ok(BitTuneResult {
        split,
        quality: best_quality,
        explored,
    })
}

/// The paper's table-sizing search (§3.1.3): start from a default size of
/// 2048 entries (11 bits); while the bit-tuned quality beats the TOQ,
/// halve the table; when it misses, double it — returning the smallest
/// size whose tuned quality satisfies the TOQ, clamped to
/// `[min_bits, max_bits]`.
///
/// Returns `(bits, tuned result)`; when even `max_bits` misses the TOQ the
/// largest size is returned (the runtime will reject the variant).
///
/// # Errors
///
/// Propagates training-evaluation failures from [`bit_tune`].
pub fn choose_table_bits(
    program: &Program,
    func: &Func,
    samples: &[Vec<Scalar>],
    ranges: &[InputRange],
    toq_percent: f64,
    min_bits: u32,
    max_bits: u32,
) -> Result<(u32, BitTuneResult), ApproxError> {
    let mut bits = 11u32.clamp(min_bits, max_bits); // 2048 entries
    let mut best: Option<(u32, BitTuneResult)> = None;
    loop {
        let tuned = bit_tune(program, func, samples, ranges, bits)?;
        if tuned.quality >= toq_percent {
            best = Some((bits, tuned));
            if bits == min_bits {
                break;
            }
            bits -= 1; // try a smaller (faster) table
        } else {
            match best {
                // The previous (larger) size was the smallest that passed.
                Some(_) => break,
                None => {
                    if bits == max_bits {
                        return Ok((bits, tuned)); // nothing qualifies
                    }
                    bits += 1; // grow until the TOQ is met
                }
            }
        }
    }
    Ok(best.expect("loop exits with a qualifying size"))
}

/// Populate the lookup table: evaluate the function at every combination of
/// quantization-level representatives (paper §3.1.3).
///
/// Input 0 occupies the most-significant address bits.
///
/// # Errors
///
/// Fails when the function cannot be evaluated or does not return `f32`.
pub fn build_table(program: &Program, config: &MemoConfig) -> Result<Vec<f32>, ApproxError> {
    let func = program.func(config.func);
    if func.ret != Ty::F32 {
        return Err(ApproxError::NotApplicable(format!(
            "memoized function must return f32, `{}` returns {}",
            func.name, func.ret
        )));
    }
    let len = config.table_len();
    let mut table = Vec::with_capacity(len);
    for addr in 0..len {
        // Decode levels, input 0 in the most significant bits.
        let mut args = Vec::with_capacity(config.split.len());
        let mut shift: u32 = config.total_bits();
        for ((&q, range), param) in config.split.iter().zip(&config.ranges).zip(&func.params) {
            shift -= q;
            let level = if q == 0 {
                0
            } else {
                ((addr >> shift) & ((1usize << q) - 1)) as u32
            };
            let rep = range.rep_of(level, q);
            args.push(match param.ty() {
                Ty::F32 => Scalar::F32(rep),
                Ty::I32 => Scalar::I32(rep.round() as i32),
                Ty::U32 => Scalar::U32(rep.round() as u32),
                Ty::Bool => Scalar::Bool(rep != 0.0),
            });
        }
        let out = paraprox_ir::eval_func(program, func, &args)?;
        table.push(out.as_f32().map_err(ApproxError::Eval)?);
    }
    Ok(table)
}

/// A memoized kernel variant: rewritten program plus the table to bind.
#[derive(Debug, Clone)]
pub struct MemoizedVariant {
    /// Program with the rewritten kernel (same kernel id as the original).
    pub program: Program,
    /// The kernel that was rewritten.
    pub kernel: KernelId,
    /// Host contents of the lookup table.
    pub table: Vec<f32>,
    /// Index of the appended lookup-table buffer parameter.
    pub lut_param: usize,
    /// Memory space the table buffer must be allocated in.
    pub lut_space: MemSpace,
    /// The configuration that produced this variant.
    pub config: MemoConfig,
}

struct RewriteCtx<'c> {
    config: &'c MemoConfig,
    /// Where lookup loads read from (the appended param, or the staged
    /// shared array).
    table_mem: MemRef,
    locals: Vec<LocalDecl>,
}

impl RewriteCtx<'_> {
    fn fresh(&mut self, name: &str, ty: Ty) -> VarId {
        let id = VarId(self.locals.len() as u32);
        self.locals.push(LocalDecl {
            name: name.to_string(),
            ty,
        });
        id
    }

    /// Emit the quantize-concat-lookup sequence for one call site.
    /// `args` are the (already rewritten) argument expressions.
    fn lower_call(&mut self, args: Vec<Expr>, prelude: &mut Vec<Stmt>) -> Expr {
        // Bind arguments once.
        let bound: Vec<Expr> = args
            .into_iter()
            .enumerate()
            .map(|(i, a)| match a {
                Expr::Var(_) | Expr::Const(_) => a,
                other => {
                    let v = self.fresh(&format!("marg{i}"), Ty::F32);
                    prelude.push(Stmt::Let {
                        var: v,
                        init: other,
                    });
                    Expr::Var(v)
                }
            })
            .collect();
        let cfg = self.config;
        if cfg.mode == LookupMode::Linear {
            // Single variable input: interpolate between adjacent entries.
            let (idx, range, q) = cfg
                .ranges
                .iter()
                .zip(&cfg.split)
                .enumerate()
                .find(|(_, (r, _))| !r.is_constant())
                .map(|(i, (r, q))| (i, *r, *q))
                .expect("linear mode requires a variable input (validated)");
            let a_f = Expr::Cast(Ty::F32, Box::new(bound[idx].clone()));
            let levels = (1u64 << q) as f32;
            let scale = levels / range.width();
            let pos_var = self.fresh("mpos", Ty::F32);
            prelude.push(Stmt::Let {
                var: pos_var,
                init: (a_f - Expr::f32(range.min)) * Expr::f32(scale) - Expr::f32(0.5),
            });
            let lo_f = self.fresh("mlo_f", Ty::F32);
            prelude.push(Stmt::Let {
                var: lo_f,
                init: Expr::Var(pos_var)
                    .floor()
                    .max(Expr::f32(0.0))
                    .min(Expr::f32(levels - 2.0)),
            });
            let frac = self.fresh("mfrac", Ty::F32);
            prelude.push(Stmt::Let {
                var: frac,
                init: (Expr::Var(pos_var) - Expr::Var(lo_f))
                    .max(Expr::f32(0.0))
                    .min(Expr::f32(1.0)),
            });
            let lo = self.fresh("mlo", Ty::I32);
            prelude.push(Stmt::Let {
                var: lo,
                init: Expr::Cast(Ty::I32, Box::new(Expr::Var(lo_f))),
            });
            let v0 = self.fresh("mv0", Ty::F32);
            prelude.push(Stmt::Let {
                var: v0,
                init: Expr::Load {
                    mem: self.table_mem,
                    index: Box::new(Expr::Var(lo)),
                },
            });
            let v1 = self.fresh("mv1", Ty::F32);
            prelude.push(Stmt::Let {
                var: v1,
                init: Expr::Load {
                    mem: self.table_mem,
                    index: Box::new(Expr::Var(lo) + Expr::i32(1)),
                },
            });
            return Expr::Var(v0) + (Expr::Var(v1) - Expr::Var(v0)) * Expr::Var(frac);
        }
        // Nearest: quantize each variable input and concatenate the bits.
        let mut addr: Option<Expr> = None;
        for (i, (&q, range)) in cfg.split.iter().zip(&cfg.ranges).enumerate() {
            if q == 0 {
                continue;
            }
            let levels = (1u64 << q) as f32;
            let scale = levels / range.width();
            let a_f = Expr::Cast(Ty::F32, Box::new(bound[i].clone()));
            let lvl_f = ((a_f - Expr::f32(range.min)) * Expr::f32(scale))
                .floor()
                .max(Expr::f32(0.0))
                .min(Expr::f32(levels - 1.0));
            let u = self.fresh(&format!("mq{i}"), Ty::U32);
            prelude.push(Stmt::Let {
                var: u,
                init: Expr::Cast(Ty::U32, Box::new(lvl_f)),
            });
            addr = Some(match addr {
                None => Expr::Var(u),
                Some(prev) => (prev << Expr::u32(q)) | Expr::Var(u),
            });
        }
        let addr = addr.unwrap_or_else(|| Expr::u32(0));
        let addr_var = self.fresh("maddr", Ty::I32);
        prelude.push(Stmt::Let {
            var: addr_var,
            init: Expr::Cast(Ty::I32, Box::new(addr)),
        });
        let out = self.fresh("mout", Ty::F32);
        prelude.push(Stmt::Let {
            var: out,
            init: Expr::Load {
                mem: self.table_mem,
                index: Box::new(Expr::Var(addr_var)),
            },
        });
        Expr::Var(out)
    }

    fn rewrite_expr(&mut self, e: Expr, prelude: &mut Vec<Stmt>) -> Expr {
        let target = self.config.func;
        match e {
            Expr::Call { func, args } if func == target => {
                let args = args
                    .into_iter()
                    .map(|a| self.rewrite_expr(a, prelude))
                    .collect();
                self.lower_call(args, prelude)
            }
            Expr::Call { func, args } => Expr::Call {
                func,
                args: args
                    .into_iter()
                    .map(|a| self.rewrite_expr(a, prelude))
                    .collect(),
            },
            Expr::Unary(op, a) => Expr::Unary(op, Box::new(self.rewrite_expr(*a, prelude))),
            Expr::Cast(ty, a) => Expr::Cast(ty, Box::new(self.rewrite_expr(*a, prelude))),
            Expr::Binary(op, a, b) => Expr::Binary(
                op,
                Box::new(self.rewrite_expr(*a, prelude)),
                Box::new(self.rewrite_expr(*b, prelude)),
            ),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                op,
                Box::new(self.rewrite_expr(*a, prelude)),
                Box::new(self.rewrite_expr(*b, prelude)),
            ),
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => Expr::Select {
                cond: Box::new(self.rewrite_expr(*cond, prelude)),
                if_true: Box::new(self.rewrite_expr(*if_true, prelude)),
                if_false: Box::new(self.rewrite_expr(*if_false, prelude)),
            },
            Expr::Load { mem, index } => Expr::Load {
                mem,
                index: Box::new(self.rewrite_expr(*index, prelude)),
            },
            other => other,
        }
    }

    fn rewrite_block(&mut self, stmts: Vec<Stmt>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            let mut prelude = Vec::new();
            let rewritten = match stmt {
                Stmt::Let { var, init } => Stmt::Let {
                    var,
                    init: self.rewrite_expr(init, &mut prelude),
                },
                Stmt::Assign { var, value } => Stmt::Assign {
                    var,
                    value: self.rewrite_expr(value, &mut prelude),
                },
                Stmt::Store { mem, index, value } => Stmt::Store {
                    mem,
                    index: self.rewrite_expr(index, &mut prelude),
                    value: self.rewrite_expr(value, &mut prelude),
                },
                Stmt::Atomic {
                    op,
                    mem,
                    index,
                    value,
                } => Stmt::Atomic {
                    op,
                    mem,
                    index: self.rewrite_expr(index, &mut prelude),
                    value: self.rewrite_expr(value, &mut prelude),
                },
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => Stmt::If {
                    cond: self.rewrite_expr(cond, &mut prelude),
                    then_body: self.rewrite_block(then_body),
                    else_body: self.rewrite_block(else_body),
                },
                Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                } => Stmt::For {
                    var,
                    init: self.rewrite_expr(init, &mut prelude),
                    // Calls in loop bounds would be hoisted before the
                    // loop; none of the benchmarks do this.
                    cond: cond.map_bound(|e| self.rewrite_expr(e, &mut prelude)),
                    step: step.map_amount(|e| self.rewrite_expr(e, &mut prelude)),
                    body: self.rewrite_block(body),
                },
                Stmt::Sync => Stmt::Sync,
                Stmt::Return(e) => Stmt::Return(self.rewrite_expr(e, &mut prelude)),
            };
            out.extend(prelude);
            out.push(rewritten);
        }
        out
    }
}

/// Rewrite every call to `config.func` inside `kernel` into a lookup-table
/// query, returning the rewritten program, the table contents, and binding
/// metadata.
///
/// # Errors
///
/// Fails when the configuration is inapplicable (non-`f32` return, linear
/// mode on a multi-input function, table too large for shared memory is
/// *not* checked here — the device rejects it at launch) or when table
/// construction fails.
pub fn memoize_kernel(
    program: &Program,
    kernel: KernelId,
    config: &MemoConfig,
) -> Result<MemoizedVariant, ApproxError> {
    if config.mode == LookupMode::Linear && config.variable_inputs() != 1 {
        return Err(ApproxError::NotApplicable(
            "linear lookup requires exactly one variable input".to_string(),
        ));
    }
    let func = program.func(config.func);
    if config.split.len() != func.params.len() || config.ranges.len() != func.params.len() {
        return Err(ApproxError::NotApplicable(format!(
            "split/ranges arity must match `{}`'s {} parameters",
            func.name,
            func.params.len()
        )));
    }
    let table = build_table(program, config)?;

    let mut out = program.clone();
    let k = out.kernel_mut(kernel);
    let lut_param = k.params.len();
    let lut_space = match config.placement {
        TablePlacement::Constant => MemSpace::Constant,
        TablePlacement::Global | TablePlacement::Shared => MemSpace::Global,
    };
    k.params.push(Param::Buffer {
        name: "lut".to_string(),
        ty: Ty::F32,
        space: lut_space,
    });

    let mut ctx = RewriteCtx {
        config,
        table_mem: MemRef::Param(lut_param),
        locals: k.locals.clone(),
    };

    let mut staged_prologue: Vec<Stmt> = Vec::new();
    if config.placement == TablePlacement::Shared {
        let sid = paraprox_ir::SharedId(k.shared.len() as u32);
        k.shared.push(paraprox_ir::SharedDecl {
            name: "lut_s".to_string(),
            ty: Ty::F32,
            len: config.table_len(),
        });
        ctx.table_mem = MemRef::Shared(sid);
        // Cooperative staging: each thread strides over the table.
        let tid_linear = Expr::Special(paraprox_ir::Special::ThreadIdY)
            * Expr::Special(paraprox_ir::Special::BlockDimX)
            + Expr::Special(paraprox_ir::Special::ThreadIdX);
        let stride = Expr::Special(paraprox_ir::Special::BlockDimX)
            * Expr::Special(paraprox_ir::Special::BlockDimY);
        let kvar = ctx.fresh("mstage", Ty::I32);
        staged_prologue.push(Stmt::For {
            var: kvar,
            init: tid_linear,
            cond: paraprox_ir::LoopCond::Lt(Expr::i32(config.table_len() as i32)),
            step: paraprox_ir::LoopStep::Add(stride),
            body: vec![Stmt::Store {
                mem: MemRef::Shared(sid),
                index: Expr::Var(kvar),
                value: Expr::Load {
                    mem: MemRef::Param(lut_param),
                    index: Box::new(Expr::Var(kvar)),
                },
            }],
        });
        staged_prologue.push(Stmt::Sync);
    }

    let body = std::mem::take(&mut k.body);
    let mut new_body = ctx.rewrite_block(body);
    if !staged_prologue.is_empty() {
        staged_prologue.append(&mut new_body);
        new_body = staged_prologue;
    }
    let k = out.kernel_mut(kernel);
    k.body = new_body;
    k.locals = ctx.locals;
    k.name = format!(
        "{}__memo_{}b_{}_{}",
        k.name,
        config.total_bits(),
        match config.mode {
            LookupMode::Nearest => "nearest",
            LookupMode::Linear => "linear",
        },
        config.placement.label()
    );
    Ok(MemoizedVariant {
        program: out,
        kernel,
        table,
        lut_param,
        lut_space,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{FuncBuilder, KernelBuilder};
    use paraprox_vgpu::{ArgValue, Device, DeviceProfile, Dim2};

    /// f(x, c) = exp(-x*x) / (c + sqrt(x*x + 1)) — heavy, smooth, two
    /// inputs of very different sensitivity when c is constant.
    fn test_func(p: &mut Program) -> FuncId {
        let mut fb = FuncBuilder::new("smooth", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        let c = fb.scalar("c", Ty::F32);
        let x2 = fb.let_("x2", x.clone() * x);
        fb.ret((-x2.clone()).exp() / (c + (x2 + Expr::f32(1.0)).sqrt()));
        p.add_func(fb.finish())
    }

    fn training(n: usize) -> Vec<Vec<Scalar>> {
        (0..n)
            .map(|i| {
                let x = -2.0 + 4.0 * (i as f32 / (n - 1) as f32);
                vec![Scalar::F32(x), Scalar::F32(1.0)]
            })
            .collect()
    }

    #[test]
    fn ranges_identify_constant_inputs() {
        let ranges = input_ranges(&training(32)).unwrap();
        assert!(!ranges[0].is_constant());
        assert!(ranges[1].is_constant());
        assert_eq!(ranges[1].min, 1.0);
        assert!(input_ranges(&[]).is_err());
    }

    #[test]
    fn level_rep_are_consistent() {
        let r = InputRange {
            min: -1.0,
            max: 3.0,
        };
        for q in [1u32, 4, 8] {
            for lvl in 0..(1u32 << q).min(64) {
                let rep = r.rep_of(lvl, q);
                assert_eq!(r.level_of(rep, q), lvl, "q={q} lvl={lvl}");
            }
        }
        // Out-of-range values clamp.
        assert_eq!(r.level_of(-100.0, 4), 0);
        assert_eq!(r.level_of(100.0, 4), 15);
    }

    #[test]
    fn bit_tuning_starves_constant_inputs() {
        let mut p = Program::new();
        let f = test_func(&mut p);
        let samples = training(64);
        let ranges = input_ranges(&samples).unwrap();
        let func = p.func(f).clone();
        let result = bit_tune(&p, &func, &samples, &ranges, 10).unwrap();
        assert_eq!(result.split[1], 0, "constant input must get 0 bits");
        assert_eq!(result.split[0], 10);
        assert!(result.quality > 90.0, "quality = {}", result.quality);
        assert!(!result.explored.is_empty());
    }

    #[test]
    fn bit_tuning_improves_over_even_split_for_skewed_sensitivity() {
        // g(a, b) = exp(3*a) + 0.01*b : a deserves more bits than b.
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("skewed", Ty::F32);
        let a = fb.scalar("a", Ty::F32);
        let b = fb.scalar("b", Ty::F32);
        fb.ret((a * Expr::f32(3.0)).exp() + b * Expr::f32(0.01));
        let f = p.add_func(fb.finish());
        let samples: Vec<Vec<Scalar>> = (0..128)
            .map(|i| {
                let t = i as f32 / 127.0;
                vec![Scalar::F32(t * 2.0), Scalar::F32((t * 37.0) % 1.0 * 10.0)]
            })
            .collect();
        let ranges = input_ranges(&samples).unwrap();
        let func = p.func(f).clone();
        let result = bit_tune(&p, &func, &samples, &ranges, 8).unwrap();
        assert!(
            result.split[0] > result.split[1],
            "expected more bits for the sensitive input, got {:?}",
            result.split
        );
        let even_quality = result
            .explored
            .first()
            .map(|(_, q)| *q)
            .expect("root explored");
        assert!(result.quality >= even_quality);
    }

    #[test]
    fn table_matches_function_at_representatives() {
        let mut p = Program::new();
        let f = test_func(&mut p);
        let samples = training(32);
        let ranges = input_ranges(&samples).unwrap();
        let config = MemoConfig {
            func: f,
            split: vec![6, 0],
            mode: LookupMode::Nearest,
            placement: TablePlacement::Global,
            ranges: ranges.clone(),
        };
        let table = build_table(&p, &config).unwrap();
        assert_eq!(table.len(), 64);
        let func = p.func(f).clone();
        for lvl in [0u32, 17, 63] {
            let rep = ranges[0].rep_of(lvl, 6);
            let exact = paraprox_ir::eval_func(&p, &func, &[Scalar::F32(rep), Scalar::F32(1.0)])
                .unwrap()
                .as_f32()
                .unwrap();
            assert!((table[lvl as usize] - exact).abs() < 1e-6);
        }
    }

    /// Build a map kernel calling the function, memoize it, and execute
    /// both versions — the cornerstone integration check.
    fn end_to_end(mode: LookupMode, placement: TablePlacement) -> (f64, u64, u64) {
        let mut p = Program::new();
        let f = test_func(&mut p);
        let mut kb = KernelBuilder::new("map");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(
            output,
            gid,
            Expr::Call {
                func: f,
                args: vec![x, Expr::f32(1.0)],
            },
        );
        let kid = p.add_kernel(kb.finish());

        let samples = training(64);
        let ranges = input_ranges(&samples).unwrap();
        let config = MemoConfig {
            func: f,
            split: vec![8, 0],
            mode,
            placement,
            ranges,
        };
        let variant = memoize_kernel(&p, kid, &config).unwrap();

        let n = 256;
        let data: Vec<f32> = (0..n).map(|i| -2.0 + 4.0 * i as f32 / n as f32).collect();

        let mut device = Device::new(DeviceProfile::gtx560());
        let input = device.alloc_f32(MemSpace::Global, &data);
        let output = device.alloc_f32(MemSpace::Global, &vec![0.0; n]);
        let exact_stats = device
            .launch(
                &p,
                kid,
                Dim2::linear(n / 32),
                Dim2::linear(32),
                &[input.into(), output.into()],
            )
            .unwrap();
        let exact_out = device.read_f32(output).unwrap();

        let lut = match variant.lut_space {
            MemSpace::Constant => device.alloc_f32(MemSpace::Constant, &variant.table),
            _ => device.alloc_f32(MemSpace::Global, &variant.table),
        };
        let approx_output = device.alloc_f32(MemSpace::Global, &vec![0.0; n]);
        let approx_stats = device
            .launch(
                &variant.program,
                kid,
                Dim2::linear(n / 32),
                Dim2::linear(32),
                &[input.into(), approx_output.into(), ArgValue::Buffer(lut)],
            )
            .unwrap();
        let approx_out = device.read_f32(approx_output).unwrap();

        let quality = paraprox_quality::Metric::MeanRelative.quality_f32(&exact_out, &approx_out);
        (
            quality,
            exact_stats.total_cycles(),
            approx_stats.total_cycles(),
        )
    }

    #[test]
    fn memoized_kernel_is_fast_and_accurate_global_nearest() {
        let (quality, exact, approx) = end_to_end(LookupMode::Nearest, TablePlacement::Global);
        assert!(quality > 90.0, "quality = {quality}");
        assert!(
            approx < exact,
            "approx {approx} should beat exact {exact} cycles"
        );
    }

    #[test]
    fn linear_mode_is_more_accurate_than_nearest() {
        let (q_nearest, _, c_nearest) = end_to_end(LookupMode::Nearest, TablePlacement::Global);
        let (q_linear, _, c_linear) = end_to_end(LookupMode::Linear, TablePlacement::Global);
        assert!(
            q_linear > q_nearest,
            "linear {q_linear} vs nearest {q_nearest}"
        );
        assert!(
            c_linear > c_nearest,
            "linear must cost more cycles ({c_linear} vs {c_nearest})"
        );
    }

    #[test]
    fn constant_placement_works() {
        let (quality, _, _) = end_to_end(LookupMode::Nearest, TablePlacement::Constant);
        assert!(quality > 90.0, "quality = {quality}");
    }

    #[test]
    fn shared_placement_stages_and_works() {
        let (quality, _, _) = end_to_end(LookupMode::Nearest, TablePlacement::Shared);
        assert!(quality > 90.0, "quality = {quality}");
    }

    #[test]
    fn linear_rejects_multi_variable_functions() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("two", Ty::F32);
        let a = fb.scalar("a", Ty::F32);
        let b = fb.scalar("b", Ty::F32);
        fb.ret(a + b);
        let f = p.add_func(fb.finish());
        let mut kb = KernelBuilder::new("k");
        let _ = kb.buffer("in", Ty::F32, MemSpace::Global);
        let kid = p.add_kernel(kb.finish());
        let config = MemoConfig {
            func: f,
            split: vec![4, 4],
            mode: LookupMode::Linear,
            placement: TablePlacement::Global,
            ranges: vec![
                InputRange { min: 0.0, max: 1.0 },
                InputRange { min: 0.0, max: 1.0 },
            ],
        };
        assert!(matches!(
            memoize_kernel(&p, kid, &config),
            Err(ApproxError::NotApplicable(_))
        ));
    }

    #[test]
    fn table_sizing_finds_smallest_qualifying_size() {
        let mut p = Program::new();
        let f = test_func(&mut p);
        let samples = training(64);
        let ranges = input_ranges(&samples).unwrap();
        let func = p.func(f).clone();
        // A modest target: some small size qualifies.
        let (bits, tuned) = choose_table_bits(&p, &func, &samples, &ranges, 97.0, 3, 14).unwrap();
        assert!(tuned.quality >= 97.0);
        assert!((3..=14).contains(&bits));
        // Minimality: one bit fewer must miss the target (unless already at
        // the minimum).
        if bits > 3 {
            let smaller = bit_tune(&p, &func, &samples, &ranges, bits - 1).unwrap();
            assert!(
                smaller.quality < 97.0,
                "bits-1 quality {} should miss",
                smaller.quality
            );
        }
        // An unreachable target returns the max size.
        let (bits_hi, tuned_hi) =
            choose_table_bits(&p, &func, &samples, &ranges, 100.0, 3, 6).unwrap();
        assert_eq!(bits_hi, 6);
        assert!(tuned_hi.quality < 100.0);
    }

    #[test]
    fn bigger_tables_are_more_accurate() {
        let mut qualities = Vec::new();
        for bits in [3u32, 6, 10] {
            let mut p = Program::new();
            let f = test_func(&mut p);
            let samples = training(64);
            let ranges = input_ranges(&samples).unwrap();
            let config = MemoConfig {
                func: f,
                split: vec![bits, 0],
                mode: LookupMode::Nearest,
                placement: TablePlacement::Global,
                ranges,
            };
            let func = p.func(f).clone();
            let q = split_quality(&p, &func, &samples, &config.ranges, &config.split).unwrap();
            qualities.push(q);
        }
        assert!(qualities[0] < qualities[1] && qualities[1] < qualities[2]);
    }
}
