//! Errors raised by the approximation rewriters.

use std::error::Error;
use std::fmt;

use paraprox_ir::EvalError;

/// Errors from building or applying an approximation.
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxError {
    /// Lookup-table construction or bit tuning failed to evaluate the
    /// target function.
    Eval(EvalError),
    /// The requested configuration is not applicable, with a reason.
    NotApplicable(String),
    /// No training samples were provided for a function that needs them.
    NoTrainingData,
    /// A static analysis the rewriter depends on failed (malformed IR or
    /// an untypeable expression).
    Analysis(String),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::Eval(e) => write!(f, "function evaluation failed: {e}"),
            ApproxError::NotApplicable(why) => {
                write!(f, "approximation not applicable: {why}")
            }
            ApproxError::NoTrainingData => write!(f, "no training samples provided"),
            ApproxError::Analysis(why) => write!(f, "static analysis failed: {why}"),
        }
    }
}

impl Error for ApproxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApproxError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for ApproxError {
    fn from(e: EvalError) -> Self {
        ApproxError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ApproxError::from(EvalError::DivisionByZero);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&ApproxError::NoTrainingData).is_none());
        assert!(!ApproxError::NotApplicable("x".into())
            .to_string()
            .is_empty());
    }
}
