//! Safety instrumentation for approximate kernels (paper §5).
//!
//! Approximation can surface values the exact program never produces —
//! most dangerously a zero flowing into a divisor. The paper sketches the
//! remedy: "for a division that uses an approximated output and may raise
//! a divide by zero exception, it is possible to instrument the code to
//! skip this calculation where the approximated divisor is zero."
//!
//! [`guard_divisions`] implements that instrumentation: every division or
//! remainder whose divisor is not a provably nonzero constant is wrapped in
//! a select that substitutes a fallback when the divisor is zero (the
//! dividend for `x/0 → x`-style pass-through would change magnitudes, so
//! the fallback is 0 — the value the paper's "skip this calculation"
//! produces for an additive context).
//!
//! The guard's fallback constant must match the divisor's type. Types are
//! resolved through `paraprox-analysis` ([`infer_expr_ty`]): an expression
//! that cannot be typed (dangling local/parameter/callee) is a hard
//! [`ApproxError::Analysis`] instead of the old silent f32 guess, which
//! would have produced a type-mismatching guard that traps at launch.

use paraprox_analysis::{infer_expr_ty, TyScope};
use paraprox_ir::{rewrite_exprs_in_stmts, BinOp, Expr, Kernel, KernelId, Program, Scalar};

use crate::error::ApproxError;

/// Is this expression a constant that can never be zero?
fn provably_nonzero(e: &Expr) -> bool {
    match e {
        Expr::Const(Scalar::F32(v)) => *v != 0.0,
        Expr::Const(Scalar::I32(v)) => *v != 0,
        Expr::Const(Scalar::U32(v)) => *v != 0,
        _ => false,
    }
}

fn zero_like(ty: paraprox_ir::Ty) -> (Expr, Expr) {
    match ty {
        paraprox_ir::Ty::I32 => (Expr::i32(0), Expr::i32(0)),
        paraprox_ir::Ty::U32 => (Expr::u32(0), Expr::u32(0)),
        _ => (Expr::f32(0.0), Expr::f32(0.0)),
    }
}

/// Count the divisions a guard pass would instrument.
pub fn unguarded_divisions(kernel: &Kernel) -> usize {
    let mut count = 0;
    paraprox_ir::for_each_expr_in_stmts(&kernel.body, &mut |e| {
        if let Expr::Binary(BinOp::Div | BinOp::Rem, _, b) = e {
            if !provably_nonzero(b) {
                count += 1;
            }
        }
    });
    count
}

/// Instrument every division/remainder in `kernel` whose divisor is not a
/// provably nonzero constant: `a / b` becomes `b == 0 ? 0 : a / b`.
///
/// Returns the number of divisions guarded. Typed guards follow the
/// divisor's type; float divisions by zero are IEEE-defined but produce
/// infinities that poison downstream quality, so they are guarded too.
///
/// Fails with [`ApproxError::Analysis`] when a divisor cannot be typed
/// (the kernel references undeclared locals/parameters/callees); nothing
/// is rewritten in that case.
pub fn guard_divisions(program: &mut Program, kernel: KernelId) -> Result<usize, ApproxError> {
    // Pre-flight: every guarded divisor must type-check before anything is
    // mutated, so a failure leaves the program untouched.
    let snapshot = program.kernel(kernel).clone();
    let scope = TyScope::of_kernel(&snapshot);
    let mut type_err = None;
    paraprox_ir::for_each_expr_in_stmts(&snapshot.body, &mut |e| {
        if let Expr::Binary(BinOp::Div | BinOp::Rem, _, b) = e {
            if !provably_nonzero(b) && type_err.is_none() {
                if let Err(te) = infer_expr_ty(program, &scope, b) {
                    type_err = Some(te);
                }
            }
        }
    });
    if let Some(te) = type_err {
        return Err(ApproxError::Analysis(format!(
            "cannot type a division guard in kernel `{}`: {te}",
            snapshot.name
        )));
    }
    let frozen = program.clone();
    let k = program.kernel_mut(kernel);
    let mut guarded = 0;
    let body = std::mem::take(&mut k.body);
    k.body = rewrite_exprs_in_stmts(body, &mut |e| match e {
        Expr::Binary(op @ (BinOp::Div | BinOp::Rem), a, b) => {
            if provably_nonzero(&b) {
                return Expr::Binary(op, a, b);
            }
            guarded += 1;
            let ty =
                infer_expr_ty(&frozen, &scope, &b).expect("divisor types were pre-checked above");
            let (zero, fallback) = zero_like(ty);
            Expr::Select {
                cond: Box::new((*b.clone()).eq_(zero)),
                if_true: Box::new(fallback),
                if_false: Box::new(Expr::Binary(op, a, b)),
            }
        }
        other => other,
    });
    Ok(guarded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{KernelBuilder, MemSpace, Ty};
    use paraprox_vgpu::{Device, DeviceProfile, Dim2};

    fn ratio_kernel() -> (Program, KernelId) {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("ratio");
        let num = kb.buffer("num", Ty::F32, MemSpace::Global);
        let den = kb.buffer("den", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let a = kb.let_("a", kb.load(num, gid.clone()));
        let b = kb.let_("b", kb.load(den, gid.clone()));
        kb.store(out, gid, a / b);
        let kid = program.add_kernel(kb.finish());
        (program, kid)
    }

    #[test]
    fn guards_replace_zero_divisions_with_fallback() {
        let (mut program, kid) = ratio_kernel();
        assert_eq!(unguarded_divisions(program.kernel(kid)), 1);
        let guarded = guard_divisions(&mut program, kid).unwrap();
        assert_eq!(guarded, 1);
        assert_eq!(
            unguarded_divisions(program.kernel(kid)),
            1,
            "div still present (inside the guard)"
        );

        let mut device = Device::new(DeviceProfile::gtx560());
        let num = device.alloc_f32(MemSpace::Global, &[6.0, 5.0, 4.0, 3.0]);
        let den = device.alloc_f32(MemSpace::Global, &[2.0, 0.0, 4.0, 0.0]);
        let out = device.alloc_f32(MemSpace::Global, &[0.0; 4]);
        device
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[num.into(), den.into(), out.into()],
            )
            .unwrap();
        assert_eq!(device.read_f32(out).unwrap(), vec![3.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn constant_divisors_not_guarded() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("halve");
        let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(buf, gid.clone()));
        kb.store(buf, gid, v / paraprox_ir::Expr::f32(2.0));
        let kid = program.add_kernel(kb.finish());
        assert_eq!(unguarded_divisions(program.kernel(kid)), 0);
        assert_eq!(guard_divisions(&mut program, kid).unwrap(), 0);
    }

    #[test]
    fn integer_division_guard_prevents_trap() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("idiv");
        let num = kb.buffer("num", Ty::I32, MemSpace::Global);
        let den = kb.buffer("den", Ty::I32, MemSpace::Global);
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let a = kb.let_("a", kb.load(num, gid.clone()));
        let b = kb.let_typed(
            "b",
            Ty::I32,
            Expr::Cast(Ty::I32, Box::new(kb.load(den, gid.clone()))),
        );
        kb.store(out, gid, a / b);
        let kid = program.add_kernel(kb.finish());

        // Unguarded: the interpreter traps on the zero divisor.
        let mut device = Device::new(DeviceProfile::gtx560());
        let num_b = device.alloc_i32(MemSpace::Global, &[8, 9]);
        let den_b = device.alloc_i32(MemSpace::Global, &[2, 0]);
        let out_b = device.alloc_i32(MemSpace::Global, &[0, 0]);
        let args = [num_b.into(), den_b.into(), out_b.into()];
        assert!(device
            .launch(&program, kid, Dim2::linear(1), Dim2::linear(2), &args)
            .is_err());

        // Guarded: the zero divisor selects the fallback instead.
        let guarded = guard_divisions(&mut program, kid).unwrap();
        assert!(guarded >= 1);
        device
            .launch(&program, kid, Dim2::linear(1), Dim2::linear(2), &args)
            .unwrap();
        assert_eq!(device.read_i32(out_b).unwrap(), vec![4, 0]);
    }

    #[test]
    fn untypeable_divisor_is_an_error_not_a_guess() {
        // Hand-build a malformed kernel dividing by a local that was never
        // declared: the old inference silently guessed f32; now the guard
        // pass refuses up front and leaves the body untouched.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("bad");
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(out, gid, Expr::f32(1.0) / Expr::Var(paraprox_ir::VarId(99)));
        let kid = program.add_kernel(kb.finish());
        let before = program.kernel(kid).clone();
        let err = guard_divisions(&mut program, kid).unwrap_err();
        assert!(matches!(err, ApproxError::Analysis(_)), "got {err:?}");
        assert_eq!(
            program.kernel(kid).body,
            before.body,
            "failed analysis must not mutate the kernel"
        );
    }
}
