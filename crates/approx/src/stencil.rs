//! Stencil & partition approximation (paper §3.2).
//!
//! Based on the value-locality assumption (neighboring elements are
//! similar, paper Figure 5), the rewriter accesses only a *subset* of each
//! tile and reuses those values for the rest:
//!
//! * **center** scheme — the element at the tile center stands in for all
//!   neighbors within the reaching distance (paper Figure 6a),
//! * **row** scheme — one row per reaching-distance band is accessed and
//!   replicated to the other rows (Figure 6b),
//! * **column** scheme — same, per column (Figure 6c).
//!
//! The rewrite snaps each access's tile offset to its band representative
//! (`rep(d) = min(⌊d/s⌋·s + r, n−1)`, `s = 2r+1`) and then runs
//! [`crate::optimize_buffer_loads`] so collapsed accesses actually
//! disappear from the instruction stream.

use paraprox_ir::{rewrite_exprs_in_stmts, Expr, KernelId, Program, Ty};
use paraprox_patterns::affine::decompose;
use paraprox_patterns::stencil::{inline_index_lets, LoopInfo};
use paraprox_patterns::StencilCandidate;

use crate::error::ApproxError;
use crate::loadopt::optimize_buffer_loads;

/// Which subset of the tile is actually accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilScheme {
    /// Access only band centers on both axes (Figure 6a).
    Center,
    /// Access one row per band; replicate across rows (Figure 6b).
    Row,
    /// Access one column per band; replicate across columns (Figure 6c).
    Column,
}

impl StencilScheme {
    /// Label for variant names.
    pub fn label(self) -> &'static str {
        match self {
            StencilScheme::Center => "center",
            StencilScheme::Row => "row",
            StencilScheme::Column => "column",
        }
    }

    fn snaps_rows(self) -> bool {
        matches!(self, StencilScheme::Center | StencilScheme::Row)
    }

    fn snaps_cols(self) -> bool {
        matches!(self, StencilScheme::Center | StencilScheme::Column)
    }
}

/// Band representative of offset `d` within `[0, n)` for reaching distance
/// `r`: offsets in the same `2r+1`-wide band share one representative — the
/// *center of the band*, clamped to the band's actual extent when the last
/// band is truncated (so a reaching distance larger than the tile picks the
/// tile center, never an edge).
fn rep_offset(d: i64, n: i64, r: i64) -> i64 {
    let s = 2 * r + 1;
    let band_start = (d / s) * s;
    let band_len = s.min(n - band_start);
    band_start + (band_len - 1) / 2
}

/// Build the runtime snapping expression for a loop variable: the loop
/// value `v` (ranging over `start + k·step`) is replaced by the value at
/// its band representative. Exact via f32 arithmetic (trip counts are ≤ 32,
/// far below f32's integer range), which avoids the expensive integer
/// division subroutine on the GPU.
fn snap_var_expr(v: Expr, info: &LoopInfo, reach: i64) -> Expr {
    let s = 2 * reach + 1;
    if s >= info.trip {
        // Whole range collapses to the center: a compile-time constant,
        // which also unlocks loop-invariant hoisting downstream.
        return Expr::i32(info.center() as i32);
    }
    // k = (v - start) / step;  krep = min(floor(k/s)*s + r, trip-1)
    let k = if info.step == 1 && info.start == 0 {
        v
    } else {
        (v - Expr::i32(info.start as i32)) / Expr::i32(info.step as i32)
    };
    let k_f = Expr::Cast(Ty::F32, Box::new(k));
    let band = (k_f * Expr::f32(1.0 / s as f32)).floor();
    let krep = (band * Expr::f32(s as f32) + Expr::f32(reach as f32))
        .min(Expr::f32((info.trip - 1) as f32));
    let krep_i = Expr::Cast(Ty::I32, Box::new(krep));
    if info.step == 1 && info.start == 0 {
        krep_i
    } else {
        Expr::i32(info.start as i32) + krep_i * Expr::i32(info.step as i32)
    }
}

/// Collect loads from `buffer` with their guard signatures (the chain of
/// enclosing `if` arms), in the exact traversal order of
/// [`paraprox_ir::rewrite_exprs_in_stmts`]. `next_if_id` numbers the `if`
/// statements in traversal order so signatures are unique per branch site.
fn collect_loads_with_guard_sig(
    stmts: &[paraprox_ir::Stmt],
    buffer: paraprox_ir::MemRef,
    sig: &mut Vec<u32>,
    next_if_id: &mut u32,
    out: &mut Vec<(Expr, Vec<u32>)>,
) {
    use paraprox_ir::Stmt;
    fn from_expr(
        e: &Expr,
        buffer: paraprox_ir::MemRef,
        sig: &[u32],
        out: &mut Vec<(Expr, Vec<u32>)>,
    ) {
        paraprox_ir::for_each_expr(e, &mut |node| {
            if let Expr::Load { mem, index } = node {
                if *mem == buffer {
                    out.push(((**index).clone(), sig.to_vec()));
                }
            }
        });
    }
    for stmt in stmts {
        match stmt {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                from_expr(init, buffer, sig, out)
            }
            Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                from_expr(index, buffer, sig, out);
                from_expr(value, buffer, sig, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                from_expr(cond, buffer, sig, out);
                let id = *next_if_id;
                *next_if_id += 1;
                sig.push(id * 2);
                collect_loads_with_guard_sig(then_body, buffer, sig, next_if_id, out);
                sig.pop();
                sig.push(id * 2 + 1);
                collect_loads_with_guard_sig(else_body, buffer, sig, next_if_id, out);
                sig.pop();
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                from_expr(init, buffer, sig, out);
                from_expr(cond.bound(), buffer, sig, out);
                from_expr(step.amount(), buffer, sig, out);
                collect_loads_with_guard_sig(body, buffer, sig, next_if_id, out);
            }
            Stmt::Sync => {}
            Stmt::Return(e) => from_expr(e, buffer, sig, out),
        }
    }
}

fn substitute_in_expr(e: Expr, var: paraprox_ir::VarId, replacement: &Expr) -> Expr {
    paraprox_ir::rewrite_expr(e, &mut |node| match &node {
        Expr::Var(v) if *v == var => replacement.clone(),
        _ => node,
    })
}

/// Substitute a snapped loop variable into an expression: occurrences
/// inside the *index of loads from the target buffer* become the band
/// representative `rep`; all other occurrences become the true iteration
/// `value` (so filter weights etc. stay exact).
fn subst_expr_snap(
    e: Expr,
    var: paraprox_ir::VarId,
    value: i32,
    rep: i32,
    buffer: paraprox_ir::MemRef,
) -> Expr {
    match e {
        Expr::Load { mem, index } if mem == buffer => Expr::Load {
            mem,
            index: Box::new(substitute_in_expr(*index, var, &Expr::i32(rep))),
        },
        Expr::Load { mem, index } => Expr::Load {
            mem,
            index: Box::new(subst_expr_snap(*index, var, value, rep, buffer)),
        },
        Expr::Var(v) if v == var => Expr::i32(value),
        Expr::Unary(op, a) => {
            Expr::Unary(op, Box::new(subst_expr_snap(*a, var, value, rep, buffer)))
        }
        Expr::Cast(ty, a) => Expr::Cast(ty, Box::new(subst_expr_snap(*a, var, value, rep, buffer))),
        Expr::Binary(op, a, b) => Expr::Binary(
            op,
            Box::new(subst_expr_snap(*a, var, value, rep, buffer)),
            Box::new(subst_expr_snap(*b, var, value, rep, buffer)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            op,
            Box::new(subst_expr_snap(*a, var, value, rep, buffer)),
            Box::new(subst_expr_snap(*b, var, value, rep, buffer)),
        ),
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => Expr::Select {
            cond: Box::new(subst_expr_snap(*cond, var, value, rep, buffer)),
            if_true: Box::new(subst_expr_snap(*if_true, var, value, rep, buffer)),
            if_false: Box::new(subst_expr_snap(*if_false, var, value, rep, buffer)),
        },
        Expr::Call { func, args } => Expr::Call {
            func,
            args: args
                .into_iter()
                .map(|a| subst_expr_snap(a, var, value, rep, buffer))
                .collect(),
        },
        other => other,
    }
}

fn subst_stmts_snap(
    stmts: Vec<paraprox_ir::Stmt>,
    var: paraprox_ir::VarId,
    value: i32,
    rep: i32,
    buffer: paraprox_ir::MemRef,
) -> Vec<paraprox_ir::Stmt> {
    use paraprox_ir::Stmt;
    stmts
        .into_iter()
        .map(|stmt| match stmt {
            Stmt::Let { var: v, init } => Stmt::Let {
                var: v,
                init: subst_expr_snap(init, var, value, rep, buffer),
            },
            Stmt::Assign { var: v, value: e } => Stmt::Assign {
                var: v,
                value: subst_expr_snap(e, var, value, rep, buffer),
            },
            Stmt::Store {
                mem,
                index,
                value: e,
            } => Stmt::Store {
                mem,
                index: subst_expr_snap(index, var, value, rep, buffer),
                value: subst_expr_snap(e, var, value, rep, buffer),
            },
            Stmt::Atomic {
                op,
                mem,
                index,
                value: e,
            } => Stmt::Atomic {
                op,
                mem,
                index: subst_expr_snap(index, var, value, rep, buffer),
                value: subst_expr_snap(e, var, value, rep, buffer),
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: subst_expr_snap(cond, var, value, rep, buffer),
                then_body: subst_stmts_snap(then_body, var, value, rep, buffer),
                else_body: subst_stmts_snap(else_body, var, value, rep, buffer),
            },
            Stmt::For {
                var: lv,
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                var: lv,
                init: subst_expr_snap(init, var, value, rep, buffer),
                cond: cond.map_bound(|e| subst_expr_snap(e, var, value, rep, buffer)),
                step: step.map_amount(|e| subst_expr_snap(e, var, value, rep, buffer)),
                body: subst_stmts_snap(body, var, value, rep, buffer),
            },
            Stmt::Sync => Stmt::Sync,
            Stmt::Return(e) => Stmt::Return(subst_expr_snap(e, var, value, rep, buffer)),
        })
        .collect()
}

/// Unroll every `for` loop over `info.var` in a statement tree, snapping
/// target-buffer load offsets to their band representatives. Unrolling is
/// what lets the CSE pass actually delete the skipped accesses — mirroring
/// the specialized code the paper's rewriter emits.
fn unroll_snapped_loop(
    stmts: Vec<paraprox_ir::Stmt>,
    info: &LoopInfo,
    buffer: paraprox_ir::MemRef,
    reach: i64,
) -> Vec<paraprox_ir::Stmt> {
    use paraprox_ir::Stmt;
    let mut out = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        match stmt {
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } if var == info.var => {
                for k in 0..info.trip {
                    let value = (info.start + k * info.step) as i32;
                    let rep_k = rep_offset(k, info.trip, reach);
                    let rep = (info.start + rep_k * info.step) as i32;
                    out.extend(subst_stmts_snap(body.clone(), var, value, rep, buffer));
                }
                let _ = (init, cond, step);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(Stmt::If {
                cond,
                then_body: unroll_snapped_loop(then_body, info, buffer, reach),
                else_body: unroll_snapped_loop(else_body, info, buffer, reach),
            }),
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => out.push(Stmt::For {
                var,
                init,
                cond,
                step,
                body: unroll_snapped_loop(body, info, buffer, reach),
            }),
            other => out.push(other),
        }
    }
    out
}

/// Apply the stencil/partition approximation to `kernel`, returning the
/// rewritten program.
///
/// # Errors
///
/// Returns [`ApproxError::NotApplicable`] when the reaching distance is
/// zero (no approximation) or the candidate has nothing to snap under the
/// chosen scheme.
pub fn approximate_stencil(
    program: &Program,
    kernel: KernelId,
    cand: &StencilCandidate,
    scheme: StencilScheme,
    reach: u32,
) -> Result<Program, ApproxError> {
    if reach == 0 {
        return Err(ApproxError::NotApplicable(
            "reaching distance must be at least 1".to_string(),
        ));
    }
    let reach = i64::from(reach);
    let snap_rows = scheme.snaps_rows() && cand.tile_h > 1;
    let snap_cols = scheme.snaps_cols() && cand.tile_w > 1;
    if !snap_rows && !snap_cols {
        return Err(ApproxError::NotApplicable(format!(
            "scheme {} has no axis to snap on a {}x{} tile",
            scheme.label(),
            cand.tile_h,
            cand.tile_w
        )));
    }

    let mut out = program.clone();
    let original_kernel = program.kernel(kernel);
    let k = out.kernel_mut(kernel);
    let buffer = cand.buffer;

    // Pass A: snap loop variables (loop-based tiles). Constant-trip loops
    // are *unrolled* with snapped load offsets, so the CSE/hoist pass can
    // actually remove the skipped accesses (this mirrors the specialized
    // kernels Paraprox generates). Loops too large to unroll fall back to a
    // runtime snapping expression.
    const UNROLL_LIMIT: i64 = 32;
    let mut snapped_loops: Vec<&LoopInfo> = Vec::new();
    if snap_rows {
        snapped_loops.extend(cand.row_loops.iter());
    }
    if snap_cols {
        snapped_loops.extend(cand.col_loops.iter());
    }
    let mut pass_a_ran = false;
    let mut loop_substitutions: Vec<(&LoopInfo, Expr)> = Vec::new();
    for info in snapped_loops {
        pass_a_ran = true;
        if info.trip <= UNROLL_LIMIT {
            let body = std::mem::take(&mut k.body);
            k.body = unroll_snapped_loop(body, info, buffer, reach);
        } else {
            loop_substitutions.push((info, snap_var_expr(Expr::Var(info.var), info, reach)));
        }
    }
    if !loop_substitutions.is_empty() {
        let body = std::mem::take(&mut k.body);
        k.body = rewrite_exprs_in_stmts(body, &mut |e| match e {
            Expr::Load { mem, index } if mem == buffer => {
                let mut idx = *index;
                for (info, replacement) in &loop_substitutions {
                    idx = substitute_in_expr(idx, info.var, replacement);
                }
                Expr::Load {
                    mem,
                    index: Box::new(idx),
                }
            }
            other => other,
        });
    }

    // Pass B: snap unrolled offsets on axes without loops.
    // Pass B rebuilds indices from the ORIGINAL kernel's combinations, so
    // it must not run after pass A has already substituted loop variables
    // (it would undo them). Tiles mixing looped rows with hand-unrolled
    // columns (or vice versa) are snapped on their looped axes only.
    let rows_unrolled = snap_rows && cand.row_loops.is_empty() && !pass_a_ran;
    let cols_unrolled = snap_cols && cand.col_loops.is_empty() && !pass_a_ran;
    if rows_unrolled || cols_unrolled {
        // Derive per-load offsets exactly as the detector did, against the
        // ORIGINAL kernel (pass A does not touch unrolled axes). Each load
        // carries its guard signature — the chain of `if` arms enclosing it
        // — so that only the loads of the dominant (tile) region get
        // snapped: a boundary-handling branch reading the same buffer must
        // not have its accesses shifted (that could walk off the array).
        let mut indices: Vec<(Expr, Vec<u32>)> = Vec::new();
        collect_loads_with_guard_sig(
            &original_kernel.body,
            buffer,
            &mut Vec::new(),
            &mut 0,
            &mut indices,
        );
        let majority_sig = {
            let mut counts: Vec<(&Vec<u32>, usize)> = Vec::new();
            for (_, sig) in &indices {
                match counts.iter_mut().find(|(s, _)| *s == sig) {
                    Some(entry) => entry.1 += 1,
                    None => counts.push((sig, 1)),
                }
            }
            counts
                .iter()
                .max_by_key(|(_, n)| *n)
                .map(|(s, _)| (*s).clone())
                .unwrap_or_default()
        };
        let in_tile_region: Vec<bool> = indices
            .iter()
            .map(|(_, sig)| *sig == majority_sig)
            .collect();
        let indices: Vec<Expr> = indices.into_iter().map(|(e, _)| e).collect();
        let combs: Vec<_> = indices
            .iter()
            .map(|i| decompose(&inline_index_lets(original_kernel, i)))
            .collect();
        let reference = combs
            .first()
            .cloned()
            .ok_or_else(|| ApproxError::NotApplicable("no loads found".to_string()))?;
        let offsets: Vec<(i64, i64)> = combs
            .iter()
            .map(|c| {
                let diff = c.clone().sub(reference.clone());
                let dy = cand.w_term.as_ref().map(|w| diff.coeff_of(w)).unwrap_or(0);
                (dy, diff.constant)
            })
            .collect();
        let min_dy = offsets.iter().map(|o| o.0).min().unwrap_or(0);
        let min_dx = offsets.iter().map(|o| o.1).min().unwrap_or(0);
        // For each load (in traversal order), the delta to add.
        let deltas: Vec<(i64, i64)> = offsets
            .iter()
            .map(|&(dy, dx)| {
                let ndy = dy - min_dy;
                let ndx = dx - min_dx;
                let sdy = if rows_unrolled {
                    rep_offset(ndy, cand.tile_h as i64, reach)
                } else {
                    ndy
                };
                let sdx = if cols_unrolled {
                    rep_offset(ndx, cand.tile_w as i64, reach)
                } else {
                    ndx
                };
                (sdy - ndy, sdx - ndx)
            })
            .collect();
        // Rebuild each index from its snapped linear combination. This
        // canonicalizes the expressions, so loads snapped to the same tile
        // element become *structurally identical* and the CSE pass below
        // can collapse them.
        let w_term = cand.w_term.clone();
        let mut load_counter = 0usize;
        let body = std::mem::take(&mut k.body);
        k.body = rewrite_exprs_in_stmts(body, &mut |e| match e {
            Expr::Load { mem, index } if mem == buffer => {
                let counter = load_counter;
                load_counter += 1;
                if !in_tile_region.get(counter).copied().unwrap_or(false) {
                    // A minority-region access (e.g. a boundary-handling
                    // branch): leave it untouched.
                    return Expr::Load { mem, index };
                }
                let (ddy, ddx) = deltas.get(counter).copied().unwrap_or((0, 0));
                let mut comb = combs[counter].clone();
                if ddy != 0 {
                    if let Some(w) = &w_term {
                        comb = comb
                            .add(paraprox_patterns::affine::LinComb::term(w.clone()).scale(ddy));
                    }
                }
                comb.constant += ddx;
                Expr::Load {
                    mem,
                    index: Box::new(comb.to_expr()),
                }
            }
            other => other,
        });
    }

    // Make the savings real: collapse the now-identical loads.
    optimize_buffer_loads(k, buffer);

    // Safety gate (analysis-backed): when the tile lives in shared memory,
    // snapping must only *drop* reads, never introduce a read of a shared
    // slot the exact kernel did not read in the same barrier phase — a
    // widened read could observe a slot another thread has not yet filled
    // (or races with a later phase's writes).
    if matches!(buffer, paraprox_ir::MemRef::Shared(_)) {
        let before = paraprox_analysis::shared_access_set(original_kernel, None);
        let after = paraprox_analysis::shared_access_set(out.kernel(kernel), None);
        if !paraprox_analysis::shared_reads_covered(&before, &after) {
            return Err(ApproxError::NotApplicable(
                "tile replication would widen a shared-memory read beyond what the \
                 exact kernel reads in that barrier phase"
                    .to_string(),
            ));
        }
    }
    let k = out.kernel_mut(kernel);
    k.name = format!("{}__stencil_{}_r{}", k.name, scheme.label(), reach);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{count_ops, KernelBuilder, MemSpace, Program};
    use paraprox_patterns::stencil::find_stencils;
    use paraprox_quality::Metric;
    use paraprox_vgpu::{Device, DeviceProfile, Dim2};

    /// Smooth image: neighboring pixels similar (the paper's Fig. 5
    /// assumption).
    fn smooth_image(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let x = (i % w) as f32;
                let y = (i / w) as f32;
                ((x * 0.07).sin() + (y * 0.05).cos() + 2.0) * 50.0
            })
            .collect()
    }

    fn mean3x3_unrolled(program: &mut Program) -> paraprox_ir::KernelId {
        let mut kb = KernelBuilder::new("mean3x3");
        let img = kb.buffer("img", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let w = kb.scalar("w", Ty::I32);
        let h = kb.scalar("h", Ty::I32);
        let x = kb.let_("x", KernelBuilder::global_id_x());
        let y = kb.let_("y", KernelBuilder::global_id_y());
        let interior = x.clone().gt(Expr::i32(0))
            & x.clone().lt(w.clone() - Expr::i32(1))
            & y.clone().gt(Expr::i32(0))
            & y.clone().lt(h.clone() - Expr::i32(1));
        kb.if_else(
            interior,
            |kb| {
                let mut sum = Expr::f32(0.0);
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let idx =
                            (y.clone() + Expr::i32(dy)) * w.clone() + x.clone() + Expr::i32(dx);
                        sum = sum + kb.load(img, idx);
                    }
                }
                kb.store(out, y.clone() * w.clone() + x.clone(), sum / Expr::f32(9.0));
            },
            |kb| {
                let idx = y.clone() * w.clone() + x.clone();
                let v = kb.load(img, idx.clone());
                kb.store(out, idx, v);
            },
        );
        program.add_kernel(kb.finish())
    }

    fn gauss3x3_looped(program: &mut Program) -> paraprox_ir::KernelId {
        let mut kb = KernelBuilder::new("gauss3x3");
        let img = kb.buffer("img", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let w = kb.scalar("w", Ty::I32);
        let h = kb.scalar("h", Ty::I32);
        let x = kb.let_("x", KernelBuilder::global_id_x());
        let y = kb.let_("y", KernelBuilder::global_id_y());
        let interior = x.clone().gt(Expr::i32(0))
            & x.clone().lt(w.clone() - Expr::i32(1))
            & y.clone().gt(Expr::i32(0))
            & y.clone().lt(h.clone() - Expr::i32(1));
        kb.if_(interior, |kb| {
            let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
            kb.for_up("i", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, i| {
                kb.for_up("j", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, j| {
                    let idx = (y.clone() + i.clone() - Expr::i32(1)) * w.clone() + x.clone() + j
                        - Expr::i32(1);
                    let v = kb.load(img, idx);
                    kb.assign(acc, Expr::Var(acc) + v);
                });
            });
            kb.store(
                out,
                y.clone() * w.clone() + x.clone(),
                Expr::Var(acc) / Expr::f32(9.0),
            );
        });
        program.add_kernel(kb.finish())
    }

    fn run(
        program: &Program,
        kid: paraprox_ir::KernelId,
        w: usize,
        h: usize,
        img: &[f32],
    ) -> (Vec<f32>, u64) {
        let mut device = Device::new(DeviceProfile::gtx560());
        let input = device.alloc_f32(MemSpace::Global, img);
        let output = device.alloc_f32(MemSpace::Global, &vec![0.0; w * h]);
        let stats = device
            .launch(
                program,
                kid,
                Dim2::new(w / 16, h / 8),
                Dim2::new(16, 8),
                &[
                    input.into(),
                    output.into(),
                    paraprox_ir::Scalar::I32(w as i32).into(),
                    paraprox_ir::Scalar::I32(h as i32).into(),
                ],
            )
            .unwrap();
        (device.read_f32(output).unwrap(), stats.total_cycles())
    }

    fn check_scheme(
        build: fn(&mut Program) -> paraprox_ir::KernelId,
        scheme: StencilScheme,
    ) -> (f64, f64) {
        let (w, h) = (64, 32);
        let img = smooth_image(w, h);
        let mut program = Program::new();
        let kid = build(&mut program);
        let cands = find_stencils(program.kernel(kid));
        assert_eq!(cands.len(), 1, "stencil must be detected");
        let approx_program = approximate_stencil(&program, kid, &cands[0], scheme, 1).unwrap();

        let (exact_out, exact_cycles) = run(&program, kid, w, h, &img);
        let (approx_out, approx_cycles) = run(&approx_program, kid, w, h, &img);
        let quality = Metric::MeanRelative.quality_f32(&exact_out, &approx_out);
        let speedup = exact_cycles as f64 / approx_cycles as f64;
        (quality, speedup)
    }

    #[test]
    fn center_scheme_on_unrolled_tile() {
        let (quality, speedup) = check_scheme(mean3x3_unrolled, StencilScheme::Center);
        assert!(quality > 90.0, "quality = {quality}");
        assert!(speedup > 1.2, "speedup = {speedup}");
    }

    #[test]
    fn row_scheme_on_unrolled_tile() {
        let (quality, speedup) = check_scheme(mean3x3_unrolled, StencilScheme::Row);
        assert!(quality > 90.0, "quality = {quality}");
        assert!(speedup > 1.0, "speedup = {speedup}");
    }

    #[test]
    fn center_scheme_on_looped_tile() {
        let (quality, speedup) = check_scheme(gauss3x3_looped, StencilScheme::Center);
        assert!(quality > 90.0, "quality = {quality}");
        assert!(speedup > 1.2, "speedup = {speedup}");
    }

    #[test]
    fn column_scheme_on_looped_tile() {
        let (quality, speedup) = check_scheme(gauss3x3_looped, StencilScheme::Column);
        assert!(quality > 85.0, "quality = {quality}");
        assert!(speedup > 1.0, "speedup = {speedup}");
    }

    #[test]
    fn center_collapses_unrolled_loads_to_one() {
        let mut program = Program::new();
        let kid = mean3x3_unrolled(&mut program);
        let cands = find_stencils(program.kernel(kid));
        let approx =
            approximate_stencil(&program, kid, &cands[0], StencilScheme::Center, 1).unwrap();
        let before = count_ops(&program.kernel(kid).body).loads;
        let after = count_ops(&approx.kernel(kid).body).loads;
        assert!(
            after < before,
            "loads must drop: before={before} after={after}"
        );
        // 9 tile loads + 1 border load -> 1 tile load + 1 border load.
        assert!(after <= 3, "after = {after}");
    }

    #[test]
    fn zero_reach_rejected() {
        let mut program = Program::new();
        let kid = mean3x3_unrolled(&mut program);
        let cands = find_stencils(program.kernel(kid));
        assert!(matches!(
            approximate_stencil(&program, kid, &cands[0], StencilScheme::Center, 0),
            Err(ApproxError::NotApplicable(_))
        ));
    }

    #[test]
    fn rep_offset_bands() {
        // n=17, r=1 -> bands of 3 with representatives 1,4,7,10,13,16.
        assert_eq!(rep_offset(0, 17, 1), 1);
        assert_eq!(rep_offset(2, 17, 1), 1);
        assert_eq!(rep_offset(3, 17, 1), 4);
        // Truncated final band (15,16): representative is its center, 15.
        assert_eq!(rep_offset(16, 17, 1), 15);
        // Reaching distance covering the whole 3-wide tile: always the
        // tile center, never a clamped edge.
        for d in 0..3 {
            assert_eq!(rep_offset(d, 3, 2), 1);
        }
        // r large enough collapses everything to the clamped center.
        assert_eq!(rep_offset(0, 3, 1), 1);
        assert_eq!(rep_offset(2, 3, 1), 1);
    }

    #[test]
    fn shared_tile_split_across_barrier_phase_is_refused() {
        use paraprox_patterns::stencil::{StencilKind, TileOffset};
        // Threads stage input into shared memory, sync, then read ONLY the
        // two outer taps tile[tx] and tile[tx+2] — never the band center
        // tile[tx+1]. Center-snapping would redirect both reads to the
        // center, a shared slot the exact kernel does not read in that
        // barrier phase; the analysis gate must refuse.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("phase_split");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let tile = kb.shared_array("tile", Ty::F32, 34);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(tile, tx.clone(), kb.load(input, gid.clone()));
        kb.sync();
        let a = kb.let_("a", kb.load(tile, tx.clone()));
        let b = kb.let_("b", kb.load(tile, tx + Expr::i32(2)));
        kb.store(out, gid, a + b);
        let kid = program.add_kernel(kb.finish());

        let cand = StencilCandidate {
            buffer: tile,
            kind: StencilKind::Partition,
            tile_h: 1,
            tile_w: 3,
            w_term: None,
            row_loops: vec![],
            col_loops: vec![],
            offsets: vec![TileOffset { dy: 0, dx: 0 }, TileOffset { dy: 0, dx: 2 }],
        };
        let err = approximate_stencil(&program, kid, &cand, StencilScheme::Center, 1).unwrap_err();
        let ApproxError::NotApplicable(msg) = err else {
            panic!("expected NotApplicable");
        };
        assert!(msg.contains("shared"), "unexpected message: {msg}");
    }

    #[test]
    fn shared_tile_read_within_phase_passes_the_gate() {
        use paraprox_patterns::stencil::{StencilKind, TileOffset};
        // Same staging pattern, but the phase reads the full 3-wide band
        // including its center: snapping only narrows the read set, so the
        // gate lets the rewrite through.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("full_band");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let tile = kb.shared_array("tile", Ty::F32, 34);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(tile, tx.clone(), kb.load(input, gid.clone()));
        kb.sync();
        let a = kb.let_("a", kb.load(tile, tx.clone()));
        let b = kb.let_("b", kb.load(tile, tx.clone() + Expr::i32(1)));
        let c = kb.let_("c", kb.load(tile, tx + Expr::i32(2)));
        kb.store(out, gid, a + b + c);
        let kid = program.add_kernel(kb.finish());

        let cand = StencilCandidate {
            buffer: tile,
            kind: StencilKind::Partition,
            tile_h: 1,
            tile_w: 3,
            w_term: None,
            row_loops: vec![],
            col_loops: vec![],
            offsets: vec![
                TileOffset { dy: 0, dx: 0 },
                TileOffset { dy: 0, dx: 1 },
                TileOffset { dy: 0, dx: 2 },
            ],
        };
        let approx = approximate_stencil(&program, kid, &cand, StencilScheme::Center, 1).unwrap();
        let k = approx.kernel(kid);
        assert!(k.name.contains("stencil"));
    }
}
