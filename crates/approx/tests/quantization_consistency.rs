//! The memoized kernel's IR-level quantization must agree bit-for-bit with
//! the host-side quantization used to build the table — otherwise lookups
//! read the wrong entry near level boundaries.

use paraprox_approx::{
    build_table, memoize_kernel, InputRange, LookupMode, MemoConfig, TablePlacement,
};
use paraprox_ir::{Expr, FuncBuilder, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{Device, DeviceProfile, Dim2};
use proptest::prelude::*;

/// Build a single-input heavy function with a known analytic form.
fn make_program() -> (Program, paraprox_ir::FuncId, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut fb = FuncBuilder::new("f", Ty::F32);
    let x = fb.scalar("x", Ty::F32);
    fb.ret((x.clone() * x.clone() + Expr::f32(1.0)).sqrt() / (x + Expr::f32(3.0)));
    let func = program.add_func(fb.finish());

    let mut kb = KernelBuilder::new("map");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func,
            args: vec![v],
        },
    );
    let kernel = program.add_kernel(kb.finish());
    (program, func, kernel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every lane's memoized output equals `table[level_of(input)]` exactly.
    #[test]
    fn kernel_lookup_matches_host_quantization(
        min in -10.0f32..10.0,
        width in 0.5f32..20.0,
        q in 2u32..10,
        xs in prop::collection::vec(-40.0f32..40.0, 16..=16),
    ) {
        let (program, func, kernel) = make_program();
        let range = InputRange { min, max: min + width };
        let config = MemoConfig {
            func,
            split: vec![q],
            mode: LookupMode::Nearest,
            placement: TablePlacement::Global,
            ranges: vec![range],
        };
        let table = build_table(&program, &config).expect("table");
        let variant = memoize_kernel(&program, kernel, &config).expect("memoize");

        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &xs);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; xs.len()]);
        let lut_b = device.alloc_f32(MemSpace::Global, &variant.table);
        device
            .launch(
                &variant.program,
                kernel,
                Dim2::linear(1),
                Dim2::linear(xs.len()),
                &[in_b.into(), out_b.into(), lut_b.into()],
            )
            .expect("launch");
        let out = device.read_f32(out_b).expect("read");
        for (i, &x) in xs.iter().enumerate() {
            let expected = table[range.level_of(x, q) as usize];
            prop_assert_eq!(
                out[i], expected,
                "lane {} (x={}, level={})", i, x, range.level_of(x, q)
            );
        }
    }

    /// Linear mode never reads out of the table and interpolates within the
    /// two neighboring entries' value range.
    #[test]
    fn linear_lookup_bounded_by_neighbor_entries(
        q in 3u32..10,
        xs in prop::collection::vec(0.0f32..1.0, 16..=16),
    ) {
        let (program, func, kernel) = make_program();
        let range = InputRange { min: 0.0, max: 1.0 };
        let config = MemoConfig {
            func,
            split: vec![q],
            mode: LookupMode::Linear,
            placement: TablePlacement::Global,
            ranges: vec![range],
        };
        let table = build_table(&program, &config).expect("table");
        let variant = memoize_kernel(&program, kernel, &config).expect("memoize");

        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &xs);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; xs.len()]);
        let lut_b = device.alloc_f32(MemSpace::Global, &variant.table);
        device
            .launch(
                &variant.program,
                kernel,
                Dim2::linear(1),
                Dim2::linear(xs.len()),
                &[in_b.into(), out_b.into(), lut_b.into()],
            )
            .expect("launch");
        let out = device.read_f32(out_b).expect("read");
        for (i, _) in xs.iter().enumerate() {
            let lo = table
                .iter()
                .cloned()
                .fold(f32::INFINITY, f32::min);
            let hi = table
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(
                out[i] >= lo - 1e-6 && out[i] <= hi + 1e-6,
                "lane {}: {} outside table range [{}, {}]",
                i, out[i], lo, hi
            );
        }
    }

    /// The training-set quality predicted by bit tuning's model (function
    /// re-evaluation on representatives) agrees with the actual table-based
    /// kernel within a small tolerance.
    #[test]
    fn predicted_quality_matches_measured(
        q in 4u32..10,
        seed_vals in prop::collection::vec(0.05f32..0.95, 32..=32),
    ) {
        let (program, func, kernel) = make_program();
        let range = InputRange { min: 0.0, max: 1.0 };
        let samples: Vec<Vec<Scalar>> =
            seed_vals.iter().map(|&v| vec![Scalar::F32(v)]).collect();
        let f = program.func(func).clone();
        let tuned = paraprox_approx::bit_tune(&program, &f, &samples, &[range], q)
            .expect("bit tune");
        let config = MemoConfig {
            func,
            split: tuned.split.clone(),
            mode: LookupMode::Nearest,
            placement: TablePlacement::Global,
            ranges: vec![range],
        };
        let variant = memoize_kernel(&program, kernel, &config).expect("memoize");

        // Measure on the same training points via the actual kernel.
        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &seed_vals);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; seed_vals.len()]);
        let lut_b = device.alloc_f32(MemSpace::Global, &variant.table);
        device
            .launch(
                &variant.program,
                kernel,
                Dim2::linear(1),
                Dim2::linear(seed_vals.len()),
                &[in_b.into(), out_b.into(), lut_b.into()],
            )
            .expect("launch");
        let approx_out = device.read_f32(out_b).expect("read");
        let exact_out: Vec<f32> = seed_vals
            .iter()
            .map(|&x| {
                paraprox_ir::eval_func(&program, &f, &[Scalar::F32(x)])
                    .expect("eval")
                    .as_f32()
                    .expect("f32")
            })
            .collect();
        let measured =
            paraprox_quality::Metric::MeanRelative.quality_f32(&exact_out, &approx_out);
        prop_assert!(
            (measured - tuned.quality).abs() < 1.0,
            "predicted {} vs measured {}",
            tuned.quality,
            measured
        );
    }
}
