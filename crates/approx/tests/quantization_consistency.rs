//! The memoized kernel's IR-level quantization must agree bit-for-bit with
//! the host-side quantization used to build the table — otherwise lookups
//! read the wrong entry near level boundaries.

use paraprox_approx::{
    build_table, memoize_kernel, InputRange, LookupMode, MemoConfig, TablePlacement,
};
use paraprox_ir::{Expr, FuncBuilder, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_prng::Rng;
use paraprox_vgpu::{Device, DeviceProfile, Dim2};

/// Build a single-input heavy function with a known analytic form.
fn make_program() -> (Program, paraprox_ir::FuncId, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut fb = FuncBuilder::new("f", Ty::F32);
    let x = fb.scalar("x", Ty::F32);
    fb.ret((x.clone() * x.clone() + Expr::f32(1.0)).sqrt() / (x + Expr::f32(3.0)));
    let func = program.add_func(fb.finish());

    let mut kb = KernelBuilder::new("map");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func,
            args: vec![v],
        },
    );
    let kernel = program.add_kernel(kb.finish());
    (program, func, kernel)
}

/// Every lane's memoized output equals `table[level_of(input)]` exactly.
#[test]
fn kernel_lookup_matches_host_quantization() {
    for case in 0..32u64 {
        let mut r = Rng::seed_from_u64(0x9_0001 ^ case);
        let min = r.random_range(-10.0f32..10.0);
        let width = r.random_range(0.5f32..20.0);
        let q = r.random_range(2u32..10);
        let xs: Vec<f32> = (0..16).map(|_| r.random_range(-40.0f32..40.0)).collect();
        let (program, func, kernel) = make_program();
        let range = InputRange {
            min,
            max: min + width,
        };
        let config = MemoConfig {
            func,
            split: vec![q],
            mode: LookupMode::Nearest,
            placement: TablePlacement::Global,
            ranges: vec![range],
        };
        let table = build_table(&program, &config).expect("table");
        let variant = memoize_kernel(&program, kernel, &config).expect("memoize");

        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &xs);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; xs.len()]);
        let lut_b = device.alloc_f32(MemSpace::Global, &variant.table);
        device
            .launch(
                &variant.program,
                kernel,
                Dim2::linear(1),
                Dim2::linear(xs.len()),
                &[in_b.into(), out_b.into(), lut_b.into()],
            )
            .expect("launch");
        let out = device.read_f32(out_b).expect("read");
        for (i, &x) in xs.iter().enumerate() {
            let expected = table[range.level_of(x, q) as usize];
            assert_eq!(
                out[i],
                expected,
                "lane {} (x={}, level={})",
                i,
                x,
                range.level_of(x, q)
            );
        }
    }
}

/// Linear mode never reads out of the table and interpolates within the
/// two neighboring entries' value range.
#[test]
fn linear_lookup_bounded_by_neighbor_entries() {
    for case in 0..32u64 {
        let mut r = Rng::seed_from_u64(0x9_0002 ^ case);
        let q = r.random_range(3u32..10);
        let xs: Vec<f32> = (0..16).map(|_| r.random_range(0.0f32..1.0)).collect();
        let (program, func, kernel) = make_program();
        let range = InputRange { min: 0.0, max: 1.0 };
        let config = MemoConfig {
            func,
            split: vec![q],
            mode: LookupMode::Linear,
            placement: TablePlacement::Global,
            ranges: vec![range],
        };
        let table = build_table(&program, &config).expect("table");
        let variant = memoize_kernel(&program, kernel, &config).expect("memoize");

        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &xs);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; xs.len()]);
        let lut_b = device.alloc_f32(MemSpace::Global, &variant.table);
        device
            .launch(
                &variant.program,
                kernel,
                Dim2::linear(1),
                Dim2::linear(xs.len()),
                &[in_b.into(), out_b.into(), lut_b.into()],
            )
            .expect("launch");
        let out = device.read_f32(out_b).expect("read");
        for (i, _) in xs.iter().enumerate() {
            let lo = table.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = table.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(
                out[i] >= lo - 1e-6 && out[i] <= hi + 1e-6,
                "lane {}: {} outside table range [{}, {}]",
                i,
                out[i],
                lo,
                hi
            );
        }
    }
}

/// The training-set quality predicted by bit tuning's model (function
/// re-evaluation on representatives) agrees with the actual table-based
/// kernel within a small tolerance.
#[test]
fn predicted_quality_matches_measured() {
    for case in 0..32u64 {
        let mut r = Rng::seed_from_u64(0x9_0003 ^ case);
        let q = r.random_range(4u32..10);
        let seed_vals: Vec<f32> = (0..32).map(|_| r.random_range(0.05f32..0.95)).collect();
        let (program, func, kernel) = make_program();
        let range = InputRange { min: 0.0, max: 1.0 };
        let samples: Vec<Vec<Scalar>> = seed_vals.iter().map(|&v| vec![Scalar::F32(v)]).collect();
        let f = program.func(func).clone();
        let tuned =
            paraprox_approx::bit_tune(&program, &f, &samples, &[range], q).expect("bit tune");
        let config = MemoConfig {
            func,
            split: tuned.split.clone(),
            mode: LookupMode::Nearest,
            placement: TablePlacement::Global,
            ranges: vec![range],
        };
        let variant = memoize_kernel(&program, kernel, &config).expect("memoize");

        // Measure on the same training points via the actual kernel.
        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &seed_vals);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; seed_vals.len()]);
        let lut_b = device.alloc_f32(MemSpace::Global, &variant.table);
        device
            .launch(
                &variant.program,
                kernel,
                Dim2::linear(1),
                Dim2::linear(seed_vals.len()),
                &[in_b.into(), out_b.into(), lut_b.into()],
            )
            .expect("launch");
        let approx_out = device.read_f32(out_b).expect("read");
        let exact_out: Vec<f32> = seed_vals
            .iter()
            .map(|&x| {
                paraprox_ir::eval_func(&program, &f, &[Scalar::F32(x)])
                    .expect("eval")
                    .as_f32()
                    .expect("f32")
            })
            .collect();
        let measured = paraprox_quality::Metric::MeanRelative.quality_f32(&exact_out, &approx_out);
        assert!(
            (measured - tuned.quality).abs() < 1.0,
            "predicted {} vs measured {}",
            tuned.quality,
            measured
        );
    }
}
