//! Top-level pattern detection over a whole program.

use paraprox_ir::{for_each_expr_in_stmts, Expr, FuncId, Kernel, KernelId, Program};

use crate::cost::{estimate_func_cycles, worth_memoizing, LatencyTable};
use crate::purity::purity_of;
use crate::reduction::{find_reduction_loops, ReductionLoop};
use crate::scan::{match_scan, ScanMatch};
use crate::stencil::{find_stencils, StencilCandidate};

/// Whether a memoizable kernel is a plain map or a scatter/gather.
///
/// Following McCool's definitions (paper §2): a gather reads from
/// data-dependent locations, a scatter writes to them; a map's accesses are
/// a pure function of the thread index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Regular accesses.
    Map,
    /// Data-dependent (indirect) reads or writes.
    ScatterGather,
}

/// A pure, compute-heavy function call eligible for approximate
/// memoization (paper §3.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapCandidate {
    /// The callee to memoize.
    pub func: FuncId,
    /// Map vs scatter/gather classification of the enclosing kernel.
    pub kind: MapKind,
    /// Eq. (1) estimate for the callee.
    pub cycles_needed: u64,
}

/// One detected pattern instance inside a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternInstance {
    /// Map / scatter-gather: a memoizable function call.
    Map(MapCandidate),
    /// Stencil or partition tile access group.
    Stencil(StencilCandidate),
    /// Reduction loop.
    Reduction(ReductionLoop),
    /// Scan phase-I template match.
    Scan(ScanMatch),
}

impl PatternInstance {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PatternInstance::Map(c) => match c.kind {
                MapKind::Map => "map",
                MapKind::ScatterGather => "scatter/gather",
            },
            PatternInstance::Stencil(s) => match s.kind {
                crate::stencil::StencilKind::Stencil => "stencil",
                crate::stencil::StencilKind::Partition => "partition",
            },
            PatternInstance::Reduction(_) => "reduction",
            PatternInstance::Scan(_) => "scan",
        }
    }
}

/// Detection results for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPatterns {
    /// The kernel the instances belong to.
    pub kernel: KernelId,
    /// Every pattern instance found.
    pub instances: Vec<PatternInstance>,
}

impl KernelPatterns {
    /// Iterate the instances of one variant.
    pub fn maps(&self) -> impl Iterator<Item = &MapCandidate> {
        self.instances.iter().filter_map(|i| match i {
            PatternInstance::Map(c) => Some(c),
            _ => None,
        })
    }

    /// Iterate detected stencil candidates.
    pub fn stencils(&self) -> impl Iterator<Item = &StencilCandidate> {
        self.instances.iter().filter_map(|i| match i {
            PatternInstance::Stencil(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate detected reduction loops.
    pub fn reductions(&self) -> impl Iterator<Item = &ReductionLoop> {
        self.instances.iter().filter_map(|i| match i {
            PatternInstance::Reduction(r) => Some(r),
            _ => None,
        })
    }

    /// The scan match, if any.
    pub fn scan(&self) -> Option<&ScanMatch> {
        self.instances.iter().find_map(|i| match i {
            PatternInstance::Scan(s) => Some(s),
            _ => None,
        })
    }
}

/// Options steering detection.
#[derive(Debug, Clone, Default)]
pub struct DetectOptions {
    /// Kernels the programmer marked as scan phase-I implementations
    /// (the pragma escape hatch of paper §3.4.2). Hinted kernels are still
    /// template-matched; the hint only reports a diagnostic when matching
    /// fails, it cannot conjure the parameter roles.
    pub scan_hints: Vec<KernelId>,
}

/// Does the kernel perform any data-dependent (indirect) memory access?
///
/// Loaded values are tracked through local variables ("taint"), so
/// `let idx = indices[gid]; ... input[idx]` is recognized as a gather.
fn has_indirect_access(kernel: &Kernel) -> bool {
    use paraprox_ir::{Stmt, VarId};
    // Fixpoint taint: a variable is tainted when its definition contains a
    // load or reads a tainted variable.
    let mut tainted: Vec<VarId> = Vec::new();
    let expr_tainted = |e: &Expr, tainted: &[VarId]| -> bool {
        let mut hit = false;
        paraprox_ir::for_each_expr(e, &mut |n| match n {
            Expr::Load { .. } => hit = true,
            Expr::Var(v) if tainted.contains(v) => hit = true,
            _ => {}
        });
        hit
    };
    loop {
        let before = tainted.len();
        paraprox_ir::for_each_stmt(&kernel.body, &mut |stmt| match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init }
                if !tainted.contains(var) && expr_tainted(init, &tainted) =>
            {
                tainted.push(*var);
            }
            _ => {}
        });
        if tainted.len() == before {
            break;
        }
    }
    // An access is indirect when its index is tainted.
    let mut indirect = false;
    let check_index = |index: &Expr, tainted: &[VarId], indirect: &mut bool| {
        let mut hit = false;
        paraprox_ir::for_each_expr(index, &mut |n| match n {
            Expr::Load { .. } => hit = true,
            Expr::Var(v) if tainted.contains(v) => hit = true,
            _ => {}
        });
        if hit {
            *indirect = true;
        }
    };
    for_each_expr_in_stmts(&kernel.body, &mut |e| {
        if let Expr::Load { index, .. } = e {
            check_index(index, &tainted, &mut indirect);
        }
    });
    paraprox_ir::for_each_stmt(&kernel.body, &mut |stmt| {
        if let paraprox_ir::Stmt::Store { index, .. } = stmt {
            check_index(index, &tainted, &mut indirect);
        }
    });
    indirect
}

fn map_candidates(program: &Program, kernel: &Kernel, table: &LatencyTable) -> Vec<MapCandidate> {
    // Collect distinct called functions.
    let mut called: Vec<FuncId> = Vec::new();
    for_each_expr_in_stmts(&kernel.body, &mut |e| {
        if let Expr::Call { func, .. } = e {
            if !called.contains(func) {
                called.push(*func);
            }
        }
    });
    let kind = if has_indirect_access(kernel) {
        MapKind::ScatterGather
    } else {
        MapKind::Map
    };
    let mut out = Vec::new();
    for func in called {
        if !purity_of(program, func).is_pure() {
            continue;
        }
        let cycles = estimate_func_cycles(table, program, program.func(func));
        if worth_memoizing(table, cycles) {
            out.push(MapCandidate {
                func,
                kind,
                cycles_needed: cycles,
            });
        }
    }
    out
}

/// Detect every pattern in every kernel of `program`.
pub fn detect(
    program: &Program,
    table: &LatencyTable,
    options: &DetectOptions,
) -> Vec<KernelPatterns> {
    program
        .kernels()
        .map(|(id, kernel)| {
            let mut instances = Vec::new();
            // Scan first: a matched scan kernel's butterfly should not be
            // re-reported piecemeal by the other detectors.
            let scan = match_scan(kernel);
            let is_scan = scan.is_some();
            if let Some(m) = scan {
                instances.push(PatternInstance::Scan(m));
            } else if options.scan_hints.contains(&id) {
                // Hinted but unmatched: nothing to extract; fall through so
                // other detectors still run.
            }
            if !is_scan {
                for c in map_candidates(program, kernel, table) {
                    instances.push(PatternInstance::Map(c));
                }
                for s in find_stencils(kernel) {
                    instances.push(PatternInstance::Stencil(s));
                }
                for r in find_reduction_loops(kernel) {
                    instances.push(PatternInstance::Reduction(r));
                }
            }
            KernelPatterns {
                kernel: id,
                instances,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{FuncBuilder, KernelBuilder, MemSpace, Ty};

    fn heavy_func(p: &mut Program) -> FuncId {
        let mut fb = FuncBuilder::new("heavy", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret((x.clone().log() / x.clone().sqrt()).exp() / x.clone().sin());
        p.add_func(fb.finish())
    }

    #[test]
    fn map_kernel_with_heavy_pure_call_detected() {
        let mut p = Program::new();
        let f = heavy_func(&mut p);
        let mut kb = KernelBuilder::new("map");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(
            out,
            gid,
            Expr::Call {
                func: f,
                args: vec![x],
            },
        );
        let kid = p.add_kernel(kb.finish());
        let results = detect(&p, &LatencyTable::gpu_defaults(), &DetectOptions::default());
        let kp = results.iter().find(|r| r.kernel == kid).unwrap();
        let maps: Vec<_> = kp.maps().collect();
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].func, f);
        assert_eq!(maps[0].kind, MapKind::Map);
        assert!(maps[0].cycles_needed >= 180);
    }

    #[test]
    fn gather_kernel_classified_as_scatter_gather() {
        let mut p = Program::new();
        let f = heavy_func(&mut p);
        let mut kb = KernelBuilder::new("gather");
        let indices = kb.buffer("idx", Ty::I32, MemSpace::Global);
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let j = kb.load(indices, gid.clone());
        let x = kb.let_("x", kb.load(input, j));
        kb.store(
            out,
            gid,
            Expr::Call {
                func: f,
                args: vec![x],
            },
        );
        p.add_kernel(kb.finish());
        let results = detect(&p, &LatencyTable::gpu_defaults(), &DetectOptions::default());
        let maps: Vec<_> = results[0].maps().collect();
        assert_eq!(maps[0].kind, MapKind::ScatterGather);
    }

    #[test]
    fn cheap_function_not_memoized() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("cheap", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x.clone() + x);
        let f = p.add_func(fb.finish());
        let mut kb = KernelBuilder::new("map");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(
            out,
            gid,
            Expr::Call {
                func: f,
                args: vec![x],
            },
        );
        p.add_kernel(kb.finish());
        let results = detect(&p, &LatencyTable::gpu_defaults(), &DetectOptions::default());
        assert!(results[0].maps().next().is_none());
    }

    #[test]
    fn pattern_names_for_reporting() {
        let c = MapCandidate {
            func: FuncId(0),
            kind: MapKind::Map,
            cycles_needed: 500,
        };
        assert_eq!(PatternInstance::Map(c).name(), "map");
    }
}
