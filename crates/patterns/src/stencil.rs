//! Stencil / Partition detection (paper §3.2.2).
//!
//! Paraprox looks for a constant number of affine accesses
//! `(f + i) * w + (g + j)` to the same array — hand-unrolled or inside
//! loops with constant trip counts — and derives the tile's size and
//! dimensionality from the dynamic range of `i` and `j`.
//!
//! Implementation: every load's index is decomposed into a linear
//! combination (see [`crate::affine`]); enclosing constant-trip loop
//! variables are substituted over their ranges to obtain the *virtual*
//! access set; accesses whose combinations differ only in the coefficient
//! of one shared "row pitch" term (`w`) and in the constant form a tile.

use paraprox_ir::{rewrite_expr, Expr, Kernel, MemRef, MemSpace, Param, Stmt, VarId};

use crate::affine::{decompose, LinComb};

/// Whether the tile group looks like a stencil (neighborhood window) or a
/// partition (block-staged tile). The distinction follows the benchmarks:
/// partition-style kernels stage their tile through shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilKind {
    /// Neighborhood window around each output element.
    Stencil,
    /// Shared-memory staged tile (e.g. tiled matrix multiply).
    Partition,
}

/// One element of a tile, as a (row, column) offset from the tile origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileOffset {
    /// Row offset (coefficient of the row-pitch term).
    pub dy: i64,
    /// Column offset (constant part).
    pub dx: i64,
}

/// A constant-trip enclosing loop contributing to a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopInfo {
    /// The loop variable.
    pub var: VarId,
    /// First value of the loop variable.
    pub start: i64,
    /// Increment per iteration.
    pub step: i64,
    /// Number of iterations.
    pub trip: i64,
}

impl LoopInfo {
    /// The loop variable's values.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.trip).map(move |k| self.start + k * self.step)
    }

    /// The middle value of the range (used by center/row/column snapping).
    pub fn center(&self) -> i64 {
        self.start + (self.trip / 2) * self.step
    }
}

/// A detected stencil or partition access group.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilCandidate {
    /// The accessed buffer (a kernel buffer parameter).
    pub buffer: MemRef,
    /// Stencil or partition classification.
    pub kind: StencilKind,
    /// Tile height (distinct row offsets).
    pub tile_h: usize,
    /// Tile width (distinct column offsets).
    pub tile_w: usize,
    /// The row-pitch term (`w`); `None` for one-dimensional tiles.
    pub w_term: Option<Expr>,
    /// Enclosing constant loops whose variable moves the access by rows.
    pub row_loops: Vec<LoopInfo>,
    /// Enclosing constant loops whose variable moves the access by columns.
    pub col_loops: Vec<LoopInfo>,
    /// The normalized tile offsets (min row/col at 0).
    pub offsets: Vec<TileOffset>,
}

/// Inline single-assignment `Let` definitions into an expression so that
/// index analysis sees through helper locals. Only pure arithmetic
/// definitions (no loads, calls, or re-assigned variables) are inlined.
fn inline_lets(e: &Expr, defs: &[(VarId, Expr)]) -> Expr {
    let mut depth = 0;
    let mut current = e.clone();
    loop {
        let mut changed = false;
        current = rewrite_expr(current, &mut |node| {
            if let Expr::Var(v) = &node {
                if let Some((_, def)) = defs.iter().find(|(dv, _)| dv == v) {
                    changed = true;
                    return def.clone();
                }
            }
            node
        });
        depth += 1;
        if !changed || depth > 8 {
            return current;
        }
    }
}

fn is_pure_arith(e: &Expr) -> bool {
    let mut pure = true;
    paraprox_ir::for_each_expr(e, &mut |node| {
        if matches!(node, Expr::Load { .. } | Expr::Call { .. }) {
            pure = false;
        }
    });
    pure
}

/// Gather inlinable definitions: vars with exactly one `Let` and no
/// `Assign`, whose initializer is pure arithmetic.
fn gather_defs(kernel: &Kernel) -> Vec<(VarId, Expr)> {
    let mut lets: Vec<(VarId, Expr, usize)> = Vec::new();
    let mut assigns: Vec<VarId> = Vec::new();
    paraprox_ir::for_each_stmt(&kernel.body, &mut |stmt| match stmt {
        Stmt::Let { var, init } => {
            if let Some(entry) = lets.iter_mut().find(|(v, _, _)| v == var) {
                entry.2 += 1;
            } else {
                lets.push((*var, init.clone(), 1));
            }
        }
        Stmt::Assign { var, .. } => assigns.push(*var),
        Stmt::For { var, .. } => assigns.push(*var),
        _ => {}
    });
    lets.into_iter()
        .filter(|(v, init, n)| *n == 1 && !assigns.contains(v) && is_pure_arith(init))
        .map(|(v, init, _)| (v, init))
        .collect()
}

struct RawLoad {
    index: Expr,
    loops: Vec<LoopInfo>,
}

fn const_i64(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(paraprox_ir::Scalar::I32(v)) => Some(i64::from(*v)),
        Expr::Const(paraprox_ir::Scalar::U32(v)) => Some(i64::from(*v)),
        _ => None,
    }
}

fn const_loop_info(stmt: &Stmt) -> Option<LoopInfo> {
    let Stmt::For {
        var,
        init,
        cond,
        step,
        ..
    } = stmt
    else {
        return None;
    };
    let start = const_i64(init)?;
    let bound = const_i64(cond.bound())?;
    let amount = const_i64(step.amount())?;
    use paraprox_ir::{LoopCond, LoopStep};
    let trip = match (cond, step) {
        (LoopCond::Lt(_), LoopStep::Add(_)) if amount > 0 && bound > start => {
            (bound - start + amount - 1) / amount
        }
        (LoopCond::Le(_), LoopStep::Add(_)) if amount > 0 && bound >= start => {
            (bound - start + amount) / amount
        }
        _ => return None,
    };
    if !(1..=32).contains(&trip) {
        return None;
    }
    Some(LoopInfo {
        var: *var,
        start,
        step: amount,
        trip,
    })
}

fn collect_loads(stmts: &[Stmt], loops: &mut Vec<LoopInfo>, out: &mut Vec<(usize, RawLoad)>) {
    fn collect_from_expr(e: &Expr, loops: &[LoopInfo], out: &mut Vec<(usize, RawLoad)>) {
        paraprox_ir::for_each_expr(e, &mut |node| {
            if let Expr::Load {
                mem: MemRef::Param(p),
                index,
            } = node
            {
                out.push((
                    *p,
                    RawLoad {
                        index: (**index).clone(),
                        loops: loops.to_vec(),
                    },
                ));
            }
        });
    }
    for stmt in stmts {
        match stmt {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                collect_from_expr(init, loops, out)
            }
            Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                collect_from_expr(index, loops, out);
                collect_from_expr(value, loops, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_from_expr(cond, loops, out);
                collect_loads(then_body, loops, out);
                collect_loads(else_body, loops, out);
            }
            Stmt::For { body, .. } => {
                let info = const_loop_info(stmt);
                if let Some(info) = info {
                    loops.push(info);
                    collect_loads(body, loops, out);
                    loops.pop();
                } else {
                    collect_loads(body, loops, out);
                }
            }
            Stmt::Sync => {}
            Stmt::Return(e) => collect_from_expr(e, loops, out),
        }
    }
}

fn substitute_var(e: &Expr, var: VarId, value: i64) -> Expr {
    rewrite_expr(e.clone(), &mut |node| match &node {
        Expr::Var(v) if *v == var => Expr::i32(value as i32),
        _ => node,
    })
}

/// Expand one raw load over its enclosing loop ranges into concrete
/// combinations. Returns `None` when the expansion would be too large.
fn expand(load: &RawLoad, defs: &[(VarId, Expr)]) -> Option<Vec<LinComb>> {
    let inlined = inline_lets(&load.index, defs);
    // Only loops whose variable actually appears matter.
    let used: Vec<&LoopInfo> = load
        .loops
        .iter()
        .filter(|info| {
            let mut appears = false;
            paraprox_ir::for_each_expr(&inlined, &mut |node| {
                if matches!(node, Expr::Var(v) if *v == info.var) {
                    appears = true;
                }
            });
            appears
        })
        .collect();
    let combos: i64 = used.iter().map(|l| l.trip).product();
    if combos > 256 {
        return None;
    }
    let mut result = vec![inlined];
    for info in used {
        let mut next = Vec::new();
        for expr in &result {
            for value in info.values() {
                next.push(substitute_var(expr, info.var, value));
            }
        }
        result = next;
    }
    Some(result.iter().map(decompose).collect())
}

/// Derive the tile structure of a set of concrete access combinations.
///
/// Returns `(w_term, offsets)` where every access equals
/// `ref + dy*w_term + dx`.
fn derive_tile(combs: &[LinComb]) -> Option<(Option<Expr>, Vec<TileOffset>)> {
    let reference = combs.first()?;
    let mut w_term: Option<Expr> = None;
    let mut raw: Vec<(i64, i64)> = Vec::new();
    for comb in combs {
        let diff = comb.clone().sub(reference.clone());
        match diff.terms.len() {
            0 => raw.push((0, diff.constant)),
            1 => {
                let (term, coeff) = &diff.terms[0];
                match &w_term {
                    None => w_term = Some(term.clone()),
                    Some(w) if w == term => {}
                    Some(_) => return None, // inconsistent pitch terms
                }
                raw.push((*coeff, diff.constant));
            }
            _ => return None,
        }
    }
    let min_dy = raw.iter().map(|r| r.0).min()?;
    let min_dx = raw.iter().map(|r| r.1).min()?;
    let mut offsets: Vec<TileOffset> = raw
        .iter()
        .map(|&(dy, dx)| TileOffset {
            dy: dy - min_dy,
            dx: dx - min_dx,
        })
        .collect();
    offsets.sort();
    offsets.dedup();
    Some((w_term, offsets))
}

/// Find stencil/partition candidates in a kernel.
pub fn find_stencils(kernel: &Kernel) -> Vec<StencilCandidate> {
    let defs = gather_defs(kernel);
    let mut raw_loads: Vec<(usize, RawLoad)> = Vec::new();
    collect_loads(&kernel.body, &mut Vec::new(), &mut raw_loads);

    let mut candidates = Vec::new();
    let buffer_params: Vec<usize> = kernel.buffer_param_indices().collect();
    for &param in &buffer_params {
        // Skip non-global buffers (stencil approximation targets the data
        // arrays, not constant filter weights).
        match &kernel.params[param] {
            Param::Buffer { space, .. } if *space == MemSpace::Global => {}
            _ => continue,
        }
        let loads: Vec<&RawLoad> = raw_loads
            .iter()
            .filter(|(p, _)| *p == param)
            .map(|(_, l)| l)
            .collect();
        if loads.is_empty() {
            continue;
        }
        let mut combs: Vec<LinComb> = Vec::new();
        let mut ok = true;
        for load in &loads {
            match expand(load, &defs) {
                Some(mut c) => combs.append(&mut c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || combs.len() < 3 {
            continue;
        }
        let Some((w_term, offsets)) = derive_tile(&combs) else {
            continue;
        };
        if offsets.len() < 3 {
            continue;
        }
        let tile_h = (offsets.iter().map(|o| o.dy).max().unwrap_or(0) + 1) as usize;
        let tile_w = (offsets.iter().map(|o| o.dx).max().unwrap_or(0) + 1) as usize;
        if tile_h > 64 || tile_w > 64 {
            continue;
        }
        // Classify enclosing loop variables by which axis they move.
        let mut row_loops: Vec<LoopInfo> = Vec::new();
        let mut col_loops: Vec<LoopInfo> = Vec::new();
        for load in &loads {
            let inlined = inline_lets(&load.index, &defs);
            for info in &load.loops {
                let a = decompose(&substitute_var(&inlined, info.var, info.start));
                let b = decompose(&substitute_var(&inlined, info.var, info.start + info.step));
                let diff = b.sub(a);
                if diff.terms.is_empty() && diff.constant == 0 {
                    continue; // variable does not affect this load
                }
                let is_row = match (&w_term, diff.terms.len()) {
                    (Some(w), 1) => diff.terms[0].0 == *w,
                    _ => false,
                };
                let target = if is_row {
                    &mut row_loops
                } else {
                    &mut col_loops
                };
                if !target.iter().any(|l| l.var == info.var) {
                    target.push(*info);
                }
            }
        }
        let kind = if kernel.shared.is_empty() {
            StencilKind::Stencil
        } else {
            StencilKind::Partition
        };
        candidates.push(StencilCandidate {
            buffer: MemRef::Param(param),
            kind,
            tile_h,
            tile_w,
            w_term,
            row_loops,
            col_loops,
            offsets,
        });
    }
    candidates
}

/// Re-export of the let-inlining used by the stencil rewriter in
/// `paraprox-approx`, which must see the same view of index expressions as
/// the detector.
pub fn inline_index_lets(kernel: &Kernel, index: &Expr) -> Expr {
    inline_lets(index, &gather_defs(kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, KernelBuilder, Ty};

    /// 3x3 unrolled mean-filter-style kernel.
    fn unrolled_3x3() -> Kernel {
        let mut kb = KernelBuilder::new("mean3x3");
        let img = kb.buffer("img", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let w = kb.scalar("w", Ty::I32);
        let x = kb.let_("x", KernelBuilder::global_id_x());
        let y = kb.let_("y", KernelBuilder::global_id_y());
        let mut sum = Expr::f32(0.0);
        for dy in -1..=1 {
            for dx in -1..=1 {
                let idx = (y.clone() + Expr::i32(dy)) * w.clone() + x.clone() + Expr::i32(dx);
                sum = sum + kb.load(img, idx);
            }
        }
        let center = y * w + x;
        kb.store(out, center, sum / Expr::f32(9.0));
        kb.finish()
    }

    #[test]
    fn detects_unrolled_3x3_tile() {
        let k = unrolled_3x3();
        let found = find_stencils(&k);
        assert_eq!(found.len(), 1);
        let c = &found[0];
        assert_eq!(c.tile_h, 3);
        assert_eq!(c.tile_w, 3);
        assert_eq!(c.offsets.len(), 9);
        assert_eq!(c.kind, StencilKind::Stencil);
        assert!(c.w_term.is_some());
        assert!(c.row_loops.is_empty() && c.col_loops.is_empty());
    }

    /// Loop-based 1x5 row convolution.
    fn looped_1x5() -> Kernel {
        let mut kb = KernelBuilder::new("conv_row");
        let img = kb.buffer("img", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let w = kb.scalar("w", Ty::I32);
        let x = kb.let_("x", KernelBuilder::global_id_x());
        let y = kb.let_("y", KernelBuilder::global_id_y());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        let img_ref = img;
        kb.for_up("j", Expr::i32(-2), Expr::i32(3), Expr::i32(1), |kb, j| {
            let idx = y.clone() * w.clone() + x.clone() + j;
            let v = kb.load(img_ref, idx);
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.store(out, y * w + x, Expr::Var(acc));
        kb.finish()
    }

    #[test]
    fn detects_loop_based_1d_tile() {
        let k = looped_1x5();
        let found = find_stencils(&k);
        assert_eq!(found.len(), 1);
        let c = &found[0];
        assert_eq!(c.tile_h, 1);
        assert_eq!(c.tile_w, 5);
        assert!(c.w_term.is_none());
        assert_eq!(c.col_loops.len(), 1);
        assert_eq!(c.col_loops[0].trip, 5);
        assert!(c.row_loops.is_empty());
    }

    #[test]
    fn detects_2d_loop_tile_with_row_and_col_vars() {
        let mut kb = KernelBuilder::new("gauss");
        let img = kb.buffer("img", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let w = kb.scalar("w", Ty::I32);
        let x = kb.let_("x", KernelBuilder::global_id_x());
        let y = kb.let_("y", KernelBuilder::global_id_y());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, i| {
            kb.for_up("j", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, j| {
                let idx = (y.clone() + i.clone() - Expr::i32(1)) * w.clone() + x.clone() + j
                    - Expr::i32(1);
                let v = kb.load(img, idx);
                kb.assign(acc, Expr::Var(acc) + v);
            });
        });
        kb.store(out, y * w + x, Expr::Var(acc));
        let k = kb.finish();
        let found = find_stencils(&k);
        assert_eq!(found.len(), 1);
        let c = &found[0];
        assert_eq!((c.tile_h, c.tile_w), (3, 3));
        assert_eq!(c.row_loops.len(), 1);
        assert_eq!(c.col_loops.len(), 1);
        assert_ne!(c.row_loops[0].var, c.col_loops[0].var);
    }

    #[test]
    fn single_access_is_not_a_tile() {
        let mut kb = KernelBuilder::new("copy");
        let img = kb.buffer("img", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(img, gid.clone()));
        kb.store(out, gid, v);
        let k = kb.finish();
        assert!(find_stencils(&k).is_empty());
    }

    #[test]
    fn shared_memory_classifies_as_partition() {
        let mut kb = KernelBuilder::new("tiled");
        let a = kb.buffer("a", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let w = kb.scalar("w", Ty::I32);
        let tile = kb.shared_array("tile", Ty::F32, 16);
        let x = kb.let_("x", KernelBuilder::global_id_x());
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        kb.for_up("t", Expr::i32(0), Expr::i32(4), Expr::i32(1), |kb, t| {
            let idx = x.clone() * w.clone() + t;
            let v = kb.load(a, idx);
            kb.store(tile, tid.clone(), v);
            kb.sync();
        });
        kb.store(out, x, kb.load(tile, tid));
        let k = kb.finish();
        let found = find_stencils(&k);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, StencilKind::Partition);
    }
}
