//! Static cycle estimation — the paper's Eq. (1).
//!
//! `cycles_needed = Σ_{inst ∈ f} latency(inst)`
//!
//! Paraprox receives the per-architecture instruction latencies as a table
//! (the paper measured them with the microbenchmarks of Wong et al.) and
//! only memoizes functions whose estimated cycles exceed one order of
//! magnitude above the L1 read latency.

use paraprox_ir::{BinOp, Expr, Func, LoopCond, LoopStep, Program, Scalar, Stmt, UnOp};

/// Per-instruction latencies used by the static estimator.
///
/// Mirrors the latency fields of a device profile; `paraprox` (the core
/// crate) constructs one from a `DeviceProfile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// Basic ALU op.
    pub alu: u64,
    /// Transcendental (`exp`, `log`, `sin`, `cos`, `rsqrt`).
    pub transcendental: u64,
    /// Float division / remainder / `pow`.
    pub div: u64,
    /// Square root.
    pub sqrt: u64,
    /// Integer division / remainder.
    pub int_div: u64,
    /// L1 read latency — the threshold anchor of §3.1.2.
    pub l1_read: u64,
}

impl LatencyTable {
    /// Latencies matching the simulated GTX 560 device profile; kept
    /// here (duplicated by construction in the core crate) so this crate
    /// stays independent of the simulator.
    pub fn gpu_defaults() -> LatencyTable {
        LatencyTable {
            alu: 2,
            transcendental: 20,
            div: 180,
            sqrt: 22,
            int_div: 70,
            l1_read: 30,
        }
    }

    fn unop(&self, op: UnOp) -> u64 {
        if op.is_transcendental() {
            self.transcendental
        } else if op == UnOp::Sqrt {
            self.sqrt
        } else {
            self.alu
        }
    }

    fn binop(&self, op: BinOp) -> u64 {
        match op {
            // Static estimation cannot always know operand types; float
            // division latency is the conservative choice the paper's
            // heuristic needs (it looks for *expensive* functions).
            BinOp::Div | BinOp::Rem => self.div,
            BinOp::Pow => 2 * self.div,
            _ => self.alu,
        }
    }
}

/// Trip-count estimate used for loops whose bounds are not compile-time
/// constants. Eq. (1) only needs an order-of-magnitude signal.
const DEFAULT_TRIP: u64 = 8;

fn const_i64(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Scalar::I32(v)) => Some(i64::from(*v)),
        Expr::Const(Scalar::U32(v)) => Some(i64::from(*v)),
        _ => None,
    }
}

/// Estimate the trip count of a counted loop with constant bounds; falls
/// back to [`DEFAULT_TRIP`].
fn trip_estimate(init: &Expr, cond: &LoopCond, step: &LoopStep) -> u64 {
    let (Some(start), Some(bound), Some(amount)) = (
        const_i64(init),
        const_i64(cond.bound()),
        const_i64(step.amount()),
    ) else {
        return DEFAULT_TRIP;
    };
    match (cond, step) {
        (LoopCond::Lt(_), LoopStep::Add(_)) if amount > 0 && bound > start => {
            ((bound - start) as u64).div_ceil(amount as u64)
        }
        (LoopCond::Le(_), LoopStep::Add(_)) if amount > 0 && bound >= start => {
            ((bound - start + 1) as u64).div_ceil(amount as u64)
        }
        (LoopCond::Gt(_), LoopStep::Sub(_)) if amount > 0 && start > bound => {
            ((start - bound) as u64).div_ceil(amount as u64)
        }
        (LoopCond::Gt(_), LoopStep::Shr(_)) if amount > 0 && start > bound && start > 0 => {
            // Halving loop: ~log2(start/bound).
            let mut v = start;
            let mut n = 0;
            while v > bound && n < 64 {
                v >>= amount as u32;
                n += 1;
            }
            n
        }
        _ => DEFAULT_TRIP,
    }
}

fn expr_cycles(table: &LatencyTable, program: &Program, e: &Expr) -> u64 {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Param(_) | Expr::Special(_) => 0,
        Expr::Unary(op, a) => table.unop(*op) + expr_cycles(table, program, a),
        Expr::Binary(op, a, b) => {
            table.binop(*op) + expr_cycles(table, program, a) + expr_cycles(table, program, b)
        }
        Expr::Cmp(_, a, b) => {
            table.alu + expr_cycles(table, program, a) + expr_cycles(table, program, b)
        }
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => {
            table.alu
                + expr_cycles(table, program, cond)
                + expr_cycles(table, program, if_true)
                + expr_cycles(table, program, if_false)
        }
        Expr::Cast(_, a) => table.alu + expr_cycles(table, program, a),
        // Loads are excluded: Eq. (1) measures *computation* replaced by
        // the lookup (candidate functions contain no loads anyway).
        Expr::Load { index, .. } => expr_cycles(table, program, index),
        Expr::Call { func, args } => {
            let args_cost: u64 = args.iter().map(|a| expr_cycles(table, program, a)).sum();
            let callee_cost = program
                .funcs()
                .nth(func.0)
                .map(|(_, f)| stmts_cycles(table, program, &f.body))
                .unwrap_or(0);
            args_cost + callee_cost
        }
    }
}

fn stmts_cycles(table: &LatencyTable, program: &Program, stmts: &[Stmt]) -> u64 {
    let mut total = 0;
    for stmt in stmts {
        total += match stmt {
            Stmt::Let { init, .. } => expr_cycles(table, program, init),
            Stmt::Assign { value, .. } => expr_cycles(table, program, value),
            Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                expr_cycles(table, program, index) + expr_cycles(table, program, value)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // Both arms may execute under SIMT; sum them (conservative,
                // and what a warp pays under divergence).
                table.alu
                    + expr_cycles(table, program, cond)
                    + stmts_cycles(table, program, then_body)
                    + stmts_cycles(table, program, else_body)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let trips = trip_estimate(init, cond, step);
                expr_cycles(table, program, init)
                    + trips
                        * (table.alu
                            + expr_cycles(table, program, cond.bound())
                            + expr_cycles(table, program, step.amount())
                            + stmts_cycles(table, program, body))
            }
            Stmt::Sync => 0,
            Stmt::Return(e) => expr_cycles(table, program, e),
        };
    }
    total
}

/// Estimate `cycles_needed` (Eq. 1) for a device function.
pub fn estimate_func_cycles(table: &LatencyTable, program: &Program, func: &Func) -> u64 {
    stmts_cycles(table, program, &func.body)
}

/// The paper's candidacy test: a function benefits from memoization when
/// its estimated cycles are at least one order of magnitude above the L1
/// read latency.
pub fn worth_memoizing(table: &LatencyTable, cycles_needed: u64) -> bool {
    cycles_needed >= 10 * table.l1_read
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, FuncBuilder, Ty};

    fn table() -> LatencyTable {
        LatencyTable::gpu_defaults()
    }

    #[test]
    fn heavy_function_exceeds_threshold() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("heavy", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        // Two divisions plus transcendentals: well past 10x L1 (300 cycles).
        fb.ret((x.clone().log() / x.clone().sqrt()).exp() / x.clone().sin());
        let f = fb.finish();
        let cycles = estimate_func_cycles(&table(), &p, &f);
        assert!(cycles >= 2 * 180, "cycles = {cycles}");
        assert!(worth_memoizing(&table(), cycles));
        p.add_func(f);
    }

    #[test]
    fn light_function_fails_threshold() {
        let p = Program::new();
        let mut fb = FuncBuilder::new("light", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x.clone() + x);
        let f = fb.finish();
        let cycles = estimate_func_cycles(&table(), &p, &f);
        assert!(!worth_memoizing(&table(), cycles), "cycles = {cycles}");
    }

    #[test]
    fn loops_multiply_body_cost() {
        let p = Program::new();
        let mut fb = FuncBuilder::new("loopy", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        let acc = fb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        fb.for_up("i", Expr::i32(0), Expr::i32(100), Expr::i32(1), |fb, _| {
            fb.assign(acc, Expr::Var(acc) + x.clone().exp());
        });
        fb.ret(Expr::Var(acc));
        let f = fb.finish();
        let cycles = estimate_func_cycles(&table(), &p, &f);
        // 100 iterations x (exp + add + loop overhead) >= 100 * 8.
        assert!(cycles >= 100 * table().transcendental, "cycles = {cycles}");
    }

    #[test]
    fn trip_estimates() {
        use paraprox_ir::{LoopCond, LoopStep};
        assert_eq!(
            trip_estimate(
                &Expr::i32(0),
                &LoopCond::Lt(Expr::i32(10)),
                &LoopStep::Add(Expr::i32(2))
            ),
            5
        );
        assert_eq!(
            trip_estimate(
                &Expr::i32(64),
                &LoopCond::Gt(Expr::i32(0)),
                &LoopStep::Shr(Expr::i32(1))
            ),
            7
        );
        // Non-constant bound falls back to the default.
        assert_eq!(
            trip_estimate(
                &Expr::i32(0),
                &LoopCond::Lt(Expr::Param(0)),
                &LoopStep::Add(Expr::i32(1))
            ),
            DEFAULT_TRIP
        );
    }

    #[test]
    fn nested_call_costs_include_callee() {
        let mut p = Program::new();
        let mut inner = FuncBuilder::new("inner", Ty::F32);
        let x = inner.scalar("x", Ty::F32);
        inner.ret(x.exp());
        let inner_id = p.add_func(inner.finish());

        let mut outer = FuncBuilder::new("outer", Ty::F32);
        let y = outer.scalar("y", Ty::F32);
        outer.ret(Expr::Call {
            func: inner_id,
            args: vec![y],
        });
        let f = outer.finish();
        let cycles = estimate_func_cycles(&table(), &p, &f);
        assert!(cycles >= table().transcendental);
    }
}
