//! Reduction-loop detection (paper §3.3.2).
//!
//! A loop is a reduction loop when (a) it contains an accumulative
//! instruction `a = a ⊕ b` with `⊕` associative-and-commutative, and (b)
//! the reduction variable `a` is neither read nor modified by any other
//! instruction inside the loop. Loops performing atomic
//! add/min/max/inc/and/or/xor operations are also reduction loops.

use paraprox_ir::{for_each_expr, AtomicOp, BinOp, Expr, Kernel, Stmt, VarId};

use crate::path::{walk_with_paths, StmtPath};

/// How the reduction combines values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionKind {
    /// A plain accumulative instruction `a = a ⊕ b`.
    Accumulation {
        /// The reduction variable.
        var: VarId,
        /// The combining operator.
        op: BinOp,
    },
    /// One or more atomic read-modify-writes inside the loop.
    Atomic {
        /// The atomic operation used.
        op: AtomicOp,
    },
}

/// A detected reduction loop inside a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionLoop {
    /// Path of the `For` statement within the kernel body.
    pub path: StmtPath,
    /// What kind of reduction the loop performs.
    pub kind: ReductionKind,
}

impl ReductionLoop {
    /// True when the skipping-rate adjustment (multiply the partial result
    /// by N) applies — i.e. the combining operation is addition.
    pub fn needs_adjustment(&self) -> bool {
        matches!(
            self.kind,
            ReductionKind::Accumulation { op: BinOp::Add, .. }
                | ReductionKind::Atomic {
                    op: AtomicOp::Add | AtomicOp::Inc
                }
        )
    }
}

/// Count reads of `var` in an expression.
fn reads_of(e: &Expr, var: VarId) -> usize {
    let mut n = 0;
    for_each_expr(e, &mut |e| {
        if matches!(e, Expr::Var(v) if *v == var) {
            n += 1;
        }
    });
    n
}

/// Statistics about how `var` is used inside a loop body.
#[derive(Default)]
struct VarUsage {
    reads: usize,
    writes: usize,
    accumulations: Vec<BinOp>,
}

fn scan_usage(stmts: &[Stmt], var: VarId, usage: &mut VarUsage) {
    for stmt in stmts {
        match stmt {
            Stmt::Let { var: v, init }
            | Stmt::Assign {
                var: v,
                value: init,
            } => {
                // Is this the accumulative form `var = var ⊕ e`?
                let is_accum = *v == var
                    && match init {
                        Expr::Binary(op, a, b) if op.is_reduction_compatible() => {
                            (matches!(**a, Expr::Var(x) if x == var) && reads_of(b, var) == 0)
                                || (matches!(**b, Expr::Var(x) if x == var)
                                    && reads_of(a, var) == 0)
                        }
                        _ => false,
                    };
                if is_accum {
                    if let Expr::Binary(op, _, _) = init {
                        usage.accumulations.push(*op);
                    }
                } else {
                    usage.reads += reads_of(init, var);
                    if *v == var {
                        usage.writes += 1;
                    }
                }
            }
            Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                usage.reads += reads_of(index, var) + reads_of(value, var);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                usage.reads += reads_of(cond, var);
                scan_usage(then_body, var, usage);
                scan_usage(else_body, var, usage);
            }
            Stmt::For {
                var: loop_var,
                init,
                cond,
                step,
                body,
            } => {
                usage.reads += reads_of(init, var)
                    + reads_of(cond.bound(), var)
                    + reads_of(step.amount(), var);
                if *loop_var == var {
                    usage.writes += 1;
                }
                scan_usage(body, var, usage);
            }
            Stmt::Sync => {}
            Stmt::Return(e) => usage.reads += reads_of(e, var),
        }
    }
}

/// Collect candidate reduction variables: every variable that appears on
/// the left of an accumulative instruction directly or transitively inside
/// the loop body.
fn candidate_vars(stmts: &[Stmt], out: &mut Vec<VarId>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } | Stmt::Let { var, init: value } => {
                if let Expr::Binary(op, a, b) = value {
                    if op.is_reduction_compatible() {
                        let self_ref = matches!(**a, Expr::Var(x) if x == *var)
                            || matches!(**b, Expr::Var(x) if x == *var);
                        if self_ref && !out.contains(var) {
                            out.push(*var);
                        }
                    }
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                candidate_vars(then_body, out);
                candidate_vars(else_body, out);
            }
            Stmt::For { body, .. } => candidate_vars(body, out),
            _ => {}
        }
    }
}

fn first_atomic(stmts: &[Stmt]) -> Option<AtomicOp> {
    for stmt in stmts {
        match stmt {
            Stmt::Atomic { op, .. } => return Some(*op),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                if let Some(op) = first_atomic(then_body).or_else(|| first_atomic(else_body)) {
                    return Some(op);
                }
            }
            // Nested loops are analyzed as their own reduction loops.
            Stmt::For { .. } => {}
            _ => {}
        }
    }
    None
}

/// Find every reduction loop in a kernel.
pub fn find_reduction_loops(kernel: &Kernel) -> Vec<ReductionLoop> {
    let mut found = Vec::new();
    walk_with_paths(&kernel.body, &mut |path, stmt| {
        let Stmt::For {
            body,
            var: loop_var,
            ..
        } = stmt
        else {
            return;
        };
        // Accumulation reductions.
        let mut vars = Vec::new();
        candidate_vars(body, &mut vars);
        for var in vars {
            if var == *loop_var {
                continue;
            }
            let mut usage = VarUsage::default();
            scan_usage(body, var, &mut usage);
            let ops: Vec<BinOp> = usage.accumulations.clone();
            if ops.len() == 1 && usage.reads == 0 && usage.writes == 0 {
                found.push(ReductionLoop {
                    path: path.clone(),
                    kind: ReductionKind::Accumulation { var, op: ops[0] },
                });
            }
        }
        // Atomic reductions.
        if let Some(op) = first_atomic(body) {
            found.push(ReductionLoop {
                path: path.clone(),
                kind: ReductionKind::Atomic { op },
            });
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, KernelBuilder, MemSpace, Ty};

    #[test]
    fn detects_additive_accumulation() {
        let mut kb = KernelBuilder::new("sum");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), n, Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.assign(acc, Expr::Var(acc) + v);
        });
        let k = kb.finish();
        let loops = find_reduction_loops(&k);
        assert_eq!(loops.len(), 1);
        assert!(matches!(
            loops[0].kind,
            ReductionKind::Accumulation { op: BinOp::Add, .. }
        ));
        assert!(loops[0].needs_adjustment());
    }

    #[test]
    fn detects_min_reduction_without_adjustment() {
        let mut kb = KernelBuilder::new("minimum");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(f32::MAX));
        kb.for_up("i", Expr::i32(0), n, Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.assign(acc, Expr::Var(acc).min(v));
        });
        let k = kb.finish();
        let loops = find_reduction_loops(&k);
        assert_eq!(loops.len(), 1);
        assert!(!loops[0].needs_adjustment());
    }

    #[test]
    fn rejects_var_read_elsewhere_in_loop() {
        let mut kb = KernelBuilder::new("not_reduction");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), n, Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i.clone()));
            kb.assign(acc, Expr::Var(acc) + v);
            // A prefix-sum-style use of acc disqualifies the loop.
            kb.store(output, i, Expr::Var(acc));
        });
        let k = kb.finish();
        assert!(find_reduction_loops(&k).is_empty());
    }

    #[test]
    fn detects_atomic_reduction_loop() {
        let mut kb = KernelBuilder::new("histogram");
        let input = kb.buffer("in", Ty::I32, MemSpace::Global);
        let counts = kb.buffer("counts", Ty::I32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        kb.for_up("i", Expr::i32(0), n, Expr::i32(1), |kb, i| {
            let bin = kb.let_("bin", kb.load(input, i));
            kb.atomic(AtomicOp::Add, counts, bin, Expr::i32(1));
        });
        let k = kb.finish();
        let loops = find_reduction_loops(&k);
        assert_eq!(loops.len(), 1);
        assert!(matches!(
            loops[0].kind,
            ReductionKind::Atomic { op: AtomicOp::Add }
        ));
        assert!(loops[0].needs_adjustment());
    }

    #[test]
    fn subtraction_is_not_a_reduction() {
        let mut kb = KernelBuilder::new("sub");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), n, Expr::i32(1), |kb, i| {
            let v = kb.let_("v", kb.load(input, i));
            kb.assign(acc, Expr::Var(acc) - v);
        });
        let k = kb.finish();
        assert!(find_reduction_loops(&k).is_empty());
    }

    #[test]
    fn nested_loops_each_detected() {
        let mut kb = KernelBuilder::new("nested");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        let outer_acc = kb.let_mut("outer", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), n.clone(), Expr::i32(1), |kb, _i| {
            let inner_acc = kb.let_mut("inner", Ty::F32, Expr::f32(0.0));
            kb.for_up("j", Expr::i32(0), n.clone(), Expr::i32(1), |kb, j| {
                let v = kb.let_("v", kb.load(input, j));
                kb.assign(inner_acc, Expr::Var(inner_acc) + v);
            });
            kb.assign(outer_acc, Expr::Var(outer_acc) + Expr::Var(inner_acc));
        });
        let k = kb.finish();
        let loops = find_reduction_loops(&k);
        // Outer loop reduces outer_acc; inner loop reduces inner_acc.
        // The outer loop is NOT a reduction w.r.t. inner_acc (inner_acc is
        // both written by Let and read by the outer accumulation).
        assert_eq!(loops.len(), 2);
        let depths: Vec<usize> = loops.iter().map(|l| l.path.depth()).collect();
        assert!(depths.contains(&1) && depths.contains(&2));
    }
}
