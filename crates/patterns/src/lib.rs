//! Detection of the six data-parallel patterns Paraprox targets.
//!
//! Given a [`paraprox_ir::Program`], this crate finds the computation idioms
//! that the paper's §3 optimizations apply to:
//!
//! * **Map / Scatter-Gather** (§3.1.2) — kernels calling *pure*,
//!   compute-heavy device functions. Purity is established by
//!   [`purity::purity_of`]; "compute-heavy" by the paper's Eq. (1)
//!   (`cycles_needed = Σ latency(inst)`, via [`cost::estimate_func_cycles`])
//!   compared against one order of magnitude above the L1 read latency.
//! * **Stencil / Partition** (§3.2.2) — groups of affine accesses
//!   `(f+i)*w + (g+j)` to one array forming a tile, found by the linear
//!   decomposition in [`affine`].
//! * **Reduction** (§3.3.2) — loops with an accumulative instruction
//!   `a = a ⊕ b` whose reduction variable is otherwise untouched, plus
//!   loops performing atomic read-modify-writes.
//! * **Scan** (§3.4.2) — template matching against the canonical
//!   three-phase data-parallel scan implementation.
//!
//! The entry point is [`detect`], which returns every [`PatternInstance`]
//! found in each kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paraprox_analysis::affine;
pub mod cost;
mod detect;
pub mod path;
pub mod purity;
pub mod reduction;
pub mod scan;
pub mod stencil;

pub use cost::LatencyTable;
pub use detect::{detect, DetectOptions, KernelPatterns, MapCandidate, MapKind, PatternInstance};
pub use path::StmtPath;
pub use purity::{purity_of, Purity};
pub use reduction::{ReductionKind, ReductionLoop};
pub use scan::ScanMatch;
pub use stencil::{StencilCandidate, StencilKind, TileOffset};
