//! Purity analysis for device functions (paper §3.1.2).
//!
//! A function is a memoization candidate only if it is *pure*: its output
//! depends only on its arguments. The paper's conditions map onto the IR as
//! follows — the function must not:
//!
//! * read or write device memory (`Load`, `Store`, `Atomic`),
//! * use thread/block specials (output would depend on the thread ID),
//! * execute barriers,
//! * call an impure function.
//!
//! The walk itself now lives in `paraprox-analysis` as the effect-summary
//! traversal ([`paraprox_analysis::summarize_func`]); this module keeps the
//! [`Purity`] type and its diagnostic payloads byte-identical for existing
//! callers (the summary records the first impure construct in the exact
//! pre-order of the original analysis).

use paraprox_analysis::summarize_func;
use paraprox_ir::{FuncId, Program};

/// The result of analyzing one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Purity {
    /// The function is pure and may be memoized.
    Pure,
    /// The function is impure; the payload names the first offending
    /// construct (for diagnostics).
    Impure(&'static str),
}

impl Purity {
    /// True for [`Purity::Pure`].
    pub fn is_pure(&self) -> bool {
        matches!(self, Purity::Pure)
    }
}

/// Analyze the purity of function `id` in `program`.
///
/// # Panics
///
/// Panics if `id` does not belong to `program`.
pub fn purity_of(program: &Program, id: FuncId) -> Purity {
    match summarize_func(program, id).first_impurity {
        None => Purity::Pure,
        Some(reason) => Purity::Impure(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, FuncBuilder, Special, Stmt, Ty};

    #[test]
    fn arithmetic_function_is_pure() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("poly", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        let y = fb.let_("y", x.clone() * x + Expr::f32(1.0));
        fb.ret(y.exp());
        let id = p.add_func(fb.finish());
        assert!(purity_of(&p, id).is_pure());
    }

    #[test]
    fn thread_special_makes_impure() {
        let mut p = Program::new();
        let f = paraprox_ir::Func {
            name: "tid".into(),
            params: vec![],
            ret: Ty::I32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Special(Special::ThreadIdX))],
        };
        let id = p.add_func(f);
        assert_eq!(purity_of(&p, id), Purity::Impure("thread/block special"));
    }

    #[test]
    fn load_makes_impure() {
        let mut p = Program::new();
        let f = paraprox_ir::Func {
            name: "reads".into(),
            params: vec![],
            ret: Ty::F32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Load {
                mem: paraprox_ir::MemRef::Param(0),
                index: Box::new(Expr::i32(0)),
            })],
        };
        let id = p.add_func(f);
        assert_eq!(purity_of(&p, id), Purity::Impure("memory load"));
    }

    #[test]
    fn call_to_pure_callee_is_pure_and_transitive() {
        let mut p = Program::new();
        let mut inner = FuncBuilder::new("sq", Ty::F32);
        let x = inner.scalar("x", Ty::F32);
        inner.ret(x.clone() * x);
        let inner_id = p.add_func(inner.finish());

        let mut outer = FuncBuilder::new("outer", Ty::F32);
        let y = outer.scalar("y", Ty::F32);
        outer.ret(Expr::Call {
            func: inner_id,
            args: vec![y],
        });
        let outer_id = p.add_func(outer.finish());
        assert!(purity_of(&p, outer_id).is_pure());
    }

    #[test]
    fn call_to_impure_callee_is_impure() {
        let mut p = Program::new();
        let impure = paraprox_ir::Func {
            name: "impure".into(),
            params: vec![],
            ret: Ty::I32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Special(Special::BlockIdX))],
        };
        let impure_id = p.add_func(impure);
        let mut outer = FuncBuilder::new("outer", Ty::I32);
        outer.ret(Expr::Call {
            func: impure_id,
            args: vec![],
        });
        let outer_id = p.add_func(outer.finish());
        assert!(!purity_of(&p, outer_id).is_pure());
    }

    #[test]
    fn impure_payloads_byte_identical_to_legacy_walk() {
        use paraprox_ir::{AtomicOp, MemRef, Special};
        // Every reason string the legacy walk produced, asserted verbatim,
        // plus traversal-order cases: the summary must report the FIRST
        // offending construct in the legacy pre-order.
        let mk = |body: Vec<Stmt>| paraprox_ir::Func {
            name: "f".into(),
            params: vec![],
            ret: Ty::I32,
            locals: vec![],
            body,
        };
        let load = Expr::Load {
            mem: MemRef::Param(0),
            index: Box::new(Expr::i32(0)),
        };
        let cases: Vec<(paraprox_ir::Func, &'static str)> = vec![
            (
                mk(vec![Stmt::Return(Expr::Special(Special::ThreadIdX))]),
                "thread/block special",
            ),
            (mk(vec![Stmt::Return(load.clone())]), "memory load"),
            (
                mk(vec![Stmt::Store {
                    mem: MemRef::Param(0),
                    index: Expr::Special(Special::ThreadIdX),
                    value: Expr::i32(0),
                }]),
                // The store is reported before the special in its index.
                "memory store",
            ),
            (
                mk(vec![Stmt::Atomic {
                    op: AtomicOp::Add,
                    mem: MemRef::Param(0),
                    index: load.clone(),
                    value: Expr::i32(1),
                }]),
                "atomic operation",
            ),
            (mk(vec![Stmt::Sync]), "barrier"),
            (
                mk(vec![Stmt::Return(Expr::Call {
                    func: FuncId(99),
                    args: vec![],
                })]),
                "call to unknown function",
            ),
            (
                // Binary visits the left operand first.
                mk(vec![Stmt::Return(load * Expr::Special(Special::ThreadIdY))]),
                "memory load",
            ),
        ];
        for (f, expected) in cases {
            let mut p = Program::new();
            let id = p.add_func(f);
            assert_eq!(purity_of(&p, id), Purity::Impure(expected));
        }
    }

    #[test]
    fn control_flow_is_inspected() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("branchy", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.if_else(
            x.clone().gt(Expr::f32(0.0)),
            |fb| fb.ret(x.clone()),
            |fb| fb.ret(-x.clone()),
        );
        let id = p.add_func(fb.finish());
        assert!(purity_of(&p, id).is_pure());
    }
}
