//! Purity analysis for device functions (paper §3.1.2).
//!
//! A function is a memoization candidate only if it is *pure*: its output
//! depends only on its arguments. The paper's conditions map onto the IR as
//! follows — the function must not:
//!
//! * read or write device memory (`Load`, `Store`, `Atomic`),
//! * use thread/block specials (output would depend on the thread ID),
//! * execute barriers,
//! * call an impure function.

use paraprox_ir::{Expr, Func, FuncId, Program, Stmt};

/// The result of analyzing one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Purity {
    /// The function is pure and may be memoized.
    Pure,
    /// The function is impure; the payload names the first offending
    /// construct (for diagnostics).
    Impure(&'static str),
}

impl Purity {
    /// True for [`Purity::Pure`].
    pub fn is_pure(&self) -> bool {
        matches!(self, Purity::Pure)
    }
}

fn check_expr(program: &Program, e: &Expr) -> Purity {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Param(_) => Purity::Pure,
        Expr::Special(_) => Purity::Impure("thread/block special"),
        Expr::Unary(_, a) | Expr::Cast(_, a) => check_expr(program, a),
        Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
            let pa = check_expr(program, a);
            if !pa.is_pure() {
                return pa;
            }
            check_expr(program, b)
        }
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => {
            for part in [cond, if_true, if_false] {
                let p = check_expr(program, part);
                if !p.is_pure() {
                    return p;
                }
            }
            Purity::Pure
        }
        Expr::Load { .. } => Purity::Impure("memory load"),
        Expr::Call { func, args } => {
            for a in args {
                let p = check_expr(program, a);
                if !p.is_pure() {
                    return p;
                }
            }
            // A call is pure only if the callee is pure.
            match program.funcs().nth(func.0) {
                Some((_, callee)) => purity_of_func(program, callee),
                None => Purity::Impure("call to unknown function"),
            }
        }
    }
}

fn check_stmts(program: &Program, stmts: &[Stmt]) -> Purity {
    for stmt in stmts {
        let p = match stmt {
            Stmt::Let { init, .. } => check_expr(program, init),
            Stmt::Assign { value, .. } => check_expr(program, value),
            Stmt::Store { .. } => Purity::Impure("memory store"),
            Stmt::Atomic { .. } => Purity::Impure("atomic operation"),
            Stmt::Sync => Purity::Impure("barrier"),
            Stmt::Return(e) => check_expr(program, e),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let p = check_expr(program, cond);
                if !p.is_pure() {
                    return p;
                }
                let p = check_stmts(program, then_body);
                if !p.is_pure() {
                    return p;
                }
                check_stmts(program, else_body)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                for e in [init, cond.bound(), step.amount()] {
                    let p = check_expr(program, e);
                    if !p.is_pure() {
                        return p;
                    }
                }
                check_stmts(program, body)
            }
        };
        if !p.is_pure() {
            return p;
        }
    }
    Purity::Pure
}

fn purity_of_func(program: &Program, func: &Func) -> Purity {
    check_stmts(program, &func.body)
}

/// Analyze the purity of function `id` in `program`.
///
/// # Panics
///
/// Panics if `id` does not belong to `program`.
pub fn purity_of(program: &Program, id: FuncId) -> Purity {
    purity_of_func(program, program.func(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, FuncBuilder, Special, Ty};

    #[test]
    fn arithmetic_function_is_pure() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("poly", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        let y = fb.let_("y", x.clone() * x + Expr::f32(1.0));
        fb.ret(y.exp());
        let id = p.add_func(fb.finish());
        assert!(purity_of(&p, id).is_pure());
    }

    #[test]
    fn thread_special_makes_impure() {
        let mut p = Program::new();
        let f = paraprox_ir::Func {
            name: "tid".into(),
            params: vec![],
            ret: Ty::I32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Special(Special::ThreadIdX))],
        };
        let id = p.add_func(f);
        assert_eq!(purity_of(&p, id), Purity::Impure("thread/block special"));
    }

    #[test]
    fn load_makes_impure() {
        let mut p = Program::new();
        let f = paraprox_ir::Func {
            name: "reads".into(),
            params: vec![],
            ret: Ty::F32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Load {
                mem: paraprox_ir::MemRef::Param(0),
                index: Box::new(Expr::i32(0)),
            })],
        };
        let id = p.add_func(f);
        assert_eq!(purity_of(&p, id), Purity::Impure("memory load"));
    }

    #[test]
    fn call_to_pure_callee_is_pure_and_transitive() {
        let mut p = Program::new();
        let mut inner = FuncBuilder::new("sq", Ty::F32);
        let x = inner.scalar("x", Ty::F32);
        inner.ret(x.clone() * x);
        let inner_id = p.add_func(inner.finish());

        let mut outer = FuncBuilder::new("outer", Ty::F32);
        let y = outer.scalar("y", Ty::F32);
        outer.ret(Expr::Call {
            func: inner_id,
            args: vec![y],
        });
        let outer_id = p.add_func(outer.finish());
        assert!(purity_of(&p, outer_id).is_pure());
    }

    #[test]
    fn call_to_impure_callee_is_impure() {
        let mut p = Program::new();
        let impure = paraprox_ir::Func {
            name: "impure".into(),
            params: vec![],
            ret: Ty::I32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Special(Special::BlockIdX))],
        };
        let impure_id = p.add_func(impure);
        let mut outer = FuncBuilder::new("outer", Ty::I32);
        outer.ret(Expr::Call {
            func: impure_id,
            args: vec![],
        });
        let outer_id = p.add_func(outer.finish());
        assert!(!purity_of(&p, outer_id).is_pure());
    }

    #[test]
    fn control_flow_is_inspected() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("branchy", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.if_else(
            x.clone().gt(Expr::f32(0.0)),
            |fb| fb.ret(x.clone()),
            |fb| fb.ret(-x.clone()),
        );
        let id = p.add_func(fb.finish());
        assert!(purity_of(&p, id).is_pure());
    }
}
