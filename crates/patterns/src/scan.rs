//! Scan template matching (paper §3.4.2).
//!
//! Detecting a scan from first principles is hard; the paper performs a
//! post-order template match of the kernel's AST against the canonical
//! three-phase data-parallel scan, optionally helped by programmer pragmas.
//! This module matches phase I of that implementation: each block scans one
//! subarray in shared memory with a doubling loop, writes the per-element
//! partial scan, and writes the subarray total for phase II.

use paraprox_ir::{for_each_expr, Expr, Kernel, MemRef, Special, Stmt};

/// A successful match of the scan phase-I template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanMatch {
    /// Kernel parameter index of the scanned input array.
    pub input_param: usize,
    /// Kernel parameter index of the per-element partial-scan output.
    pub partial_param: usize,
    /// Kernel parameter index of the per-subarray totals output (`sumSub`).
    pub sums_param: usize,
    /// Elements scanned per block (the shared staging array's length).
    pub subarray_len: usize,
}

fn expr_contains(e: &Expr, pred: &mut impl FnMut(&Expr) -> bool) -> bool {
    let mut found = false;
    for_each_expr(e, &mut |node| {
        if pred(node) {
            found = true;
        }
    });
    found
}

fn contains_shared_load(e: &Expr) -> bool {
    expr_contains(e, &mut |n| {
        matches!(
            n,
            Expr::Load {
                mem: MemRef::Shared(_),
                ..
            }
        )
    })
}

fn contains_param_load(e: &Expr, param: &mut Option<usize>) -> bool {
    let mut hit = false;
    for_each_expr(e, &mut |n| {
        if let Expr::Load {
            mem: MemRef::Param(p),
            ..
        } = n
        {
            hit = true;
            *param = Some(*p);
        }
    });
    hit
}

fn contains_block_id(e: &Expr) -> bool {
    expr_contains(e, &mut |n| {
        matches!(n, Expr::Special(Special::BlockIdX | Special::BlockIdY))
    })
}

fn contains_thread_id(e: &Expr) -> bool {
    expr_contains(e, &mut |n| {
        matches!(n, Expr::Special(Special::ThreadIdX | Special::ThreadIdY))
    })
}

/// Does the statement list contain a doubling loop (`<<=` step) whose body
/// has a barrier and a shared-to-shared add — the scan butterfly?
fn has_scan_loop(stmts: &[Stmt]) -> bool {
    let mut found = false;
    paraprox_ir::for_each_stmt(stmts, &mut |stmt| {
        let Stmt::For { step, body, .. } = stmt else {
            return;
        };
        if !matches!(step, paraprox_ir::LoopStep::Shl(_)) {
            return;
        }
        let mut has_sync = false;
        let mut has_butterfly = false;
        paraprox_ir::for_each_stmt(body, &mut |inner| match inner {
            Stmt::Sync => has_sync = true,
            Stmt::Store {
                mem: MemRef::Shared(_),
                // The butterfly combines two shared loads.
                value: Expr::Binary(op, a, b),
                ..
            } if op.is_reduction_compatible()
                && contains_shared_load(a)
                && contains_shared_load(b) =>
            {
                has_butterfly = true;
            }
            _ => {}
        });
        if has_sync && has_butterfly {
            found = true;
        }
    });
    found
}

/// Match phase I of the canonical data-parallel scan.
///
/// Returns `None` when the kernel does not fit the template. As the paper
/// notes (§5), template matching is sensitive to implementation variation;
/// a programmer hint (see `DetectOptions::scan_hints` in this crate's
/// [`crate::detect`] module) can force a kernel to be treated as a scan.
pub fn match_scan(kernel: &Kernel) -> Option<ScanMatch> {
    if kernel.shared.is_empty() {
        return None;
    }
    if !has_scan_loop(&kernel.body) {
        return None;
    }
    // Prologue: global -> shared staging identifies the input array.
    let mut input_param: Option<usize> = None;
    // Epilogue: shared -> global (unguarded) identifies the partial output;
    // guarded store with a blockIdx-based index identifies sumSub.
    let mut partial_param: Option<usize> = None;
    let mut sums_param: Option<usize> = None;

    paraprox_ir::for_each_stmt(&kernel.body, &mut |stmt| {
        if let Stmt::Store {
            mem: MemRef::Shared(_),
            value,
            ..
        } = stmt
        {
            let mut p = None;
            if contains_param_load(value, &mut p) && input_param.is_none() {
                input_param = p;
            }
        }
    });
    // Distinguish partial vs sums by store shape.
    fn scan_stores(
        stmts: &[Stmt],
        guarded: bool,
        partial: &mut Option<usize>,
        sums: &mut Option<usize>,
        input: Option<usize>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Store {
                    mem: MemRef::Param(p),
                    index,
                    value,
                } => {
                    if Some(*p) == input || !contains_shared_load(value) {
                        continue;
                    }
                    if guarded && contains_block_id(index) && !contains_thread_id(index) {
                        if sums.is_none() {
                            *sums = Some(*p);
                        }
                    } else if !guarded && partial.is_none() {
                        *partial = Some(*p);
                    }
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    scan_stores(then_body, true, partial, sums, input);
                    scan_stores(else_body, true, partial, sums, input);
                }
                Stmt::For { body, .. } => {
                    scan_stores(body, guarded, partial, sums, input);
                }
                _ => {}
            }
        }
    }
    scan_stores(
        &kernel.body,
        false,
        &mut partial_param,
        &mut sums_param,
        input_param,
    );

    let (input_param, partial_param, sums_param) = (input_param?, partial_param?, sums_param?);
    if input_param == partial_param || input_param == sums_param || partial_param == sums_param {
        return None;
    }
    Some(ScanMatch {
        input_param,
        partial_param,
        sums_param,
        subarray_len: kernel.shared[0].len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, KernelBuilder, LoopCond, LoopStep, MemSpace, Ty};

    /// Build the canonical phase-I scan kernel used by the benchmark app.
    pub fn canonical_scan_phase1(block: usize) -> Kernel {
        let mut kb = KernelBuilder::new("scan_phase1");
        let input = kb.buffer("input", Ty::F32, MemSpace::Global);
        let partial = kb.buffer("partial", Ty::F32, MemSpace::Global);
        let sums = kb.buffer("sums", Ty::F32, MemSpace::Global);
        let s_a = kb.shared_array("s_a", Ty::F32, block);
        let s_b = kb.shared_array("s_b", Ty::F32, block);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(s_a, tid.clone(), kb.load(input, gid.clone()));
        kb.sync();
        kb.for_loop(
            "d",
            Expr::i32(1),
            LoopCond::Lt(Expr::i32(block as i32)),
            LoopStep::Shl(Expr::i32(1)),
            |kb, d| {
                kb.if_else(
                    tid.clone().ge(d.clone()),
                    |kb| {
                        let a = kb.load(s_a, tid.clone());
                        let b = kb.load(s_a, tid.clone() - d.clone());
                        kb.store(s_b, tid.clone(), a + b);
                    },
                    |kb| {
                        let a = kb.load(s_a, tid.clone());
                        kb.store(s_b, tid.clone(), a);
                    },
                );
                kb.sync();
                kb.store(s_a, tid.clone(), kb.load(s_b, tid.clone()));
                kb.sync();
            },
        );
        kb.store(partial, gid, kb.load(s_a, tid.clone()));
        kb.if_(tid.clone().eq_(Expr::i32(block as i32 - 1)), |kb| {
            kb.store(sums, KernelBuilder::block_id_x(), kb.load(s_a, tid.clone()));
        });
        kb.finish()
    }

    #[test]
    fn canonical_template_matches() {
        let k = canonical_scan_phase1(64);
        let m = match_scan(&k).expect("canonical scan should match");
        assert_eq!(m.input_param, 0);
        assert_eq!(m.partial_param, 1);
        assert_eq!(m.sums_param, 2);
        assert_eq!(m.subarray_len, 64);
    }

    #[test]
    fn plain_map_kernel_does_not_match() {
        let mut kb = KernelBuilder::new("map");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(input, gid.clone()));
        kb.store(out, gid, v);
        assert!(match_scan(&kb.finish()).is_none());
    }

    #[test]
    fn reduction_tree_does_not_match() {
        // A tree reduction has a halving (Shr) loop, not a doubling one.
        let block = 64;
        let mut kb = KernelBuilder::new("reduce");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let s = kb.shared_array("s", Ty::F32, block);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(s, tid.clone(), kb.load(input, gid));
        kb.sync();
        kb.for_loop(
            "d",
            Expr::i32(block as i32 / 2),
            LoopCond::Gt(Expr::i32(0)),
            LoopStep::Shr(Expr::i32(1)),
            |kb, d| {
                kb.if_(tid.clone().lt(d.clone()), |kb| {
                    let a = kb.load(s, tid.clone());
                    let b = kb.load(s, tid.clone() + d.clone());
                    kb.store(s, tid.clone(), a + b);
                });
                kb.sync();
            },
        );
        kb.if_(tid.clone().eq_(Expr::i32(0)), |kb| {
            kb.store(out, KernelBuilder::block_id_x(), kb.load(s, Expr::i32(0)));
        });
        assert!(match_scan(&kb.finish()).is_none());
    }

    #[test]
    fn missing_sums_output_does_not_match() {
        // Same butterfly but without the guarded block-total store.
        let block = 32;
        let mut kb = KernelBuilder::new("scan_no_sums");
        let input = kb.buffer("input", Ty::F32, MemSpace::Global);
        let partial = kb.buffer("partial", Ty::F32, MemSpace::Global);
        let s_a = kb.shared_array("s_a", Ty::F32, block);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(s_a, tid.clone(), kb.load(input, gid.clone()));
        kb.sync();
        kb.for_loop(
            "d",
            Expr::i32(1),
            LoopCond::Lt(Expr::i32(block as i32)),
            LoopStep::Shl(Expr::i32(1)),
            |kb, d| {
                kb.if_(tid.clone().ge(d.clone()), |kb| {
                    let a = kb.load(s_a, tid.clone());
                    let b = kb.load(s_a, tid.clone() - d.clone());
                    kb.store(s_a, tid.clone(), a + b);
                });
                kb.sync();
            },
        );
        kb.store(partial, gid, kb.load(s_a, tid));
        assert!(match_scan(&kb.finish()).is_none());
    }
}
