//! Statement paths: stable addresses of statements inside a kernel body.
//!
//! Detectors report *where* a pattern lives (e.g. which loop is a reduction
//! loop) so that the rewriters in `paraprox-approx` can mutate exactly that
//! statement. A [`StmtPath`] is the sequence of child indices from the
//! kernel body root; `If` bodies count the then-arm and else-arm as flat
//! continuations (then first).

use paraprox_ir::Stmt;

/// Address of a statement within a statement tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StmtPath(pub Vec<usize>);

impl StmtPath {
    /// The root path (empty).
    pub fn root() -> StmtPath {
        StmtPath(Vec::new())
    }

    /// Extend the path by one child index.
    pub fn child(&self, index: usize) -> StmtPath {
        let mut v = self.0.clone();
        v.push(index);
        StmtPath(v)
    }

    /// Depth of the path.
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

fn children_mut(stmt: &mut Stmt) -> Vec<&mut Vec<Stmt>> {
    match stmt {
        Stmt::If {
            then_body,
            else_body,
            ..
        } => vec![then_body, else_body],
        Stmt::For { body, .. } => vec![body],
        _ => vec![],
    }
}

fn children(stmt: &Stmt) -> Vec<&Vec<Stmt>> {
    match stmt {
        Stmt::If {
            then_body,
            else_body,
            ..
        } => vec![then_body, else_body],
        Stmt::For { body, .. } => vec![body],
        _ => vec![],
    }
}

/// Resolve a path to a statement reference.
///
/// The path alternates: an index into the current statement list, then — if
/// deeper — an implicit descent into the statement's concatenated child
/// lists (then-arm statements first, then else-arm).
pub fn stmt_at<'s>(stmts: &'s [Stmt], path: &StmtPath) -> Option<&'s Stmt> {
    let current: &[Stmt] = stmts;
    let mut result: Option<&Stmt> = None;
    for (level, &idx) in path.0.iter().enumerate() {
        // Build the flattened child view of the current list.
        let stmt = current.get(idx)?;
        result = Some(stmt);
        if level + 1 < path.0.len() {
            // Descend: concatenate child lists logically. We re-resolve by
            // walking each child list with an adjusted index.
            let lists = children(stmt);
            let next_idx = path.0[level + 1];
            let mut offset = 0;
            let mut found: Option<&Vec<Stmt>> = None;
            for list in lists {
                if next_idx < offset + list.len() {
                    found = Some(list);
                    break;
                }
                offset += list.len();
            }
            let list = found?;
            // Rewrite the remaining traversal: we simulate by recursing.
            let mut sub_path = StmtPath(path.0[level + 1..].to_vec());
            sub_path.0[0] -= offset;
            return stmt_at(list, &sub_path);
        }
    }
    result
}

/// Resolve a path to a mutable statement reference.
pub fn stmt_at_mut<'s>(stmts: &'s mut [Stmt], path: &StmtPath) -> Option<&'s mut Stmt> {
    if path.0.is_empty() {
        return None;
    }
    let idx = path.0[0];
    if path.0.len() == 1 {
        return stmts.get_mut(idx);
    }
    let stmt = stmts.get_mut(idx)?;
    let next_idx = path.0[1];
    let mut offset = 0;
    for list in children_mut(stmt) {
        if next_idx < offset + list.len() {
            let mut sub_path = StmtPath(path.0[1..].to_vec());
            sub_path.0[0] -= offset;
            return stmt_at_mut(list, &sub_path);
        }
        offset += list.len();
    }
    None
}

/// Resolve a path to the statement list *containing* the addressed
/// statement plus the statement's index in that list — the handle needed to
/// splice new statements before or after it.
pub fn container_mut<'s>(
    stmts: &'s mut Vec<Stmt>,
    path: &StmtPath,
) -> Option<(&'s mut Vec<Stmt>, usize)> {
    match path.0.len() {
        0 => None,
        1 => {
            let idx = path.0[0];
            if idx < stmts.len() {
                Some((stmts, idx))
            } else {
                None
            }
        }
        _ => {
            let idx = path.0[0];
            let stmt = stmts.get_mut(idx)?;
            let next_idx = path.0[1];
            let mut offset = 0;
            for list in children_mut(stmt) {
                if next_idx < offset + list.len() {
                    let mut sub_path = StmtPath(path.0[1..].to_vec());
                    sub_path.0[0] -= offset;
                    return container_mut(list, &sub_path);
                }
                offset += list.len();
            }
            None
        }
    }
}

/// Visit every statement with its path, outer-first.
pub fn walk_with_paths(stmts: &[Stmt], f: &mut impl FnMut(&StmtPath, &Stmt)) {
    fn go(stmts: &[Stmt], base: &StmtPath, f: &mut impl FnMut(&StmtPath, &Stmt)) {
        for (i, stmt) in stmts.iter().enumerate() {
            let path = base.child(i);
            f(&path, stmt);
            let lists = children(stmt);
            let mut offset = 0;
            for list in lists {
                // Flattened child indexing, consistent with `stmt_at`.
                for (j, child) in list.iter().enumerate() {
                    let child_path = path.child(offset + j);
                    f(&child_path, child);
                    go_inner(child, &child_path, f);
                }
                offset += list.len();
            }
        }
    }
    fn go_inner(stmt: &Stmt, path: &StmtPath, f: &mut impl FnMut(&StmtPath, &Stmt)) {
        let lists = children(stmt);
        let mut offset = 0;
        for list in lists {
            for (j, child) in list.iter().enumerate() {
                let child_path = path.child(offset + j);
                f(&child_path, child);
                go_inner(child, &child_path, f);
            }
            offset += list.len();
        }
    }
    go(stmts, &StmtPath::root(), f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, VarId};

    fn let_(n: u32) -> Stmt {
        Stmt::Let {
            var: VarId(n),
            init: Expr::i32(n as i32),
        }
    }

    fn sample() -> Vec<Stmt> {
        vec![
            let_(0),
            Stmt::If {
                cond: Expr::bool(true),
                then_body: vec![let_(1), let_(2)],
                else_body: vec![let_(3)],
            },
            Stmt::For {
                var: VarId(4),
                init: Expr::i32(0),
                cond: paraprox_ir::LoopCond::Lt(Expr::i32(4)),
                step: paraprox_ir::LoopStep::Add(Expr::i32(1)),
                body: vec![let_(5)],
            },
        ]
    }

    fn var_of(stmt: &Stmt) -> u32 {
        match stmt {
            Stmt::Let { var, .. } => var.0,
            _ => panic!("expected let"),
        }
    }

    #[test]
    fn top_level_resolution() {
        let stmts = sample();
        assert_eq!(var_of(stmt_at(&stmts, &StmtPath(vec![0])).unwrap()), 0);
        assert!(matches!(
            stmt_at(&stmts, &StmtPath(vec![1])).unwrap(),
            Stmt::If { .. }
        ));
        assert!(stmt_at(&stmts, &StmtPath(vec![9])).is_none());
    }

    #[test]
    fn nested_resolution_flattens_if_arms() {
        let stmts = sample();
        // If children: then[0]=let1, then[1]=let2, else[0] -> flat index 2.
        assert_eq!(var_of(stmt_at(&stmts, &StmtPath(vec![1, 0])).unwrap()), 1);
        assert_eq!(var_of(stmt_at(&stmts, &StmtPath(vec![1, 1])).unwrap()), 2);
        assert_eq!(var_of(stmt_at(&stmts, &StmtPath(vec![1, 2])).unwrap()), 3);
        assert_eq!(var_of(stmt_at(&stmts, &StmtPath(vec![2, 0])).unwrap()), 5);
    }

    #[test]
    fn mutable_resolution_matches() {
        let mut stmts = sample();
        if let Some(Stmt::Let { init, .. }) = stmt_at_mut(&mut stmts, &StmtPath(vec![2, 0])) {
            *init = Expr::i32(99);
        } else {
            panic!("path resolution failed");
        }
        match stmt_at(&stmts, &StmtPath(vec![2, 0])).unwrap() {
            Stmt::Let { init, .. } => assert_eq!(*init, Expr::i32(99)),
            _ => panic!(),
        }
    }

    #[test]
    fn walk_visits_all_statements_with_resolvable_paths() {
        let stmts = sample();
        let mut seen = Vec::new();
        walk_with_paths(&stmts, &mut |path, stmt| {
            // Every reported path must resolve to the same statement.
            let resolved = stmt_at(&stmts, path).expect("path resolves");
            assert_eq!(resolved, stmt);
            seen.push(path.clone());
        });
        // 3 top-level + 3 lets inside the if + 1 let inside the for.
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn container_resolution_allows_splicing() {
        let mut stmts = sample();
        // Container of the let inside the for loop.
        {
            let (list, idx) = container_mut(&mut stmts, &StmtPath(vec![2, 0])).unwrap();
            assert_eq!(idx, 0);
            list.insert(0, let_(9));
        }
        // The for body now starts with let 9.
        assert_eq!(var_of(stmt_at(&stmts, &StmtPath(vec![2, 0])).unwrap()), 9);
        // Top-level container.
        let (list, idx) = container_mut(&mut stmts, &StmtPath(vec![0])).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(list.len(), 3);
        assert!(container_mut(&mut stmts, &StmtPath(vec![])).is_none());
    }

    #[test]
    fn path_helpers() {
        let p = StmtPath::root().child(2).child(0);
        assert_eq!(p, StmtPath(vec![2, 0]));
        assert_eq!(p.depth(), 2);
    }
}
