//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The build environment for this reproduction is offline, so external RNG
//! crates are unavailable; every consumer of randomness (benchmark input
//! generators, training-sample draws, randomized tests) uses this crate
//! instead. The generator is xoshiro256\*\* (Blackman & Vigna), seeded by
//! SplitMix64 — the standard recommendation for expanding a 64-bit seed
//! into a full 256-bit state without correlated streams.
//!
//! The API deliberately mirrors the subset of `rand` the repository used
//! (`seed_from_u64`, `random_range` over half-open and inclusive ranges) so
//! call sites read the same.
//!
//! Determinism is part of the contract: the same seed produces the same
//! stream on every platform and in every future version of this crate.
//! Experiment records (`results/`, `BENCH_*.json`) depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Advance a SplitMix64 state and return the next output.
///
/// Used both as the seed expander for [`Rng`] and directly wherever a
/// one-shot hash-like mix of a `u64` is enough.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 random mantissa bits.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform `u64` in `[0, bound)` (bounded rejection, no modulo bias).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniform sample from a range; mirrors `rand::Rng::random_range`.
    ///
    /// Supported ranges: `Range`/`RangeInclusive` over `f32`, `f64`, `i32`,
    /// `u32`, `u64`, and `usize`. Half-open float ranges sample `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A range that can be sampled uniformly by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f32()
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, u32, i64, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = r.random_range(-2.5f32..3.5);
            assert!((-2.5..3.5).contains(&v));
            let i: i32 = r.random_range(-10i32..10);
            assert!((-10..10).contains(&i));
            let u: usize = r.random_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn bounded_draws_cover_all_values() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let mut s2 = 0u64;
        assert_eq!(a, splitmix64(&mut s2));
        assert_ne!(splitmix64(&mut s), a);
    }
}
