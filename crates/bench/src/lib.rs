//! Shared harness utilities for regenerating the paper's tables and
//! figures. Each `src/bin/*.rs` binary reproduces one experiment; see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use paraprox::{
    compile, latency_table_for, CompileOptions, Compiled, Device, DeviceApp, DeviceProfile,
};
use paraprox_apps::{App, Scale};
use paraprox_runtime::{Toq, TuneReport, Tuner};

/// Profiles evaluated in the paper: the GTX 560 and the Core i7 965.
pub fn both_devices() -> [(&'static str, DeviceProfile); 2] {
    [
        ("GPU", DeviceProfile::gtx560()),
        ("CPU", DeviceProfile::core_i7_965()),
    ]
}

/// Compile an application for a device profile.
///
/// # Panics
///
/// Panics on compile errors — harnesses want loud failures.
pub fn compile_app(
    app: &App,
    scale: Scale,
    profile: &DeviceProfile,
    options: &CompileOptions,
) -> Compiled {
    let workload = (app.build)(scale, 0);
    let table = latency_table_for(profile);
    compile(&workload, &table, options).expect("compile must succeed")
}

/// Compile + tune an application on a device; returns the tune report and
/// the bound device app (for further deployment experiments).
///
/// # Panics
///
/// Panics on compile or execution errors.
pub fn tune_app(
    app: &App,
    scale: Scale,
    profile: &DeviceProfile,
    options: &CompileOptions,
    toq: Toq,
    seeds: usize,
) -> (TuneReport, DeviceApp) {
    let compiled = compile_app(app, scale, profile, options);
    let mut device_app = DeviceApp::new(
        Device::new(profile.clone()),
        &compiled,
        app.input_gen(scale),
    );
    let tuner = Tuner {
        toq,
        training_seeds: (0..seeds as u64).collect(),
    };
    let report = tuner.tune(&mut device_app).expect("tuning must succeed");
    (report, device_app)
}

/// Force-memoize the (single) trained function of a workload at a given
/// configuration, regardless of the Eq. (1) candidacy test — the paper's
/// §4.4.2 case studies apply memoization to all four functions directly.
///
/// Returns the rewritten program and pipeline, ready to execute.
///
/// # Panics
///
/// Panics when the workload has no training data or the rewrite fails.
pub fn force_memo(
    workload: &paraprox::Workload,
    bits: u32,
    mode: paraprox_approx::LookupMode,
    placement: paraprox_approx::TablePlacement,
) -> (paraprox_ir::Program, paraprox_vgpu::Pipeline) {
    use paraprox_approx::{bit_tune, input_ranges, memoize_kernel, MemoConfig};
    let (func, samples) = workload
        .memo_training
        .first()
        .expect("workload has training data");
    let ranges = input_ranges(samples).expect("nonempty training");
    let f = workload.program.func(*func).clone();
    let tuned = bit_tune(&workload.program, &f, samples, &ranges, bits).expect("bit tuning");
    let config = MemoConfig {
        func: *func,
        split: tuned.split,
        mode,
        placement,
        ranges,
    };
    // Memoize in every kernel that calls the function.
    let mut program = workload.program.clone();
    let mut pipeline = workload.pipeline.clone();
    for (kid, _) in workload.program.kernels() {
        let mut calls = false;
        paraprox_ir::for_each_expr_in_stmts(&workload.program.kernel(kid).body, &mut |e| {
            if matches!(e, paraprox_ir::Expr::Call { func: f2, .. } if f2 == func) {
                calls = true;
            }
        });
        if !calls {
            continue;
        }
        let variant = memoize_kernel(&program, kid, &config).expect("memoize");
        program = variant.program;
        let slot = pipeline.add_buffer(paraprox_vgpu::BufferSpec {
            name: "lut".to_string(),
            ty: paraprox_ir::Ty::F32,
            space: variant.lut_space,
            init: paraprox_vgpu::BufferInit::F32(variant.table),
        });
        for launch in &mut pipeline.launches {
            if launch.kernel == kid {
                launch.args.push(paraprox_vgpu::PlanArg::Buffer(slot));
            }
        }
    }
    (program, pipeline)
}

/// Execute a (program, pipeline) pair on a fresh device with the given
/// profile; returns (flat output, total cycles, stats).
///
/// # Panics
///
/// Panics on execution errors.
pub fn run_once(
    program: &paraprox_ir::Program,
    pipeline: &paraprox_vgpu::Pipeline,
    profile: &DeviceProfile,
) -> (Vec<f64>, u64, paraprox_vgpu::LaunchStats) {
    let mut device = Device::new(profile.clone());
    let run = pipeline.execute(&mut device, program).expect("execute");
    (run.flat_output(), run.stats.total_cycles(), run.stats)
}

/// Geometric mean (for averaging speedups).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Render one line of an ASCII bar chart.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn bars_are_clamped() {
        assert_eq!(bar(2.0, 1.0, 4), "####");
        assert_eq!(bar(0.0, 1.0, 4), "....");
        assert_eq!(bar(0.5, 1.0, 4), "##..");
    }
}
