//! Approximate-memory sweep: place every partition-Tolerant buffer of
//! every benchmark application into `MemSpace::Approx` and sweep the
//! injected bit-flip rate, recording simulated cycles and output quality
//! at each point.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_approxmem            # full
//! cargo run --release -p paraprox-bench --bin bench_approxmem -- --smoke # gate
//! ```
//!
//! Writes `BENCH_approxmem.json` into the current directory. The placement
//! is exactly what the auto-placer computes: buffer slots classified
//! Tolerant by the interprocedural criticality partition in every launch
//! they feed ([`paraprox::tolerant_buffer_slots`]). Critical buffers stay
//! exact, so the sweep can only perturb payload data — addresses, branch
//! predicates, and atomic targets are never corrupted.
//!
//! Two invariants are asserted on every app and treated as benchmark
//! failures:
//!
//! * **Rate 0 is bit-identical to the all-exact run.** Approximate
//!   placement with the injector off changes modeled timing only.
//! * **The placement passes the partition lint.** `analyze_workload` on
//!   the re-spaced pipeline reports no `approx-placement` finding.
//!
//! `--smoke` runs test-scale inputs over a two-point sweep as a CI gate
//! and exits non-zero if either invariant fails.

use paraprox_apps::{registry, Scale};
use paraprox_vgpu::{Device, DeviceProfile, PipelineRun};

const FULL_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];
const SMOKE_RATES: [f64; 2] = [0.0, 1e-2];

fn run_at(workload: &paraprox::Workload, rate: f64) -> PipelineRun {
    // Fresh device per point: identical cold caches at every rate, so the
    // cycle deltas isolate the approximate-memory path.
    let mut device = Device::new(DeviceProfile::gtx560().with_parallelism(1));
    device.set_approx_rate(rate);
    device.set_approx_seed(0x5EED);
    workload
        .pipeline
        .execute(&mut device, &workload.program)
        .expect("pipeline must execute")
}

fn bit_identical(a: &PipelineRun, b: &PipelineRun) -> bool {
    a.outputs.len() == b.outputs.len()
        && a.outputs.iter().zip(&b.outputs).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Test } else { Scale::Paper };
    let rates: &[f64] = if smoke { &SMOKE_RATES } else { &FULL_RATES };
    println!(
        "approximate-memory sweep: {} scale, rates {rates:?}, profile gtx560\n",
        if smoke { "test (smoke)" } else { "paper" }
    );
    println!(
        "{:>32} {:>9} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "application", "tolerant", "rate", "cycles", "speedup", "quality", "flips"
    );

    let mut entries = Vec::new();
    let mut failures = 0usize;
    for app in registry() {
        let mut workload = (app.build)(scale, 0);
        let partition = paraprox::partition_program(&workload.program);
        let slots = paraprox::tolerant_buffer_slots(&workload, &partition);
        let exact = run_at(&workload, 0.0);
        for &slot in &slots {
            workload.pipeline.buffers[slot] = workload.pipeline.buffers[slot]
                .clone()
                .with_space(paraprox_ir::MemSpace::Approx);
        }

        // The auto-placement must itself pass the partition lint.
        let misplaced = paraprox::analyze_workload(&workload)
            .iter()
            .filter(|d| d.code == "approx-placement")
            .count();
        if misplaced > 0 {
            eprintln!(
                "FAIL: {}: auto-placement tripped {misplaced} approx-placement finding(s)",
                app.spec.name
            );
            failures += 1;
        }

        let mut points = Vec::new();
        for &rate in rates {
            let run = run_at(&workload, rate);
            if rate == 0.0 && !bit_identical(&run, &exact) {
                eprintln!(
                    "FAIL: {}: rate-0 approximate placement is not bit-identical to exact",
                    app.spec.name
                );
                failures += 1;
            }
            let quality = workload
                .metric
                .quality(&exact.flat_output(), &run.flat_output());
            let cycles = run.stats.total_cycles();
            let speedup = exact.stats.total_cycles() as f64 / cycles as f64;
            println!(
                "{:>32} {:>9} {:>10.0e} {:>12} {:>9.3}x {:>9.2}% {:>10}",
                app.spec.name,
                slots.len(),
                rate,
                cycles,
                speedup,
                quality,
                run.stats.bit_flips
            );
            points.push(format!(
                "        {{ \"rate\": {rate:e}, \"cycles\": {cycles}, \"speedup\": {speedup:.4}, \"quality\": {quality:.4}, \"approx_loads\": {}, \"bit_flips\": {} }}",
                run.stats.approx_loads, run.stats.bit_flips
            ));
        }
        entries.push(format!(
            "    {{\n      \"app\": {:?},\n      \"tolerant_slots\": {},\n      \"exact_cycles\": {},\n      \"misplaced\": {misplaced},\n      \"points\": [\n{}\n      ]\n    }}",
            app.spec.name,
            slots.len(),
            exact.stats.total_cycles(),
            points.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"approx_memory_sweep\",\n  \"scale\": {:?},\n  \"profile\": \"gtx560\",\n  \"seed\": \"0x5EED\",\n  \"note\": \"Tolerant buffer slots (interprocedural criticality partition) placed in MemSpace::Approx; seeded deterministic bit-flip injection on loads at each swept rate. Rate 0 is asserted bit-identical to the all-exact run; quality is the app metric vs the exact output.\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        entries.join(",\n")
    );
    std::fs::write("BENCH_approxmem.json", &json).expect("write BENCH_approxmem.json");
    println!("\nwrote BENCH_approxmem.json");

    if failures > 0 {
        eprintln!("FAIL: {failures} approximate-memory invariant violation(s)");
        std::process::exit(1);
    }
}
