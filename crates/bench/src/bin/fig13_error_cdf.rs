//! Figure 13: the cumulative distribution of per-element output error for
//! each application at TOQ = 90%. The paper finds 70–100% of output
//! elements below 10% error.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig13_error_cdf
//! ```

use paraprox::CompileOptions;
use paraprox_apps::Scale;
use paraprox_bench::tune_app;
use paraprox_quality::ErrorCdf;
use paraprox_runtime::{Approximable, Toq};

/// The applications plotted in the paper's Figure 13.
const APPS: [&str; 9] = [
    "Cumulative",
    "Gamma Correction",
    "Matrix Multiply",
    "Image Denoising",
    "Naive Bayes",
    "Kernel Density",
    "HotSpot",
    "Gaussian Filter",
    "Mean Filter",
];

fn main() {
    let profile = paraprox::DeviceProfile::gtx560();
    println!("Figure 13: CDF of per-element output error at TOQ = 90% (GPU)\n");
    println!(
        "{:<32} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "application", "<=1%", "<=5%", "<=10%", "<=25%", "<=50%"
    );
    let mut under10_all = Vec::new();
    for name in APPS {
        let app = paraprox_apps::find(name).expect("known app");
        let (report, mut device_app) = tune_app(
            &app,
            Scale::Paper,
            &profile,
            &CompileOptions::default(),
            Toq::paper_default(),
            3,
        );
        // Fresh (non-training) input.
        let seed = 1000u64;
        let exact = device_app.run_exact(seed).expect("exact run");
        let approx = match report.chosen {
            Some(i) => device_app.run_variant(i, seed).expect("variant run"),
            None => exact.clone(),
        };
        let cdf = ErrorCdf::from_outputs(&exact.output, &approx.output);
        let at = |t: f64| 100.0 * cdf.fraction_at_most(t);
        under10_all.push(at(0.10));
        println!(
            "{:<32} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            app.spec.name,
            at(0.01),
            at(0.05),
            at(0.10),
            at(0.25),
            at(0.50)
        );
    }
    let min10 = under10_all.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nminimum fraction of elements with <=10% error: {min10:.1}% (paper: 70-100%)");
}
