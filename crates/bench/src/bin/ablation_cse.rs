//! Ablation: how much of the stencil optimization's win is *approximation*
//! versus plain redundancy elimination?
//!
//! The stencil rewriter snaps accesses and then runs CSE/hoisting so the
//! collapsed loads disappear. But CSE alone (applied to the *exact* kernel)
//! also removes some loads at zero quality cost. This harness separates
//! the two: exact vs exact+CSE vs stencil-center.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin ablation_cse
//! ```

use paraprox::{Device, DeviceProfile};
use paraprox_approx::{approximate_stencil, optimize_buffer_loads, StencilScheme};
use paraprox_apps::Scale;
use paraprox_patterns::stencil::find_stencils;
use paraprox_quality::Metric;

fn main() {
    let profile = DeviceProfile::gtx560();
    println!("Ablation: exact vs exact+CSE vs stencil-center (GPU, reach 1)\n");
    println!(
        "{:<26} {:>10} {:>14} {:>16} {:>10}",
        "application", "exact", "exact+CSE", "stencil-center", "quality"
    );
    for name in ["HotSpot", "Gaussian Filter", "Mean Filter", "Convolution"] {
        let app = paraprox_apps::find(name).expect("known app");
        let workload = (app.build)(Scale::Paper, 0);
        let mut device = Device::new(profile.clone());
        let exact = workload
            .pipeline
            .execute(&mut device, &workload.program)
            .expect("exact");

        // Exact + CSE only (quality stays 100%).
        let mut cse_program = workload.program.clone();
        let mut stencil_program = workload.program.clone();
        let mut any = false;
        for (kid, kernel) in workload.program.kernels() {
            for cand in find_stencils(kernel) {
                optimize_buffer_loads(cse_program.kernel_mut(kid), cand.buffer);
                if let Ok(p) =
                    approximate_stencil(&stencil_program, kid, &cand, StencilScheme::Center, 1)
                {
                    stencil_program = p;
                    any = true;
                }
            }
        }
        if !any {
            continue;
        }
        let run_cse = workload
            .pipeline
            .execute(&mut device, &cse_program)
            .expect("cse run");
        let run_stencil = workload
            .pipeline
            .execute(&mut device, &stencil_program)
            .expect("stencil run");
        let q_cse = Metric::MeanRelative.quality(&exact.flat_output(), &run_cse.flat_output());
        assert!(q_cse > 99.999, "CSE must be semantics-preserving");
        let q_st = Metric::MeanRelative.quality(&exact.flat_output(), &run_stencil.flat_output());
        let base = exact.stats.total_cycles() as f64;
        println!(
            "{:<26} {:>9.2}x {:>13.2}x {:>15.2}x {:>9.2}%",
            app.spec.name,
            1.0,
            base / run_cse.stats.total_cycles() as f64,
            base / run_stencil.stats.total_cycles() as f64,
            q_st
        );
    }
    println!(
        "\nexact+CSE keeps 100% quality; the gap between its column and the\n\
         stencil column is the genuine approximation win."
    );
}
