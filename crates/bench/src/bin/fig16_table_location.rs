//! Figure 16: where should the lookup table live? Speedup of the
//! memoized Bass function with the table in constant, shared, and global
//! memory, as the table size grows.
//!
//! Paper shape: constant memory is never optimal; small tables perform
//! similarly in shared and global; at the largest sizes the shared
//! version pays a growing per-block staging cost and global wins.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig16_table_location
//! ```

use paraprox::DeviceProfile;
use paraprox_approx::{LookupMode, TablePlacement};
use paraprox_apps::functions::{build, CaseStudy};
use paraprox_apps::Scale;
use paraprox_bench::{force_memo, run_once};
use paraprox_quality::Metric;

fn main() {
    let profile = DeviceProfile::gtx560();
    let workload = build(CaseStudy::Bass, Scale::Paper, 0);
    let (exact_out, exact_cycles, _) = run_once(&workload.program, &workload.pipeline, &profile);
    println!("Figure 16: Bass-function memoization, table placement vs size (GPU)\n");
    println!(
        "{:>7} {:>10} {:>10} {:>10}   quality",
        "entries", "constant", "shared", "global"
    );
    for bits in 3u32..=13 {
        let mut row = format!("{:>7}", 1usize << bits);
        let mut quality = 0.0;
        for placement in [
            TablePlacement::Constant,
            TablePlacement::Shared,
            TablePlacement::Global,
        ] {
            let (program, pipeline) = force_memo(&workload, bits, LookupMode::Nearest, placement);
            let mut device = paraprox::Device::new(profile.clone());
            match pipeline.execute(&mut device, &program) {
                Ok(run) => {
                    let speedup = exact_cycles as f64 / run.stats.total_cycles() as f64;
                    quality = Metric::MeanRelative.quality(&exact_out, &run.flat_output());
                    row.push_str(&format!(" {speedup:>9.2}x"));
                }
                Err(_) => row.push_str(&format!(" {:>10}", "n/a")), // e.g. exceeds shared memory
            }
        }
        println!("{row}   {quality:6.2}%");
    }
    println!("\n(n/a = table no longer fits the placement, as on real hardware)");
}
