//! Table 1: the 13 applications — domain, input size, patterns (as
//! *detected* by Paraprox, next to the paper's labels), and error metric.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin table1
//! ```

use paraprox::{CompileOptions, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_bench::compile_app;

fn main() {
    let profile = DeviceProfile::gtx560();
    println!("Table 1: applications used in this study\n");
    println!(
        "{:<32} {:<18} {:<34} {:<22} {:<22} Error Metric",
        "Application", "Domain", "Input Size", "Patterns (paper)", "Patterns (detected)"
    );
    for app in paraprox_apps::registry() {
        let compiled = compile_app(&app, Scale::Paper, &profile, &CompileOptions::minimal());
        let detected = compiled.pattern_names().join("+");
        println!(
            "{:<32} {:<18} {:<34} {:<22} {:<22} {}",
            app.spec.name,
            app.spec.domain,
            app.spec.input_desc,
            app.spec.patterns,
            detected,
            app.spec.metric
        );
    }
}
