//! Figure 12: controlling the speedup / output-quality trade-off by
//! varying each optimization's tuning parameters, for six benchmarks
//! (BlackScholes, Quasirandom, Matrix Multiplication, Kernel Density,
//! Gaussian Filter, Convolution Separable) on the GPU profile.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig12_tradeoff
//! ```

use paraprox::{CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_bench::compile_app;
use paraprox_runtime::{Toq, Tuner};

const APPS: [&str; 6] = [
    "BlackScholes",
    "Quasirandom",
    "Matrix Multiply",
    "Kernel Density",
    "Gaussian Filter",
    "Convolution Separable",
];

fn main() {
    let profile = DeviceProfile::gtx560();
    println!("Figure 12: speedup vs output quality while sweeping each knob (GPU)\n");
    for name in APPS {
        let app = paraprox_apps::find(name).expect("known app");
        let compiled = compile_app(&app, Scale::Paper, &profile, &CompileOptions::default());
        let mut device_app = DeviceApp::new(
            Device::new(profile.clone()),
            &compiled,
            app.input_gen(Scale::Paper),
        );
        // Profile ALL variants (TOQ 0 so nothing is filtered out of the
        // report); the curve is the (quality, speedup) frontier.
        let tuner = Tuner {
            toq: Toq::new(0.0).expect("valid"),
            training_seeds: (0..3).collect(),
        };
        let report = tuner.tune(&mut device_app).expect("tune");
        println!("{}:", app.spec.name);
        let mut points: Vec<(f64, f64, String)> = report
            .profiles
            .iter()
            .map(|p| (p.mean_quality, p.speedup, p.label.clone()))
            .collect();
        points.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (quality, speedup, label) in points {
            println!("  quality {quality:6.2}%  speedup {speedup:5.2}x   {label}");
        }
        println!();
    }
}
