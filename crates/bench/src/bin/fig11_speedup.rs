//! Figure 11: speedup of all 13 applications on GPU and CPU profiles at
//! TOQ = 90%, relative to exact execution on the same profile.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig11_speedup
//! ```

use paraprox::CompileOptions;
use paraprox_bench::{bar, both_devices, geomean, mean, tune_app};
use paraprox_runtime::{Approximable, Toq, TuneReport};

/// Fresh-input measurement seeds, disjoint from the training seeds —
/// the paper trains on the first 10 executions and measures the next 100;
/// we train on 3 and measure 12 (inputs regenerate per seed).
const MEASURE_SEEDS: std::ops::Range<u64> = 100..112;

/// Deployed-mode measurement: run the chosen variant and the exact version
/// on fresh inputs; returns (speedup, mean quality).
fn measure(
    report: &TuneReport,
    app: &mut paraprox::DeviceApp,
    metric_quality: impl Fn(&[f64], &[f64]) -> f64,
) -> (f64, f64) {
    let Some(chosen) = report.chosen else {
        return (1.0, 100.0);
    };
    let mut exact_cycles = 0u64;
    let mut approx_cycles = 0u64;
    let mut qualities = Vec::new();
    for seed in MEASURE_SEEDS {
        let exact = app.run_exact(seed).expect("exact");
        let approx = app.run_variant(chosen, seed).expect("variant");
        exact_cycles += exact.cycles;
        approx_cycles += approx.cycles;
        qualities.push(metric_quality(&exact.output, &approx.output));
    }
    (
        exact_cycles as f64 / approx_cycles.max(1) as f64,
        mean(&qualities),
    )
}

fn main() {
    let toq = Toq::paper_default();
    let options = CompileOptions::default();
    println!(
        "Figure 11: application speedups at TOQ = {toq} (exact = 1.0x)\n\
         (tuned on 3 training inputs, measured on {} fresh inputs)\n",
        MEASURE_SEEDS.end - MEASURE_SEEDS.start
    );
    println!(
        "{:<32} {:>6}  {:>8} {:>9}   {:>6}  {:>8} {:>9}",
        "application", "GPU x", "quality", "variant", "CPU x", "quality", "variant"
    );
    let mut per_device: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for app in paraprox_apps::registry() {
        print!("{:<32}", app.spec.name);
        for (d, (_, profile)) in both_devices().into_iter().enumerate() {
            let (report, mut device_app) = tune_app(
                &app,
                paraprox_apps::Scale::Paper,
                &profile,
                &options,
                toq,
                3,
            );
            let metric = app.spec.metric;
            let (speedup, quality) = measure(&report, &mut device_app, |e, a| metric.quality(e, a));
            let label = report
                .chosen
                .map(|i| report.profiles[i].label.clone())
                .unwrap_or_else(|| "exact".to_string());
            per_device[d].push(speedup);
            print!(
                " {:>5.2}x  {:>7.2}% {:>12}",
                speedup,
                quality,
                shorten(&label)
            );
        }
        println!();
    }
    println!();
    for (d, (name, _)) in both_devices().into_iter().enumerate() {
        println!(
            "{name}: mean speedup {:.2}x (geomean {:.2}x)   paper: {}",
            mean(&per_device[d]),
            geomean(&per_device[d]),
            if d == 0 { "2.7x" } else { "2.5x" }
        );
    }
    println!("\nGPU speedups:");
    let max = per_device[0].iter().cloned().fold(1.0f64, f64::max);
    for (app, s) in paraprox_apps::registry().iter().zip(&per_device[0]) {
        println!("  {:<32} {} {:.2}x", app.spec.name, bar(*s, max, 40), s);
    }
}

fn shorten(label: &str) -> String {
    if label.len() > 12 {
        label[..12].to_string()
    } else {
        label.to_string()
    }
}
