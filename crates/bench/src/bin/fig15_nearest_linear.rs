//! Figure 15: approximate memoization of the four §4.4.2 case-study
//! functions (credit card, shifted Gompertz, lgamma, Bass) with the
//! *nearest* vs *linear* schemes, sweeping the table size — speedup vs
//! output quality on the GPU profile.
//!
//! Paper shape: nearest is always faster than linear at equal table size
//! but less accurate; linear reaches ~99% quality; Gompertz shows the
//! lowest speedup (its exponentials run on the SFU, so the exact version
//! is already cheap).
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig15_nearest_linear
//! ```

use paraprox::DeviceProfile;
use paraprox_approx::{LookupMode, TablePlacement};
use paraprox_apps::functions::{build, CaseStudy};
use paraprox_apps::Scale;
use paraprox_bench::{force_memo, run_once};
use paraprox_quality::Metric;

fn main() {
    let profile = DeviceProfile::gtx560();
    println!("Figure 15: nearest vs linear memoization, four map functions (GPU)\n");
    let mut gompertz_best = f64::INFINITY;
    let mut others_best = Vec::new();
    for which in CaseStudy::all() {
        let workload = build(which, Scale::Paper, 0);
        let (exact_out, exact_cycles, _) =
            run_once(&workload.program, &workload.pipeline, &profile);
        println!("{} (exact = 1.0x):", which.name());
        let mut best_nearest: f64 = 0.0;
        for mode in [LookupMode::Nearest, LookupMode::Linear] {
            for bits in [6u32, 8, 10, 12] {
                let (program, pipeline) = force_memo(&workload, bits, mode, TablePlacement::Global);
                let (out, cycles, _) = run_once(&program, &pipeline, &profile);
                let quality = Metric::MeanRelative.quality(&exact_out, &out);
                let speedup = exact_cycles as f64 / cycles as f64;
                if mode == LookupMode::Nearest {
                    best_nearest = best_nearest.max(speedup);
                }
                println!(
                    "  {:<8} {:>2} bits  quality {quality:6.2}%  speedup {speedup:5.2}x",
                    match mode {
                        LookupMode::Nearest => "nearest",
                        LookupMode::Linear => "linear",
                    },
                    bits
                );
            }
        }
        if which == CaseStudy::Gompertz {
            gompertz_best = best_nearest;
        } else {
            others_best.push(best_nearest);
        }
        println!();
    }
    println!(
        "Gompertz best nearest speedup {gompertz_best:.2}x vs other functions' best {:?} — \
         the SFU makes Gompertz's exact exponentials cheap (paper's observation)",
        others_best
            .iter()
            .map(|v| format!("{v:.2}x"))
            .collect::<Vec<_>>()
    );
}
