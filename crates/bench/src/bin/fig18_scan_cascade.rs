//! Figure 18: cascading error in scan patterns. Corrupting (zeroing) a
//! 10%-of-input window early in the array destroys most of the scan's
//! output (~67% quality in the paper), while the same corruption at the
//! end barely matters (~99%) — which is why the scan optimization only
//! ever skips the *last* subarrays.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig18_scan_cascade
//! ```

use paraprox::{Device, DeviceProfile};
use paraprox_apps::{cumulative_histogram, Scale};
use paraprox_bench::bar;
use paraprox_quality::Metric;
use paraprox_vgpu::BufferInit;

fn main() {
    let profile = DeviceProfile::gtx560();
    let workload = cumulative_histogram::build(Scale::Paper, 0);
    let input_slot = workload.input_slots[0];
    let BufferInit::F32(clean) = workload.pipeline.buffers[input_slot].init.clone() else {
        panic!("frequency input is f32");
    };
    let n = clean.len();
    let window = n / 10; // corrupt 10% of the input
    let mut device = Device::new(profile);
    let exact = workload
        .pipeline
        .execute(&mut device, &workload.program)
        .expect("exact run");

    println!(
        "Figure 18: output quality vs corrupted-window start (scan over {n} bins, 10% window)\n"
    );
    println!("{:>12} {:>9}", "start index", "quality");
    let steps = 16usize;
    let mut first_quality = 0.0;
    let mut last_quality = 0.0;
    for k in 0..=steps {
        let start = (n - window) * k / steps;
        let mut corrupted = clean.clone();
        for v in corrupted.iter_mut().skip(start).take(window) {
            *v = 0.0;
        }
        let mut pipeline = workload.pipeline.clone();
        pipeline.set_input(input_slot, BufferInit::F32(corrupted));
        let run = pipeline
            .execute(&mut device, &workload.program)
            .expect("corrupted run");
        let quality = Metric::MeanRelative.quality(&exact.flat_output(), &run.flat_output());
        if k == 0 {
            first_quality = quality;
        }
        if k == steps {
            last_quality = quality;
        }
        println!("{start:>12} {quality:>8.2}%  {}", bar(quality, 100.0, 40));
    }
    println!(
        "\ncorrupting the FIRST subarrays: {first_quality:.1}% quality; the LAST: {last_quality:.1}% \
         (paper: ~67% vs ~99%)"
    );
    assert!(
        first_quality < last_quality - 10.0,
        "cascading error must show"
    );
}
