//! Iterative-schedule sweep: run each iterative application's
//! loop-of-stencil-reduce job to convergence under the exact schedule and
//! every preset approximation schedule, recording iterations-to-
//! convergence, residual checks, simulated cycles, and converged-field
//! quality versus the exact loop.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_iter            # full
//! cargo run --release -p paraprox-bench --bin bench_iter -- --smoke # gate
//! ```
//!
//! Writes `BENCH_iter.json` into the current directory. Every schedule
//! was admitted by the static safety gate (effect contract on both
//! ping-pong parities plus the full lint suite under the loop's launch
//! contexts) before it ran.
//!
//! Invariants asserted per application and treated as benchmark failures:
//!
//! * **The exact loop converges** before the iteration cap.
//! * **Re-running a schedule on the same seed is bit-identical** (the
//!   sampled residual checks are host-derived, so the loop's control
//!   flow is deterministic).
//! * **At least one approximate schedule reaches >= 1.3x fewer cycles**
//!   than the exact loop while holding quality at or above the default
//!   90% TOQ.
//!
//! `--smoke` runs test-scale inputs on a single seed as a CI gate and
//! exits non-zero if any invariant fails.

use paraprox_apps::{iter_registry, Scale};
use paraprox_iter::{IterSchedule, IterativeApp};
use paraprox_runtime::Approximable;
use paraprox_vgpu::{Device, DeviceProfile};

/// Default target output quality (percent), as in the paper's tuner.
const TOQ: f64 = 90.0;
/// Cycle-reduction bar at least one schedule must clear per app.
const SPEEDUP_BAR: f64 = 1.3;

/// Per-schedule aggregate over the measurement seeds.
struct Point {
    label: String,
    iterations: f64,
    checks: f64,
    residual: f64,
    cycles: f64,
    speedup: f64,
    quality: f64,
    all_converged: bool,
    any_predicted: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Test } else { Scale::Paper };
    // Deployment seeds, past the tuner's training range.
    let seeds: &[u64] = if smoke { &[1000] } else { &[1000, 1001, 1002] };
    println!(
        "iterative-schedule sweep: {} scale, {} seed(s), profile gtx560\n",
        if smoke { "test (smoke)" } else { "paper" },
        seeds.len()
    );

    let mut entries = Vec::new();
    let mut failures = 0usize;
    for app in iter_registry() {
        let spec = (app.spec)(scale);
        let model = (app.build)(scale);
        let (w, h) = (model.width, model.height);
        let mut job = IterativeApp::new(
            Device::new(DeviceProfile::gtx560().with_parallelism(1)),
            model,
            spec,
            app.field_gen(scale),
        )
        .and_then(IterativeApp::with_presets)
        .expect("preset schedules must pass the gate");

        println!(
            "{} ({w}x{h}, tol {:.0e} abs / {}% rel, cap {})",
            app.name,
            spec.tol_abs,
            spec.tol_rel * 100.0,
            spec.max_iters
        );
        println!(
            "  {:<16} {:>6} {:>7} {:>11} {:>11} {:>9} {:>8}  outcome",
            "schedule", "iters", "checks", "residual", "cycles", "speedup", "quality"
        );

        let mut schedules = vec![IterSchedule::exact()];
        schedules.extend(job.schedules().iter().cloned());
        let mut exact_per_seed: Vec<paraprox_runtime::RunOutcome> = Vec::new();
        let mut points: Vec<Point> = Vec::new();
        for schedule in &schedules {
            let mut p = Point {
                label: schedule.label.clone(),
                iterations: 0.0,
                checks: 0.0,
                residual: 0.0,
                cycles: 0.0,
                speedup: 0.0,
                quality: 0.0,
                all_converged: true,
                any_predicted: false,
            };
            for (si, &seed) in seeds.iter().enumerate() {
                let out = job.run_schedule(schedule, seed).expect("loop must run");
                let run = job.last_run().expect("run recorded").clone();
                if schedule.is_exact() {
                    // Determinism gate: the same seed replays bit-identically.
                    let replay = job.run_schedule(schedule, seed).expect("replay");
                    let identical = out.output.len() == replay.output.len()
                        && out
                            .output
                            .iter()
                            .zip(&replay.output)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    if !identical {
                        eprintln!("FAIL: {}: exact replay on seed {seed} diverged", app.name);
                        failures += 1;
                    }
                    if !run.converged {
                        eprintln!(
                            "FAIL: {}: exact loop hit the {}-iteration cap (residual {:.3e})",
                            app.name, spec.max_iters, run.residual
                        );
                        failures += 1;
                    }
                }
                let (speedup, quality) = if schedule.is_exact() {
                    (1.0, 100.0)
                } else {
                    let e = &exact_per_seed[si];
                    (
                        e.cycles as f64 / out.cycles.max(1) as f64,
                        job.quality(&e.output, &out.output),
                    )
                };
                p.iterations += f64::from(run.iterations);
                p.checks += f64::from(run.checks);
                p.residual += run.residual;
                p.cycles += out.cycles as f64;
                p.speedup += speedup;
                p.quality += quality;
                p.all_converged &= run.converged;
                p.any_predicted |= run.predicted;
                if schedule.is_exact() {
                    exact_per_seed.push(out);
                }
            }
            let k = seeds.len() as f64;
            p.iterations /= k;
            p.checks /= k;
            p.residual /= k;
            p.cycles /= k;
            p.speedup /= k;
            p.quality /= k;
            println!(
                "  {:<16} {:>6.1} {:>7.1} {:>11.4e} {:>11.0} {:>8.2}x {:>7.2}%  {}",
                p.label,
                p.iterations,
                p.checks,
                p.residual,
                p.cycles,
                p.speedup,
                p.quality,
                if p.any_predicted {
                    "converged (predicted)"
                } else if p.all_converged {
                    "converged"
                } else {
                    "iteration cap"
                }
            );
            points.push(p);
        }

        let best = points
            .iter()
            .filter(|p| p.label != "exact" && p.quality >= TOQ)
            .map(|p| p.speedup)
            .fold(0.0f64, f64::max);
        if best < SPEEDUP_BAR {
            eprintln!(
                "FAIL: {}: no schedule reached {SPEEDUP_BAR}x within TOQ {TOQ}% (best {best:.2}x)",
                app.name
            );
            failures += 1;
        }
        println!("  best within TOQ {TOQ:.0}%: {best:.2}x cycle reduction\n");

        let point_json: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "        {{ \"schedule\": {:?}, \"iterations\": {:.2}, \"checks\": {:.2}, \"residual\": {:.6e}, \"cycles\": {:.0}, \"speedup\": {:.4}, \"quality\": {:.4}, \"converged\": {}, \"predicted\": {} }}",
                    p.label,
                    p.iterations,
                    p.checks,
                    p.residual,
                    p.cycles,
                    p.speedup,
                    p.quality,
                    p.all_converged,
                    p.any_predicted
                )
            })
            .collect();
        entries.push(format!(
            "    {{\n      \"app\": {:?},\n      \"field\": \"{w}x{h}\",\n      \"tol_abs\": {:e},\n      \"tol_rel\": {},\n      \"max_iters\": {},\n      \"best_speedup_within_toq\": {best:.4},\n      \"schedules\": [\n{}\n      ]\n    }}",
            app.name,
            spec.tol_abs,
            spec.tol_rel,
            spec.max_iters,
            point_json.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"iterative_schedule_sweep\",\n  \"scale\": {:?},\n  \"profile\": \"gtx560\",\n  \"seeds\": {:?},\n  \"toq\": {TOQ},\n  \"note\": \"Loop-of-stencil-reduce jobs run to residual convergence under gated approximation schedules (stencil reach ramps, sampled residual checks, EWMA trend early-exit). Cycles are simulated device cycles summed over every stencil and residual launch; quality is the app metric comparing converged fields against the exact schedule on the same seed; speedup is exact cycles / schedule cycles.\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        seeds,
        entries.join(",\n")
    );
    std::fs::write("BENCH_iter.json", &json).expect("write BENCH_iter.json");
    println!("wrote BENCH_iter.json");

    if failures > 0 {
        eprintln!("FAIL: {failures} iterative-schedule invariant violation(s)");
        std::process::exit(1);
    }
}
