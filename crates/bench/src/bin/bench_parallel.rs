//! Host-parallelism benchmark: wall-clock cost of executing one 512x512
//! 3x3 convolution launch at different worker counts, with a bit-identity
//! check between every worker count and the serial baseline.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_parallel
//! ```
//!
//! Writes `BENCH_parallel.json` into the current directory. The simulated
//! results (buffer contents, cycle counts, cache statistics) are required
//! to be identical at every parallelism level — the benchmark fails loudly
//! if they are not — so the JSON records pure host-side throughput.
//!
//! Note: wall-clock *speedup* from block parallelism requires physical
//! cores. The JSON records `host_cores` so a 1-core CI box reporting ~1.0x
//! (or slightly below, from thread overhead) is interpretable rather than
//! alarming.

use std::time::Instant;

use paraprox_ir::{Expr, KernelBuilder, LoopCond, LoopStep, MemSpace, Program, Ty};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, LaunchStats};

const W: usize = 512;
const H: usize = 512;
const BLOCK: usize = 16; // 16x16 = 256 threads/block, 32x32 = 1024 blocks
const RUNS: usize = 5;

/// 3x3 mean convolution over a `W`x`H` image, one thread per pixel.
fn conv_program() -> (Program, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("conv3x3");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let w = Expr::i32(W as i32);
    let h = Expr::i32(H as i32);
    let inside = x.clone().gt(Expr::i32(0))
        & x.clone().lt(w.clone() - Expr::i32(1))
        & y.clone().gt(Expr::i32(0))
        & y.clone().lt(h - Expr::i32(1));
    kb.if_(inside, |kb| {
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_loop(
            "dy",
            Expr::i32(-1),
            LoopCond::Le(Expr::i32(1)),
            LoopStep::Add(Expr::i32(1)),
            |kb, dy| {
                kb.for_loop(
                    "dx",
                    Expr::i32(-1),
                    LoopCond::Le(Expr::i32(1)),
                    LoopStep::Add(Expr::i32(1)),
                    |kb, dx| {
                        let idx = kb.let_(
                            "idx",
                            (y.clone() + dy.clone()) * Expr::i32(W as i32) + x.clone() + dx,
                        );
                        let v = kb.let_("v", kb.load(input, idx));
                        kb.assign(acc, Expr::Var(acc) + v);
                    },
                );
            },
        );
        kb.store(
            output,
            y.clone() * Expr::i32(W as i32) + x.clone(),
            Expr::Var(acc) / Expr::f32(9.0),
        );
    });
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

struct Measurement {
    parallelism: usize,
    workers: u64,
    wall_ms_best: f64,
    wall_ms_all: Vec<f64>,
    stats: LaunchStats,
    output: Vec<f32>,
}

fn run_at(parallelism: usize, program: &Program, kid: paraprox_ir::KernelId) -> Measurement {
    let profile = DeviceProfile::gtx560().with_parallelism(parallelism);
    let data: Vec<f32> = (0..W * H).map(|i| ((i * 37) % 251) as f32 * 0.01).collect();
    let mut wall_ms_all = Vec::with_capacity(RUNS);
    let mut last: Option<(LaunchStats, Vec<f32>)> = None;
    for _ in 0..RUNS {
        let mut d = Device::new(profile.clone());
        let input = d.alloc_f32(MemSpace::Global, &data);
        let output = d.alloc_f32(MemSpace::Global, &vec![0.0f32; W * H]);
        let started = Instant::now();
        let stats = d
            .launch(
                program,
                kid,
                Dim2::new(W / BLOCK, H / BLOCK),
                Dim2::new(BLOCK, BLOCK),
                &[input.into(), output.into()],
            )
            .expect("launch");
        wall_ms_all.push(started.elapsed().as_secs_f64() * 1e3);
        last = Some((stats, d.read_f32(output).expect("read")));
    }
    let (stats, output) = last.expect("at least one run");
    let best = wall_ms_all.iter().copied().fold(f64::INFINITY, f64::min);
    Measurement {
        parallelism,
        workers: stats.workers,
        wall_ms_best: best,
        wall_ms_all,
        stats,
        output,
    }
}

fn main() {
    let (program, kid) = conv_program();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "block-parallel executor: 512x512 conv3x3, {} blocks of {} threads, host has {host_cores} core(s)\n",
        (W / BLOCK) * (H / BLOCK),
        BLOCK * BLOCK
    );

    let levels = [1usize, 2, 4];
    let results: Vec<Measurement> = levels.iter().map(|&p| run_at(p, &program, kid)).collect();
    let baseline = &results[0];

    println!(
        "{:>11} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "parallelism", "workers", "wall (best)", "speedup", "identical", "cycles"
    );
    let mut entries = Vec::new();
    for m in &results {
        // Hard determinism gate: every level must reproduce the serial
        // results bit for bit.
        let same_output = m
            .output
            .iter()
            .zip(&baseline.output)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let same_stats = m.stats == baseline.stats;
        assert!(same_output, "parallelism {} changed outputs", m.parallelism);
        assert!(same_stats, "parallelism {} changed stats", m.parallelism);
        let speedup = baseline.wall_ms_best / m.wall_ms_best;
        println!(
            "{:>11} {:>8} {:>9.2} ms {:>9.2}x {:>10} {:>10}",
            m.parallelism,
            m.workers,
            m.wall_ms_best,
            speedup,
            "yes",
            m.stats.total_cycles()
        );
        let runs = m
            .wall_ms_all
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        entries.push(format!(
            "    {{\n      \"parallelism\": {},\n      \"workers\": {},\n      \"wall_ms_best\": {:.3},\n      \"wall_ms_runs\": [{}],\n      \"speedup_vs_serial\": {:.3},\n      \"total_cycles\": {},\n      \"bit_identical_to_serial\": true\n    }}",
            m.parallelism,
            m.workers,
            m.wall_ms_best,
            runs,
            speedup,
            m.stats.total_cycles()
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"block_parallel_executor\",\n  \"kernel\": \"conv3x3\",\n  \"image\": [{W}, {H}],\n  \"block\": [{BLOCK}, {BLOCK}],\n  \"blocks\": {},\n  \"host_cores\": {host_cores},\n  \"runs_per_level\": {RUNS},\n  \"note\": \"wall-clock speedup requires physical cores; on a 1-core host parallel levels measure scheduler overhead only. Simulated cycles and outputs are verified bit-identical across all levels.\",\n  \"results\": [\n{}\n  ]\n}}\n",
        (W / BLOCK) * (H / BLOCK),
        entries.join(",\n")
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
