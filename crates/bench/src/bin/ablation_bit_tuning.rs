//! Ablation: bit tuning (hill climbing) vs a naive even split of the
//! table-address bits (paper §3.1.3 — "naively dividing the quantization
//! bits equally amongst all inputs does not necessarily yield ideal
//! results").
//!
//! Uses a function with deliberately skewed input sensitivity alongside
//! BlackScholes (whose inputs turn out to be nearly balanced on uniform
//! CUDA-SDK-style input ranges).
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin ablation_bit_tuning
//! ```

use paraprox_approx::{bit_tune, input_ranges};
use paraprox_apps::{black_scholes, Scale};
use paraprox_ir::{Expr, FuncBuilder, Program, Scalar, Ty};

fn skewed_program() -> (Program, paraprox_ir::Func, Vec<Vec<Scalar>>) {
    // g(a, b) = exp(4a) + b/50 : `a` deserves nearly all the bits.
    let mut p = Program::new();
    let mut fb = FuncBuilder::new("skewed", Ty::F32);
    let a = fb.scalar("a", Ty::F32);
    let b = fb.scalar("b", Ty::F32);
    fb.ret((a * Expr::f32(4.0)).exp() + b * Expr::f32(0.02));
    let id = p.add_func(fb.finish());
    let f = p.func(id).clone();
    let samples: Vec<Vec<Scalar>> = (0..256)
        .map(|i| {
            let t = i as f32 / 255.0;
            vec![Scalar::F32(t * 2.0), Scalar::F32((t * 97.0) % 1.0 * 50.0)]
        })
        .collect();
    (p, f, samples)
}

fn main() {
    println!("Ablation: bit tuning vs even split\n");
    for bits in [6u32, 8, 10, 12] {
        // Skewed-sensitivity function.
        let (p, f, samples) = skewed_program();
        let ranges = input_ranges(&samples).expect("ranges");
        let tuned = bit_tune(&p, &f, &samples, &ranges, bits).expect("tune");
        let even_quality = tuned.explored[0].1; // the root node IS the even split
        println!(
            "skewed    {bits:>2} bits: even split {:?} -> {:6.2}%   tuned {:?} -> {:6.2}%  ({:+.2} points)",
            tuned.explored[0].0,
            even_quality,
            tuned.split,
            tuned.quality,
            tuned.quality - even_quality
        );
    }
    println!();
    // BlackScholes (three variable inputs + two constants).
    let workload = black_scholes::build(Scale::Paper, 0);
    let (func, samples) = workload.memo_training.first().expect("training");
    let ranges = input_ranges(samples).expect("ranges");
    let f = workload.program.func(*func).clone();
    for bits in [9u32, 12, 15] {
        let tuned = bit_tune(&workload.program, &f, samples, &ranges, bits).expect("tune");
        println!(
            "bs_call   {bits:>2} bits: even split {:?} -> {:6.2}%   tuned {:?} -> {:6.2}%  ({:+.2} points, {} nodes)",
            tuned.explored[0].0,
            tuned.explored[0].1,
            tuned.split,
            tuned.quality,
            tuned.quality - tuned.explored[0].1,
            tuned.explored.len()
        );
    }
    println!(
        "\nConstant inputs always receive zero bits; hill climbing matters most\n\
         when input sensitivities are skewed."
    );
}
