//! Figure 4: bit tuning's steepest-ascent hill climb on the
//! BlackScholes body function. The paper's example uses a 32768-entry
//! table (15 address bits) split across the three variable inputs (S, X,
//! T); the constant inputs R and V receive zero bits.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig04_bit_tuning
//! ```

use paraprox_approx::{bit_tune, input_ranges};
use paraprox_apps::{black_scholes, Scale};

fn main() {
    let workload = black_scholes::build(Scale::Paper, 0);
    let (func, samples) = workload.memo_training.first().expect("training data");
    let ranges = input_ranges(samples).expect("ranges");
    let f = workload.program.func(*func).clone();
    println!(
        "Figure 4: bit tuning for `{}` with a 32768-entry table (15 bits)\n",
        f.name
    );
    println!("input ranges (constant inputs get zero bits):");
    for (i, r) in ranges.iter().enumerate() {
        println!(
            "  input {i} ({}): [{:.4}, {:.4}]{}",
            f.params[i].name(),
            r.min,
            r.max,
            if r.is_constant() { "  <- constant" } else { "" }
        );
    }
    let result = bit_tune(&workload.program, &f, samples, &ranges, 15).expect("bit tune");
    println!("\nexplored nodes (split of 15 bits -> output quality):");
    for (split, quality) in &result.explored {
        let marker = if *split == result.split {
            "  <== selected"
        } else {
            ""
        };
        println!("  {split:?} -> {quality:6.2}%{marker}");
    }
    println!(
        "\nselected division: {:?} at {:.2}% output quality ({} nodes explored)",
        result.split,
        result.quality,
        result.explored.len()
    );
    let root = &result.explored[0];
    println!(
        "root (even split) quality: {:.2}%  -> hill climbing gained {:+.2} points",
        root.1,
        result.quality - root.1
    );

    // On our uniform CUDA-SDK-style input ranges the 15-bit even split is
    // already locally optimal; at 12 bits the climb moves a bit from T to
    // X, the analogue of the paper's (5,6,4) selection.
    let result12 = bit_tune(&workload.program, &f, samples, &ranges, 12).expect("bit tune");
    println!(
        "\nat 12 bits: even {:?} ({:.2}%) -> tuned {:?} ({:.2}%)",
        result12.explored[0].0, result12.explored[0].1, result12.split, result12.quality
    );
}
