//! Ablation: the reduction optimization's *adjustment* step (paper §3.3.3).
//!
//! Sampling every N-th iteration without scaling the partial sum back up
//! by N produces outputs that are ~N× too small; the adjustment is what
//! makes sampling usable. This harness perforates the reduction loops of
//! the reduction benchmarks with and without adjustment and compares
//! output quality.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin ablation_adjustment
//! ```

use paraprox::{Device, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_ir::{Expr, LoopStep, Stmt};
use paraprox_patterns::path::container_mut;
use paraprox_patterns::reduction::find_reduction_loops;
use paraprox_quality::Metric;

const SKIP: u32 = 4;

/// Perforate a loop *without* any adjustment — the naive version the
/// paper's adjustment fixes.
fn perforate_without_adjustment(
    program: &paraprox_ir::Program,
    kernel: paraprox_ir::KernelId,
    path: &paraprox_patterns::StmtPath,
) -> paraprox_ir::Program {
    let mut out = program.clone();
    let k = out.kernel_mut(kernel);
    let (container, idx) = container_mut(&mut k.body, path).expect("loop path resolves");
    let Stmt::For { step, .. } = &mut container[idx] else {
        panic!("path must address a for loop");
    };
    let old = std::mem::replace(step, LoopStep::Add(Expr::i32(0)));
    *step = old.map_amount(|e| e * Expr::i32(SKIP as i32));
    out
}

fn main() {
    let profile = DeviceProfile::gtx560();
    println!("Ablation: reduction sampling with vs WITHOUT the x{SKIP} adjustment (GPU)\n");
    println!(
        "{:<32} {:>12} {:>14}",
        "application", "adjusted", "unadjusted"
    );
    for name in ["Matrix Multiply", "Kernel Density", "Image Denoising"] {
        let app = paraprox_apps::find(name).expect("known app");
        let workload = (app.build)(Scale::Paper, 0);
        let mut device = Device::new(profile.clone());
        let exact = workload
            .pipeline
            .execute(&mut device, &workload.program)
            .expect("exact");

        // Locate the innermost reduction loop of the first kernel with one.
        let (kid, red) = workload
            .program
            .kernels()
            .find_map(|(kid, k)| {
                let loops = find_reduction_loops(k);
                loops
                    .iter()
                    .max_by_key(|l| l.path.depth())
                    .map(|l| (kid, l.clone()))
            })
            .expect("app has a reduction loop");

        // Adjusted: the real optimization, applied to the whole group.
        let loops = find_reduction_loops(workload.program.kernel(kid));
        let group: Vec<_> = loops
            .iter()
            .filter(|l| l.path == red.path)
            .cloned()
            .collect();
        let adjusted =
            paraprox_approx::approximate_reduction_group(&workload.program, kid, &group, SKIP)
                .expect("adjusted rewrite");
        let run_adj = workload
            .pipeline
            .execute(&mut device, &adjusted)
            .expect("adjusted run");

        // Unadjusted: perforation only.
        let unadjusted = perforate_without_adjustment(&workload.program, kid, &red.path);
        let run_raw = workload
            .pipeline
            .execute(&mut device, &unadjusted)
            .expect("unadjusted run");

        let q_adj = Metric::MeanRelative.quality(&exact.flat_output(), &run_adj.flat_output());
        let q_raw = Metric::MeanRelative.quality(&exact.flat_output(), &run_raw.flat_output());
        println!("{:<32} {:>11.2}% {:>13.2}%", app.spec.name, q_adj, q_raw);
    }
    println!(
        "\nWithout the adjustment the sampled sums are ~{SKIP}x too small, cratering\n\
         quality — except where a ratio of two sampled sums cancels the factor\n\
         (Image Denoising divides value-sum by weight-sum)."
    );
}
