//! Static error-propagation validation: for every application and every
//! auto-generated rung, the *measured* output error must never exceed the
//! static bound computed by `paraprox_analysis::errorprop` — and the
//! static table must actually pay for itself by pruning calibration
//! launches in the tuner.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_errorprop            # full
//! cargo run --release -p paraprox-bench --bin bench_errorprop -- --smoke # gate
//! ```
//!
//! Three checks, each a benchmark failure:
//!
//! * **Soundness.** For every rung the static analysis did not refuse,
//!   `metric.error(exact, rung)` ≤ `StaticQuality::error_bound` on every
//!   measured seed. Refused rungs claim no bound and are exempt.
//! * **Usefulness.** Across the registry, at least one app prunes at
//!   least one rung (`TuneReport::calibration_launches_saved > 0`
//!   somewhere) — otherwise the static table is dead weight.
//! * **No lost deployments.** Whenever the dynamic tuner (no static
//!   table) finds a qualifying rung, the statically-pruned tune must
//!   also find one — pruning may cost some speedup (a mispredicted rung
//!   goes unmeasured), but must never push a tunable app back to exact.
//!
//! Prunes that disagree with the dynamic tuner's own choice are reported
//! per app as `false_prunes` (a speedup cost, not a quality bug — the
//! design intentionally trades mispredictions for calibration savings).
//!
//! Also reports, per app, the Spearman rank correlation between the
//! static `predicted_quality` and the measured mean quality over the
//! app's rungs — the signal that makes the predicted-quality ladder
//! ordering better than speedup order alone.
//!
//! Writes `BENCH_errorprop.json` into the current directory.

use paraprox::{CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::{registry, Scale};
use paraprox_bench::compile_app;
use paraprox_runtime::{Approximable, Tuner};

/// Approximate-memory rungs appended after the rewrite variants: a
/// DRAM-refresh-plausible rate (kept) and an aggressive one the static
/// table should prune.
const APPROX_RATES: [f64; 2] = [1e-7, 1e-2];

/// Slack for float accumulation in the metric itself.
const SOUNDNESS_EPS: f64 = 1e-9;

/// Spearman rank correlation (average ranks for ties); `None` when either
/// side is constant or fewer than two points exist.
fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
        let mut ranks = vec![0.0; v.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let (ra, rb) = (rank(a), rank(b));
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(&ra), mean(&rb));
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let (va, vb): (f64, f64) = (
        ra.iter().map(|x| (x - ma) * (x - ma)).sum(),
        rb.iter().map(|y| (y - mb) * (y - mb)).sum(),
    );
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Test } else { Scale::Paper };
    let measure_seeds: u64 = if smoke { 2 } else { 5 };
    let tune_seeds: u64 = if smoke { 3 } else { 10 };
    let profile = DeviceProfile::gtx560();
    println!(
        "static error-propagation validation: {} scale, {measure_seeds} measurement seed(s), profile gtx560\n",
        if smoke { "test (smoke)" } else { "paper" }
    );

    let mut entries = Vec::new();
    let mut failures = 0usize;
    let mut total_saved = 0u64;
    let mut apps_pruning = 0usize;
    let mut correlations = Vec::new();

    for app in registry() {
        let compiled = compile_app(&app, scale, &profile, &CompileOptions::default());
        let mut dapp = DeviceApp::new(
            Device::new(profile.clone()),
            &compiled,
            app.input_gen(scale),
        )
        .with_approx_memory(&compiled, &APPROX_RATES);
        let statics = dapp.static_quality().to_vec();
        let metric = compiled.workload.metric;
        let rungs = dapp.variant_count();
        assert_eq!(
            statics.len(),
            rungs,
            "static table must cover every rung of {}",
            app.spec.name
        );

        // Soundness gate: measure every rung against its static bound.
        // A rung that fails to execute (e.g. a shared-placement table
        // exceeding the device's shared memory at this scale) cannot be
        // measured; the tuner treats it as non-qualifying, we exempt it.
        let mut max_err = vec![0.0f64; rungs];
        let mut mean_quality = vec![0.0f64; rungs];
        let mut ran = vec![true; rungs];
        for seed in 0..measure_seeds {
            let exact = dapp.run_exact(seed).expect("exact run");
            for (i, sq) in statics.iter().enumerate() {
                let Ok(run) = dapp.run_variant(i, seed) else {
                    ran[i] = false;
                    continue;
                };
                let err = metric.error(&exact.output, &run.output);
                max_err[i] = max_err[i].max(err);
                mean_quality[i] += metric.quality(&exact.output, &run.output);
                if !sq.refused && err > sq.error_bound + SOUNDNESS_EPS {
                    eprintln!(
                        "FAIL: {}: rung {} ({}): measured error {err:.6} exceeds static bound {:.6} (seed {seed})",
                        app.spec.name, i, sq.label, sq.error_bound
                    );
                    failures += 1;
                }
            }
        }
        for q in &mut mean_quality {
            *q /= measure_seeds as f64;
        }

        // Rank correlation: static prediction vs measured quality, over
        // the rungs that actually ran.
        let (predicted, measured): (Vec<f64>, Vec<f64>) = statics
            .iter()
            .enumerate()
            .filter(|(i, _)| ran[*i])
            .map(|(i, s)| {
                (
                    if s.refused { 0.0 } else { s.predicted_quality },
                    mean_quality[i],
                )
            })
            .unzip();
        let rho = spearman(&predicted, &measured);
        if let Some(r) = rho {
            correlations.push(r);
        }

        // Tuner pruning: calibration launches saved by the static table.
        let tuner = Tuner {
            toq: paraprox::Toq::paper_default(),
            training_seeds: (0..tune_seeds).collect(),
        };
        let report = tuner
            .tune_with_static(&mut dapp, &statics)
            .expect("tune with static table");
        let pruned: Vec<usize> = report
            .profiles
            .iter()
            .filter(|p| p.pruned)
            .map(|p| p.index)
            .collect();
        total_saved += report.calibration_launches_saved;
        if !pruned.is_empty() {
            apps_pruning += 1;
        }

        // Compare against the purely dynamic tune: pruning must never
        // cost the deployment entirely, and prunes that contradict the
        // dynamic choice are reported as mispredictions.
        let dynamic = tuner.tune(&mut dapp).expect("dynamic tune");
        let false_prunes = dynamic
            .chosen
            .map_or(0, |c| usize::from(pruned.contains(&c)));
        if dynamic.chosen.is_some() && report.chosen.is_none() {
            eprintln!(
                "FAIL: {}: static pruning left no qualifying rung, but the dynamic tuner found one",
                app.spec.name
            );
            failures += 1;
        }

        println!(
            "{:>32}: {} rungs, {} pruned ({} mispredicted), {} launches saved, rank corr {}",
            app.spec.name,
            rungs,
            pruned.len(),
            false_prunes,
            report.calibration_launches_saved,
            rho.map_or("n/a".to_string(), |r| format!("{r:.3}")),
        );

        let rung_rows: Vec<String> = statics
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "        {{ \"rung\": {i}, \"label\": {:?}, \"error_bound\": {}, \"quality_floor\": {:.4}, \"predicted_quality\": {:.4}, \"refused\": {}, \"measured_error_max\": {}, \"measured_quality_mean\": {}, \"pruned\": {} }}",
                    s.label,
                    json_num(s.error_bound),
                    s.quality_floor,
                    s.predicted_quality,
                    s.refused,
                    json_num(max_err[i]),
                    json_num(mean_quality[i]),
                    pruned.contains(&i)
                )
            })
            .collect();
        entries.push(format!(
            "    {{\n      \"app\": {:?},\n      \"rungs\": {},\n      \"pruned_rungs\": {},\n      \"false_prunes\": {false_prunes},\n      \"calibration_launches_saved\": {},\n      \"rank_correlation\": {},\n      \"per_rung\": [\n{}\n      ]\n    }}",
            app.spec.name,
            rungs,
            pruned.len(),
            report.calibration_launches_saved,
            rho.map_or("null".to_string(), |r| format!("{r:.4}")),
            rung_rows.join(",\n")
        ));
    }

    if apps_pruning == 0 {
        eprintln!("FAIL: no app pruned any rung — the static table saved nothing");
        failures += 1;
    }
    let mean_rho = if correlations.is_empty() {
        None
    } else {
        Some(correlations.iter().sum::<f64>() / correlations.len() as f64)
    };
    println!(
        "\ntotal: {total_saved} calibration launches saved, {apps_pruning} app(s) pruning, mean rank corr {}",
        mean_rho.map_or("n/a".to_string(), |r| format!("{r:.3}"))
    );

    let json = format!(
        "{{\n  \"benchmark\": \"errorprop_validation\",\n  \"scale\": {:?},\n  \"profile\": \"gtx560\",\n  \"measure_seeds\": {measure_seeds},\n  \"tune_seeds\": {tune_seeds},\n  \"note\": \"Per-rung static error bounds (abstract interpretation with injected knob errors) validated against measured metric error; soundness requires measured <= bound on every non-refused rung. calibration_launches_saved counts tuner launches skipped by static pruning.\",\n  \"total_calibration_launches_saved\": {total_saved},\n  \"apps_with_pruning\": {apps_pruning},\n  \"mean_rank_correlation\": {},\n  \"soundness_violations\": {failures},\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        mean_rho.map_or("null".to_string(), |r| format!("{r:.4}")),
        entries.join(",\n")
    );
    std::fs::write("BENCH_errorprop.json", &json).expect("write BENCH_errorprop.json");
    println!("wrote BENCH_errorprop.json");

    if failures > 0 {
        eprintln!("FAIL: {failures} static-bound violation(s)");
        std::process::exit(1);
    }
}
