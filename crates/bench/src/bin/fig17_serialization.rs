//! Figure 17: why speedup falls as the lookup table grows — the fraction
//! of serialized (uncoalesced) memory transactions rises with the table
//! size, because data-dependent table addresses spread across more cache
//! lines.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig17_serialization
//! ```

use paraprox::DeviceProfile;
use paraprox_approx::{LookupMode, TablePlacement};
use paraprox_apps::functions::{build, CaseStudy};
use paraprox_apps::Scale;
use paraprox_bench::{bar, force_memo, run_once};

fn main() {
    let profile = DeviceProfile::gtx560();
    let workload = build(CaseStudy::Bass, Scale::Paper, 0);
    let (_, exact_cycles, _) = run_once(&workload.program, &workload.pipeline, &profile);
    println!("Figure 17: lookup-table size vs serialization overhead and speedup (Bass, GPU)\n");
    println!(
        "{:>7} {:>14} {:>9}  {:>8}",
        "entries", "serialization", "speedup", "l1 hit"
    );
    let mut prev_ser = -1.0f64;
    let mut rows = Vec::new();
    for bits in 3u32..=13 {
        let (program, pipeline) =
            force_memo(&workload, bits, LookupMode::Nearest, TablePlacement::Global);
        let (_, cycles, stats) = run_once(&program, &pipeline, &profile);
        let ser = 100.0 * stats.serialization_overhead();
        let speedup = exact_cycles as f64 / cycles as f64;
        rows.push((1usize << bits, ser, speedup, 100.0 * stats.l1_hit_rate()));
        prev_ser = prev_ser.max(ser);
    }
    for (entries, ser, speedup, hit) in &rows {
        println!(
            "{entries:>7} {ser:>13.1}% {speedup:>8.2}x {hit:>7.1}%  {}",
            bar(*ser, 100.0, 30)
        );
    }
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    println!(
        "\nserialization grows {:.1}% -> {:.1}% while speedup falls {:.2}x -> {:.2}x (paper's shape)",
        first.1, last.1, first.2, last.2
    );
}
