//! Figure 5: the value-locality assumption behind the stencil
//! optimization — the average percent difference between adjacent pixels
//! across ten images. The paper finds >70% of pixels differ from their
//! neighbors by less than 10%.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig05_pixel_similarity
//! ```

use paraprox_apps::inputs;
use paraprox_bench::bar;

fn main() {
    let (w, h) = (128usize, 128usize);
    let mut all_diffs: Vec<f64> = Vec::new();
    for seed in 0..10u64 {
        let img = inputs::smooth_image(&mut inputs::rng(seed), w, h);
        all_diffs.extend(inputs::neighbor_percent_differences(&img, w, h));
    }
    println!(
        "Figure 5: mean percent difference of each pixel vs its 8 neighbors\n(10 synthetic {w}x{h} images, {} pixels)\n",
        all_diffs.len()
    );
    let edges: Vec<(f64, f64, &str)> = vec![
        (0.0, 10.0, "0-10%"),
        (10.0, 20.0, "10-20%"),
        (20.0, 30.0, "20-30%"),
        (30.0, 40.0, "30-40%"),
        (40.0, 50.0, "40-50%"),
        (50.0, 100.0, "50-100%"),
        (100.0, f64::INFINITY, ">100%"),
    ];
    let total = all_diffs.len() as f64;
    let mut first_bin_pct = 0.0;
    for (lo, hi, label) in edges {
        let count = all_diffs.iter().filter(|&&d| d >= lo && d < hi).count();
        let pct = 100.0 * count as f64 / total;
        if lo == 0.0 {
            first_bin_pct = pct;
        }
        println!("  {:<8} {:>6.2}%  {}", label, pct, bar(pct, 100.0, 40));
    }
    println!(
        "\npixels <10% different from neighbors: {:.1}% (paper: >70%)",
        first_bin_pct
    );
    assert!(first_bin_pct > 70.0, "locality assumption must hold");
}
