//! Serving-engine benchmark: drive seeded request streams with a drift
//! window through `paraprox-serve` for several tenant applications on
//! both device profiles, and record throughput, latency percentiles, TOQ
//! violations, and watchdog recalibrations (back-offs + re-promotions).
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_serve            # full
//! cargo run --release -p paraprox-bench --bin bench_serve -- --smoke # quick
//! ```
//!
//! Writes `BENCH_serve.json` into the current directory. The drift window
//! scales every `f32` input buffer mid-stream, pushing inputs outside the
//! ranges the approximate kernels were tuned on; the interesting output is
//! the watchdog's reaction — how many checks violate the TOQ, how far the
//! ladder backs off, and whether the tenant re-promotes once the window
//! passes. The request stream is seeded, so reruns replay it exactly.

use paraprox::{Device, DeviceApp};
use paraprox_apps::Scale;
use paraprox_bench::{both_devices, compile_app};
use paraprox_runtime::{Toq, Tuner};
use paraprox_serve::{
    drift_inputs, run_closed_loop, Engine, LoadSpec, ServeConfig, TenantSnapshot,
};

struct BenchShape {
    scale: Scale,
    requests: u64,
    drift_at: u64,
    drift_len: u64,
    check_every: u64,
    promote_after: u64,
}

const DRIFT_GAIN: f32 = 8.0;
const APPS: [&str; 4] = ["Black", "Gamma", "Mean", "Gaussian"];

fn json_opt(q: Option<f64>) -> String {
    q.map_or("null".to_string(), |v| format!("{v:.3}"))
}

fn tenant_json(t: &TenantSnapshot) -> String {
    format!(
        "        {{\n          \"app\": {:?},\n          \"served\": {},\n          \"errors\": {},\n          \"checks\": {},\n          \"violations\": {},\n          \"backoffs\": {},\n          \"promotions\": {},\n          \"recalibrations\": {},\n          \"final_rung\": {:?},\n          \"ladder_len\": {},\n          \"mean_quality\": {},\n          \"min_quality\": {},\n          \"service_p50_ms\": {:.3},\n          \"service_p99_ms\": {:.3},\n          \"queue_p50_ms\": {:.3},\n          \"queue_p99_ms\": {:.3}\n        }}",
        t.name,
        t.served,
        t.errors,
        t.checks,
        t.violations,
        t.backoffs,
        t.promotions,
        t.recalibrations(),
        t.rung,
        t.ladder_len,
        json_opt(t.mean_quality),
        json_opt(t.min_quality),
        t.service_p50_ns as f64 / 1e6,
        t.service_p99_ns as f64 / 1e6,
        t.queue_p50_ns as f64 / 1e6,
        t.queue_p99_ns as f64 / 1e6,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke {
        BenchShape {
            scale: Scale::Test,
            requests: 24,
            drift_at: 6,
            drift_len: 8,
            check_every: 4,
            promote_after: 2,
        }
    } else {
        BenchShape {
            scale: Scale::Paper,
            requests: 80,
            drift_at: 25,
            drift_len: 20,
            check_every: 8,
            promote_after: 2,
        }
    };
    let toq = Toq::paper_default();
    let spec = LoadSpec {
        requests: shape.requests,
        seed_base: 1000,
        inflight: 8,
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serving engine: {} scale, {} requests/tenant, drift {}..{} at {DRIFT_GAIN}x, check every {}, host has {host_cores} core(s)\n",
        if smoke { "test (smoke)" } else { "paper" },
        shape.requests,
        shape.drift_at,
        shape.drift_at + shape.drift_len,
        shape.check_every,
    );

    let mut profile_entries = Vec::new();
    for (tag, profile) in both_devices() {
        println!("== {tag} ({}) ==", profile.name);
        let mut builder = Engine::builder(ServeConfig {
            queue_capacity: 64,
            workers: 0,
            toq,
            check_every: shape.check_every,
            promote_after: shape.promote_after,
            quality_alpha: 0.25,
        });
        let mut tenants = Vec::new();
        for name in APPS {
            let app = paraprox_apps::find(name).expect("registered app");
            let compiled = compile_app(&app, shape.scale, &profile, &Default::default());
            let input_gen = drift_inputs(
                app.input_gen(shape.scale),
                spec.seed_base + shape.drift_at,
                spec.seed_base + shape.drift_at + shape.drift_len,
                DRIFT_GAIN,
            );
            let mut device_app = DeviceApp::new(Device::new(profile.clone()), &compiled, input_gen);
            let report = Tuner {
                toq,
                training_seeds: (0..3).collect(),
            }
            .tune(&mut device_app)
            .expect("tuning must succeed");
            tenants.push(builder.register(app.spec.name, Box::new(device_app), &report));
        }
        let engine = builder.start();
        let workers = engine.worker_count();
        let load = run_closed_loop(&engine, &tenants, &spec, |_| {});
        let snap = engine.shutdown();
        assert_eq!(load.errors, 0, "no request may fail");

        println!(
            "{:>32} {:>6} {:>5} {:>7} {:>7} {:>7} {:>9} {:>9}",
            "tenant", "served", "viol", "recal", "rung", "meanQ", "p50", "p99"
        );
        for t in &snap.tenants {
            println!(
                "{:>32} {:>6} {:>5} {:>7} {:>7} {:>6.1}% {:>7.2}ms {:>7.2}ms",
                t.name,
                t.served,
                t.violations,
                t.recalibrations(),
                t.rung,
                t.mean_quality.unwrap_or(100.0),
                t.service_p50_ns as f64 / 1e6,
                t.service_p99_ns as f64 / 1e6,
            );
        }
        println!(
            "throughput: {:.1} req/s over {:.2}s with {workers} worker(s)\n",
            load.throughput_rps(),
            load.wall_nanos as f64 / 1e9
        );

        profile_entries.push(format!(
            "    {{\n      \"profile\": {tag:?},\n      \"device\": {:?},\n      \"workers\": {workers},\n      \"throughput_rps\": {:.2},\n      \"wall_s\": {:.3},\n      \"completed\": {},\n      \"retries\": {},\n      \"tenants\": [\n{}\n      ]\n    }}",
            profile.name,
            load.throughput_rps(),
            load.wall_nanos as f64 / 1e9,
            load.completed,
            load.retries,
            snap.tenants
                .iter()
                .map(tenant_json)
                .collect::<Vec<_>>()
                .join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"serving_engine\",\n  \"scale\": {:?},\n  \"toq\": {:.1},\n  \"check_every\": {},\n  \"promote_after\": {},\n  \"queue_capacity\": 64,\n  \"inflight\": {},\n  \"requests_per_tenant\": {},\n  \"seed_base\": {},\n  \"drift\": {{\"at\": {}, \"len\": {}, \"gain\": {DRIFT_GAIN:.1}}},\n  \"host_cores\": {host_cores},\n  \"note\": \"Closed-loop seeded request streams through the multi-tenant serving engine; the drift window scales f32 inputs mid-stream and the online watchdog backs off down the tuned ladder, then re-promotes after the configured clean streak. Decision traces are deterministic for a given stream regardless of worker count.\",\n  \"profiles\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        toq.percent(),
        shape.check_every,
        shape.promote_after,
        spec.inflight,
        shape.requests,
        spec.seed_base,
        shape.drift_at,
        shape.drift_len,
        profile_entries.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
