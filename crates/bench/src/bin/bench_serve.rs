//! Serving-engine benchmark: drift/watchdog behavior, batched-vs-unbatched
//! capacity, and an open-loop offered-load sweep, on both device profiles.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_serve            # full
//! cargo run --release -p paraprox-bench --bin bench_serve -- --smoke # quick
//! ```
//!
//! Writes `BENCH_serve.json` into the current directory. Three sections
//! per device profile:
//!
//! 1. **drift**: seeded closed-loop streams with a mid-stream drift window
//!    (every `f32` input scaled by the gain), recording TOQ violations and
//!    watchdog recalibrations. The stream is seeded, so reruns replay it —
//!    and the decision trace is identical at any shard count, worker
//!    count, or batch window.
//! 2. **capacity**: the same seeded stream pushed closed-loop through the
//!    single-shard unbatched engine (the pre-batching path) and through
//!    the sharded+batched engine; the ratio is the speedup from coalescing
//!    requests into fused multi-block launches. In `--smoke` mode a ratio
//!    below 0.90 fails the run (perf gate — the margin absorbs wall-clock
//!    noise on small hosts where the batching win is near parity, while
//!    still catching real serving-path regressions).
//! 3. **offered-load sweep**: a deterministic open-loop generator (Poisson
//!    arrivals from a seeded PRNG, independent of service times) offers
//!    fractions of the measured batched capacity; each point records
//!    achieved throughput, drop rate, and latency percentiles. Below
//!    saturation latency is flat and drops are zero; past saturation the
//!    admission queue overflows and the engine sheds load instead of
//!    collapsing.

use paraprox::{Compiled, Device, DeviceApp, DeviceProfile};
use paraprox_apps::{App, Scale};
use paraprox_bench::{both_devices, compile_app};
use paraprox_runtime::{Toq, TuneReport, Tuner};
use paraprox_serve::{
    drift_inputs, run_closed_loop, run_open_loop, Engine, LoadSpec, OpenLoopSpec, ServeConfig,
    TenantId, TenantSnapshot,
};

struct BenchShape {
    scale: Scale,
    requests: u64,
    drift_at: u64,
    drift_len: u64,
    check_every: u64,
    promote_after: u64,
    /// Closed-loop requests per tenant for each capacity measurement.
    capacity_requests: u64,
    /// Offered-load fractions of the measured batched capacity.
    sweep_fractions: &'static [f64],
    /// Target seconds of offered load per sweep point.
    sweep_seconds: f64,
    /// Bounds on total requests per sweep point.
    sweep_requests: (u64, u64),
}

const DRIFT_GAIN: f32 = 8.0;
const APPS: [&str; 4] = ["Black", "Gamma", "Mean", "Gaussian"];
const SEED_BASE: u64 = 1000;
const BATCHED_SHARDS: usize = 2;
const BATCH_WINDOW: usize = 8;

/// One tenant application, compiled and tuned once per profile; every
/// engine build reuses the report and binds a fresh device instance
/// (outcomes are a pure function of profile, program, and seed, so the
/// tune transfers).
struct Prepared {
    app: App,
    compiled: Compiled,
    report: TuneReport,
}

fn prepare(profile: &DeviceProfile, scale: Scale, toq: Toq) -> Vec<Prepared> {
    APPS.iter()
        .map(|name| {
            let app = paraprox_apps::find(name).expect("registered app");
            let compiled = compile_app(&app, scale, profile, &Default::default());
            let mut scratch = DeviceApp::new(
                Device::new(profile.clone()),
                &compiled,
                app.input_gen(scale),
            );
            let report = Tuner {
                toq,
                training_seeds: (0..3).collect(),
            }
            .tune(&mut scratch)
            .expect("tuning must succeed");
            Prepared {
                app,
                compiled,
                report,
            }
        })
        .collect()
}

/// Build a serving engine over the prepared tenants. `drift` wraps each
/// input generator in the mid-stream gain window.
fn build_engine(
    prepared: &[Prepared],
    profile: &DeviceProfile,
    scale: Scale,
    config: ServeConfig,
    drift: Option<(u64, u64)>,
) -> (Engine, Vec<TenantId>) {
    let mut builder = Engine::builder(config);
    let tenants = prepared
        .iter()
        .map(|p| {
            let mut input_gen = p.app.input_gen(scale);
            if let Some((at, len)) = drift {
                input_gen =
                    drift_inputs(input_gen, SEED_BASE + at, SEED_BASE + at + len, DRIFT_GAIN);
            }
            let device_app = DeviceApp::new(Device::new(profile.clone()), &p.compiled, input_gen);
            builder.register(p.app.spec.name, Box::new(device_app), &p.report)
        })
        .collect();
    (builder.start(), tenants)
}

fn serve_config(toq: Toq, shape: &BenchShape, shards: usize, batch_window: usize) -> ServeConfig {
    ServeConfig {
        queue_capacity: 1024,
        shards,
        workers: 1,
        batch_window,
        toq,
        check_every: shape.check_every,
        promote_after: shape.promote_after,
        quality_alpha: 0.25,
    }
}

/// Closed-loop capacity of one engine configuration on the shared seeded
/// stream, in requests per second. Best of two runs: capacity is a
/// maximum-sustainable-rate question, and the second run also absorbs
/// warm-up effects (host allocator, fused-artifact stores).
fn measure_capacity(
    prepared: &[Prepared],
    profile: &DeviceProfile,
    shape: &BenchShape,
    toq: Toq,
    shards: usize,
    batch_window: usize,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..2 {
        let (engine, tenants) = build_engine(
            prepared,
            profile,
            shape.scale,
            serve_config(toq, shape, shards, batch_window),
            None,
        );
        let spec = LoadSpec {
            requests: shape.capacity_requests,
            seed_base: SEED_BASE,
            inflight: 64,
        };
        let load = run_closed_loop(&engine, &tenants, &spec, |_| {});
        engine.shutdown();
        assert_eq!(load.errors, 0, "no request may fail");
        best = best.max(load.throughput_rps());
    }
    best
}

fn json_opt(q: Option<f64>) -> String {
    q.map_or("null".to_string(), |v| format!("{v:.3}"))
}

fn tenant_json(t: &TenantSnapshot) -> String {
    format!(
        "        {{\n          \"app\": {:?},\n          \"served\": {},\n          \"errors\": {},\n          \"checks\": {},\n          \"violations\": {},\n          \"backoffs\": {},\n          \"promotions\": {},\n          \"recalibrations\": {},\n          \"final_rung\": {:?},\n          \"ladder_len\": {},\n          \"mean_quality\": {},\n          \"min_quality\": {},\n          \"batches\": {},\n          \"mean_batch\": {:.2},\n          \"peak_batch\": {},\n          \"peak_queue_depth\": {},\n          \"service_p50_ms\": {:.3},\n          \"service_p99_ms\": {:.3},\n          \"queue_p50_ms\": {:.3},\n          \"queue_p99_ms\": {:.3}\n        }}",
        t.name,
        t.served,
        t.errors,
        t.checks,
        t.violations,
        t.backoffs,
        t.promotions,
        t.recalibrations(),
        t.rung,
        t.ladder_len,
        json_opt(t.mean_quality),
        json_opt(t.min_quality),
        t.batches,
        t.mean_batch(),
        t.peak_batch,
        t.peak_queue_depth,
        t.service_p50_ns as f64 / 1e6,
        t.service_p99_ns as f64 / 1e6,
        t.queue_p50_ns as f64 / 1e6,
        t.queue_p99_ns as f64 / 1e6,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke {
        BenchShape {
            scale: Scale::Test,
            requests: 24,
            drift_at: 6,
            drift_len: 8,
            check_every: 4,
            promote_after: 2,
            capacity_requests: 60,
            sweep_fractions: &[0.5, 1.0],
            sweep_seconds: 0.3,
            sweep_requests: (20, 120),
        }
    } else {
        BenchShape {
            scale: Scale::Paper,
            requests: 80,
            drift_at: 25,
            drift_len: 20,
            check_every: 8,
            promote_after: 2,
            capacity_requests: 240,
            sweep_fractions: &[0.25, 0.5, 0.75, 0.9, 1.0, 1.1],
            sweep_seconds: 2.0,
            sweep_requests: (320, 4800),
        }
    };
    let toq = Toq::paper_default();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serving engine: {} scale, {} requests/tenant (drift), {}/tenant (capacity), drift {}..{} at {DRIFT_GAIN}x, check every {}, host has {host_cores} core(s)\n",
        if smoke { "test (smoke)" } else { "paper" },
        shape.requests,
        shape.capacity_requests,
        shape.drift_at,
        shape.drift_at + shape.drift_len,
        shape.check_every,
    );

    let mut profile_entries = Vec::new();
    let mut gate_failures = Vec::new();
    for (tag, profile) in both_devices() {
        println!("== {tag} ({}) ==", profile.name);
        let prepared = prepare(&profile, shape.scale, toq);

        // -- Section 1: drift / watchdog (the pre-existing benchmark) --
        let (engine, tenants) = build_engine(
            &prepared,
            &profile,
            shape.scale,
            serve_config(toq, &shape, BATCHED_SHARDS, BATCH_WINDOW),
            Some((shape.drift_at, shape.drift_len)),
        );
        let workers = engine.worker_count();
        let spec = LoadSpec {
            requests: shape.requests,
            seed_base: SEED_BASE,
            inflight: 8,
        };
        let load = run_closed_loop(&engine, &tenants, &spec, |_| {});
        let snap = engine.shutdown();
        assert_eq!(load.errors, 0, "no request may fail");

        println!(
            "{:>32} {:>6} {:>5} {:>7} {:>7} {:>7} {:>9} {:>9}",
            "tenant", "served", "viol", "recal", "rung", "meanQ", "p50", "p99"
        );
        for t in &snap.tenants {
            println!(
                "{:>32} {:>6} {:>5} {:>7} {:>7} {:>6.1}% {:>7.2}ms {:>7.2}ms",
                t.name,
                t.served,
                t.violations,
                t.recalibrations(),
                t.rung,
                t.mean_quality.unwrap_or(100.0),
                t.service_p50_ns as f64 / 1e6,
                t.service_p99_ns as f64 / 1e6,
            );
        }
        println!(
            "drift stream: {:.1} req/s over {:.2}s with {workers} worker(s)",
            load.throughput_rps(),
            load.wall_nanos as f64 / 1e9
        );

        // -- Section 2: batched-vs-unbatched capacity on one stream --
        let baseline_rps = measure_capacity(&prepared, &profile, &shape, toq, 1, 1);
        let batched_rps = measure_capacity(
            &prepared,
            &profile,
            &shape,
            toq,
            BATCHED_SHARDS,
            BATCH_WINDOW,
        );
        let speedup = batched_rps / baseline_rps;
        println!(
            "capacity: unbatched 1x1x1 {baseline_rps:.1} req/s, batched {BATCHED_SHARDS}x1 window {BATCH_WINDOW} {batched_rps:.1} req/s -> {speedup:.2}x"
        );
        // A hard >= 1.0 gate flaps on small hosts where the batching win
        // is near parity (recorded margins ~1.04x on one core): leave
        // headroom for wall-clock noise, fail on genuine regressions.
        if speedup < 0.90 {
            gate_failures.push(format!("{tag}: {speedup:.2}x"));
        }

        // -- Section 3: open-loop offered-load sweep --
        let mut sweep_entries = Vec::new();
        for &fraction in shape.sweep_fractions {
            let rate = batched_rps * fraction;
            let requests = ((rate * shape.sweep_seconds) as u64)
                .clamp(shape.sweep_requests.0, shape.sweep_requests.1);
            let (engine, tenants) = build_engine(
                &prepared,
                &profile,
                shape.scale,
                serve_config(toq, &shape, BATCHED_SHARDS, BATCH_WINDOW),
                None,
            );
            let open = run_open_loop(&engine, &tenants, &OpenLoopSpec::new(requests, rate));
            engine.shutdown();
            assert_eq!(open.errors, 0, "no admitted request may fail");
            println!(
                "  offered {:>8.1} req/s ({:>4.0}% of capacity, {requests} reqs): achieved {:>8.1} req/s, drops {:>5.1}%, p50 {:>7.2}ms p95 {:>7.2}ms p99 {:>7.2}ms",
                rate,
                fraction * 100.0,
                open.achieved_rps(),
                open.drop_rate() * 100.0,
                open.latency_p(50.0) as f64 / 1e6,
                open.latency_p(95.0) as f64 / 1e6,
                open.latency_p(99.0) as f64 / 1e6,
            );
            sweep_entries.push(format!(
                "        {{\"fraction\": {fraction:.2}, \"offered_rps\": {rate:.2}, \"requests\": {requests}, \"achieved_rps\": {:.2}, \"completed\": {}, \"dropped\": {}, \"drop_rate\": {:.4}, \"latency_p50_ms\": {:.3}, \"latency_p95_ms\": {:.3}, \"latency_p99_ms\": {:.3}}}",
                open.achieved_rps(),
                open.completed,
                open.dropped,
                open.drop_rate(),
                open.latency_p(50.0) as f64 / 1e6,
                open.latency_p(95.0) as f64 / 1e6,
                open.latency_p(99.0) as f64 / 1e6,
            ));
        }
        println!();

        profile_entries.push(format!(
            "    {{\n      \"profile\": {tag:?},\n      \"device\": {:?},\n      \"workers\": {workers},\n      \"throughput_rps\": {:.2},\n      \"wall_s\": {:.3},\n      \"completed\": {},\n      \"retries\": {},\n      \"steals\": {},\n      \"capacity\": {{\n        \"requests_per_tenant\": {},\n        \"baseline_rps\": {baseline_rps:.2},\n        \"batched_rps\": {batched_rps:.2},\n        \"speedup\": {speedup:.3},\n        \"baseline\": {{\"shards\": 1, \"workers\": 1, \"batch_window\": 1}},\n        \"batched\": {{\"shards\": {BATCHED_SHARDS}, \"workers\": 1, \"batch_window\": {BATCH_WINDOW}}}\n      }},\n      \"offered_load_sweep\": [\n{}\n      ],\n      \"tenants\": [\n{}\n      ]\n    }}",
            profile.name,
            load.throughput_rps(),
            load.wall_nanos as f64 / 1e9,
            load.completed,
            load.retries,
            snap.steals,
            shape.capacity_requests,
            sweep_entries.join(",\n"),
            snap.tenants
                .iter()
                .map(tenant_json)
                .collect::<Vec<_>>()
                .join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"serving_engine\",\n  \"scale\": {:?},\n  \"toq\": {:.1},\n  \"check_every\": {},\n  \"promote_after\": {},\n  \"queue_capacity\": 1024,\n  \"requests_per_tenant\": {},\n  \"seed_base\": {SEED_BASE},\n  \"drift\": {{\"at\": {}, \"len\": {}, \"gain\": {DRIFT_GAIN:.1}}},\n  \"host_cores\": {host_cores},\n  \"note\": \"Seeded streams through the pipeline-of-farms serving engine. drift: closed-loop with a mid-stream input-drift window; the online watchdog backs off down the tuned ladder and re-promotes after the clean streak. capacity: the same stream through the single-shard unbatched path vs the sharded+batched path (fused multi-block launches); fusion amortizes per-launch host overhead (thread scopes, per-worker arena clones, program-cache lookups) across the batch, so the speedup grows with host cores and shrinks as kernels dwarf launch overhead — on a single-core host at paper scale it is near parity, while overhead-dominated test scale shows the gain. offered_load_sweep: deterministic open-loop Poisson arrivals at fractions of the batched capacity; past saturation the bounded admission queue sheds load. Decision traces are identical at any shard count, worker count, and batch window.\",\n  \"profiles\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        toq.percent(),
        shape.check_every,
        shape.promote_after,
        shape.requests,
        shape.drift_at,
        shape.drift_len,
        profile_entries.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if smoke && !gate_failures.is_empty() {
        eprintln!(
            "PERF GATE FAILED: sharded+batched engine slower than single-shard unbatched baseline: {}",
            gate_failures.join(", ")
        );
        std::process::exit(1);
    }
}
