//! Interpreter-engine benchmark: host wall-clock cost of executing every
//! benchmark application's pipeline under the tree-walking interpreter vs
//! the register-machine bytecode engine, with a bit-identity check between
//! the two on every app.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_interp            # full
//! cargo run --release -p paraprox-bench --bin bench_interp -- --smoke # quick
//! ```
//!
//! Writes `BENCH_interp.json` into the current directory. The simulated
//! results (buffer contents, cycle counts, cache statistics) are required
//! to be identical under both engines — the benchmark fails loudly if they
//! are not — so the JSON records pure host-side interpreter throughput.
//!
//! Note: both engines charge identical simulated cycles by construction;
//! the speedup reported here is *host* wall-clock only, and includes each
//! app's one-time bytecode compilation (amortized across the runs by the
//! per-device program cache). The first bytecode run of each kernel also
//! profiles op-pair frequencies; later runs dispatch the fused
//! superinstruction artifact. `--smoke` runs the small test-scale inputs
//! once per engine as a fast regression gate for CI, and exits non-zero
//! if the bytecode engine drops below parity (geomean < 1.0x).

use std::time::Instant;

use paraprox_apps::{registry, Scale};
use paraprox_vgpu::{Device, DeviceProfile, ExecEngine, PipelineRun};

struct EngineRun {
    wall_ms_best: f64,
    wall_ms_median: f64,
    wall_ms_all: Vec<f64>,
    run: PipelineRun,
}

/// Median of the run times (mean of the middle two for even counts).
fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN run times"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn run_engine(workload: &paraprox::Workload, engine: ExecEngine, runs: usize) -> EngineRun {
    let profile = DeviceProfile::gtx560()
        .with_engine(engine)
        .with_parallelism(1);
    // One device per engine: the bytecode program cache persists across
    // runs, exactly as it does under the tuner — so run 1 profiles and
    // fuses, and later runs execute the fused artifact.
    let mut device = Device::new(profile);
    let mut wall_ms_all = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let started = Instant::now();
        let run = workload
            .pipeline
            .execute(&mut device, &workload.program)
            .expect("pipeline must execute");
        wall_ms_all.push(started.elapsed().as_secs_f64() * 1e3);
        last = Some(run);
    }
    let best = wall_ms_all.iter().copied().fold(f64::INFINITY, f64::min);
    EngineRun {
        wall_ms_best: best,
        wall_ms_median: median(&wall_ms_all),
        wall_ms_all,
        run: last.expect("at least one run"),
    }
}

fn assert_identical(app: &str, tree: &PipelineRun, bc: &PipelineRun) {
    assert_eq!(bc.stats, tree.stats, "{app}: engines disagree on stats");
    assert_eq!(
        bc.outputs.len(),
        tree.outputs.len(),
        "{app}: engines disagree on output arity"
    );
    for (t, b) in tree.outputs.iter().zip(&bc.outputs) {
        assert_eq!(t.len(), b.len(), "{app}: output length");
        for (x, y) in t.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{app}: output bits diverged");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, runs) = if smoke {
        (Scale::Test, 2)
    } else {
        (Scale::Paper, 5)
    };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "interpreter engines: {} scale, best of {runs} run(s) per engine, host has {host_cores} core(s)\n",
        if smoke { "test (smoke)" } else { "paper" }
    );
    println!(
        "{:>32} {:>14} {:>14} {:>9} {:>9} {:>12} {:>12}",
        "application", "tree-walk", "bytecode", "best", "median", "ops", "fused"
    );

    let mut entries = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    let mut count = 0usize;
    for app in registry() {
        let workload = (app.build)(scale, 0);
        let tree = run_engine(&workload, ExecEngine::TreeWalk, runs);
        let bc = run_engine(&workload, ExecEngine::Bytecode, runs);
        assert_identical(app.spec.name, &tree.run, &bc.run);
        let speedup = tree.wall_ms_best / bc.wall_ms_best;
        let speedup_median = tree.wall_ms_median / bc.wall_ms_median;
        log_speedup_sum += speedup.ln();
        count += 1;
        println!(
            "{:>32} {:>11.2} ms {:>11.2} ms {:>8.2}x {:>8.2}x {:>12} {:>12}",
            app.spec.name,
            tree.wall_ms_best,
            bc.wall_ms_best,
            speedup,
            speedup_median,
            bc.run.stats.ops_dispatched,
            bc.run.stats.fusions_hit,
        );
        let fmt_runs = |v: &[f64]| {
            v.iter()
                .map(|m| format!("{m:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        entries.push(format!(
            "    {{\n      \"app\": {:?},\n      \"tree_walk_ms_best\": {:.3},\n      \"tree_walk_ms_median\": {:.3},\n      \"tree_walk_ms_runs\": [{}],\n      \"bytecode_ms_best\": {:.3},\n      \"bytecode_ms_median\": {:.3},\n      \"bytecode_ms_runs\": [{}],\n      \"speedup\": {:.3},\n      \"speedup_median\": {:.3},\n      \"ops_dispatched\": {},\n      \"fusions_hit\": {},\n      \"total_cycles\": {},\n      \"bit_identical\": true\n    }}",
            app.spec.name,
            tree.wall_ms_best,
            tree.wall_ms_median,
            fmt_runs(&tree.wall_ms_all),
            bc.wall_ms_best,
            bc.wall_ms_median,
            fmt_runs(&bc.wall_ms_all),
            speedup,
            speedup_median,
            bc.run.stats.ops_dispatched,
            bc.run.stats.fusions_hit,
            bc.run.stats.total_cycles()
        ));
    }

    let geomean = (log_speedup_sum / count as f64).exp();
    println!("\ngeomean bytecode speedup over tree-walk: {geomean:.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"interpreter_engines\",\n  \"scale\": {:?},\n  \"profile\": \"gtx560\",\n  \"host_cores\": {host_cores},\n  \"runs_per_engine\": {runs},\n  \"geomean_speedup\": {geomean:.3},\n  \"note\": \"host wall-clock only; simulated cycles, buffers, and cache statistics are verified bit-identical between engines on every app. Bytecode timings include one-time kernel compilation and first-run fusion profiling, amortized by the per-device program cache.\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        entries.join(",\n")
    );
    std::fs::write("BENCH_interp.json", &json).expect("write BENCH_interp.json");
    println!("wrote BENCH_interp.json");

    if smoke && geomean < 1.0 {
        eprintln!(
            "FAIL: smoke geomean {geomean:.3}x < 1.0x — bytecode engine regressed below tree-walk parity"
        );
        std::process::exit(1);
    }
}
