//! Interpreter-engine benchmark: host wall-clock cost of executing every
//! benchmark application's pipeline under the tree-walking interpreter vs
//! the register-machine bytecode engine, with a bit-identity check between
//! the two on every app.
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin bench_interp            # full
//! cargo run --release -p paraprox-bench --bin bench_interp -- --smoke # quick
//! ```
//!
//! Writes `BENCH_interp.json` into the current directory. The simulated
//! results (buffer contents, cycle counts, cache statistics) are required
//! to be identical under both engines — the benchmark fails loudly if they
//! are not — so the JSON records pure host-side interpreter throughput.
//!
//! Note: both engines charge identical simulated cycles by construction;
//! the speedup reported here is *host* wall-clock only, and includes each
//! app's one-time bytecode compilation (amortized across the runs by the
//! per-device program cache). `--smoke` runs the small test-scale inputs
//! once per engine, as a fast regression gate for CI.

use std::time::Instant;

use paraprox_apps::{registry, Scale};
use paraprox_vgpu::{Device, DeviceProfile, ExecEngine, PipelineRun};

struct EngineRun {
    wall_ms_best: f64,
    wall_ms_all: Vec<f64>,
    run: PipelineRun,
}

fn run_engine(workload: &paraprox::Workload, engine: ExecEngine, runs: usize) -> EngineRun {
    let profile = DeviceProfile::gtx560()
        .with_engine(engine)
        .with_parallelism(1);
    // One device per engine: the bytecode program cache persists across
    // runs, exactly as it does under the tuner.
    let mut device = Device::new(profile);
    let mut wall_ms_all = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let started = Instant::now();
        let run = workload
            .pipeline
            .execute(&mut device, &workload.program)
            .expect("pipeline must execute");
        wall_ms_all.push(started.elapsed().as_secs_f64() * 1e3);
        last = Some(run);
    }
    let best = wall_ms_all.iter().copied().fold(f64::INFINITY, f64::min);
    EngineRun {
        wall_ms_best: best,
        wall_ms_all,
        run: last.expect("at least one run"),
    }
}

fn assert_identical(app: &str, tree: &PipelineRun, bc: &PipelineRun) {
    assert_eq!(bc.stats, tree.stats, "{app}: engines disagree on stats");
    assert_eq!(
        bc.outputs.len(),
        tree.outputs.len(),
        "{app}: engines disagree on output arity"
    );
    for (t, b) in tree.outputs.iter().zip(&bc.outputs) {
        assert_eq!(t.len(), b.len(), "{app}: output length");
        for (x, y) in t.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{app}: output bits diverged");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, runs) = if smoke {
        (Scale::Test, 1)
    } else {
        (Scale::Paper, 5)
    };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "interpreter engines: {} scale, best of {runs} run(s) per engine, host has {host_cores} core(s)\n",
        if smoke { "test (smoke)" } else { "paper" }
    );
    println!(
        "{:>32} {:>14} {:>14} {:>9} {:>12}",
        "application", "tree-walk", "bytecode", "speedup", "cycles"
    );

    let mut entries = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    let mut count = 0usize;
    for app in registry() {
        let workload = (app.build)(scale, 0);
        let tree = run_engine(&workload, ExecEngine::TreeWalk, runs);
        let bc = run_engine(&workload, ExecEngine::Bytecode, runs);
        assert_identical(app.spec.name, &tree.run, &bc.run);
        let speedup = tree.wall_ms_best / bc.wall_ms_best;
        log_speedup_sum += speedup.ln();
        count += 1;
        println!(
            "{:>32} {:>11.2} ms {:>11.2} ms {:>8.2}x {:>12}",
            app.spec.name,
            tree.wall_ms_best,
            bc.wall_ms_best,
            speedup,
            bc.run.stats.total_cycles()
        );
        let fmt_runs = |v: &[f64]| {
            v.iter()
                .map(|m| format!("{m:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        entries.push(format!(
            "    {{\n      \"app\": {:?},\n      \"tree_walk_ms_best\": {:.3},\n      \"tree_walk_ms_runs\": [{}],\n      \"bytecode_ms_best\": {:.3},\n      \"bytecode_ms_runs\": [{}],\n      \"speedup\": {:.3},\n      \"total_cycles\": {},\n      \"bit_identical\": true\n    }}",
            app.spec.name,
            tree.wall_ms_best,
            fmt_runs(&tree.wall_ms_all),
            bc.wall_ms_best,
            fmt_runs(&bc.wall_ms_all),
            speedup,
            bc.run.stats.total_cycles()
        ));
    }

    let geomean = (log_speedup_sum / count as f64).exp();
    println!("\ngeomean bytecode speedup over tree-walk: {geomean:.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"interpreter_engines\",\n  \"scale\": {:?},\n  \"profile\": \"gtx560\",\n  \"host_cores\": {host_cores},\n  \"runs_per_engine\": {runs},\n  \"geomean_speedup\": {geomean:.3},\n  \"note\": \"host wall-clock only; simulated cycles, buffers, and cache statistics are verified bit-identical between engines on every app. Bytecode timings include one-time kernel compilation, amortized by the per-device program cache.\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "test" } else { "paper" },
        entries.join(",\n")
    );
    std::fs::write("BENCH_interp.json", &json).expect("write BENCH_interp.json");
    println!("wrote BENCH_interp.json");
}
