//! Figure 14: one optimization does not fit all — applying only the
//! reduction optimization (≈ classic loop perforation) to benchmarks that
//! do not contain a reduction pattern, versus Paraprox's pattern-matched
//! optimizations. The paper measures ~1.25x for reduction-only vs ~2.3x
//! for pattern-based on these benchmarks (GPU, TOQ = 90%).
//!
//! ```sh
//! cargo run --release -p paraprox-bench --bin fig14_one_size
//! ```

use paraprox::CompileOptions;
use paraprox_apps::Scale;
use paraprox_bench::{geomean, mean, tune_app};
use paraprox_runtime::Toq;

/// Benchmarks whose primary pattern is NOT a reduction.
const APPS: [&str; 8] = [
    "BlackScholes",
    "Quasirandom",
    "Gamma Correction",
    "BoxMuller",
    "HotSpot",
    "Gaussian Filter",
    "Mean Filter",
    "Cumulative",
];

fn main() {
    let profile = paraprox::DeviceProfile::gtx560();
    let toq = Toq::paper_default();
    // "Reduction only": disable every other optimization.
    let reduction_only = CompileOptions {
        memo_bits: vec![],
        memo_modes: vec![],
        memo_placements: vec![],
        stencil_schemes: vec![],
        stencil_reaches: vec![],
        reduction_skips: vec![2, 4, 8],
        scan_skip_fractions: vec![],
        guard_divisions: false,
    };
    let pattern_based = CompileOptions::default();
    println!("Figure 14: reduction-only (loop perforation) vs pattern-based (GPU, TOQ = {toq})\n");
    println!(
        "{:<32} {:>16} {:>16}",
        "application", "reduction-only", "pattern-based"
    );
    let mut ro = Vec::new();
    let mut pb = Vec::new();
    for name in APPS {
        let app = paraprox_apps::find(name).expect("known app");
        let (r1, _) = tune_app(&app, Scale::Paper, &profile, &reduction_only, toq, 3);
        let (r2, _) = tune_app(&app, Scale::Paper, &profile, &pattern_based, toq, 3);
        ro.push(r1.chosen_speedup());
        pb.push(r2.chosen_speedup());
        println!(
            "{:<32} {:>15.2}x {:>15.2}x",
            app.spec.name,
            r1.chosen_speedup(),
            r2.chosen_speedup()
        );
    }
    println!(
        "\nmean: reduction-only {:.2}x (geomean {:.2}x) vs pattern-based {:.2}x (geomean {:.2}x)",
        mean(&ro),
        geomean(&ro),
        mean(&pb),
        geomean(&pb)
    );
    println!("paper: ~1.25x vs ~2.3x");
}
