//! Wall-clock benchmarks of the simulator executing exact vs approximate
//! kernels, using a plain `harness = false` main (the build environment is
//! offline, so no external bench harness is available).
//!
//! Simulated *cycles* (the paper's metric) are measured by the harness
//! binaries in `src/bin/`; these benches track the real-time cost of the
//! reproduction itself — how long the SIMT interpreter takes to execute
//! representative exact and approximate pipelines — so regressions in the
//! simulator or the rewriters show up in CI.
//!
//! Under `cargo test` (which runs `harness = false` bench targets) a single
//! warm-up iteration runs per bench as a smoke check; set
//! `PARAPROX_BENCH_FULL=1` (as `cargo bench` users should) for timed runs.

use paraprox::{CompileOptions, Device, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_bench::compile_app;
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over `iters` iterations and report per-iteration wall time.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // Warm-up / smoke iteration (the only one in quick mode).
    f();
    if iters == 0 {
        println!("{name:<40} ok (smoke)");
        return;
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
}

/// Benchmark one app's exact pipeline and its first generated variant.
fn bench_app(name: &str, iters: u32) {
    let app = paraprox_apps::find(name).expect("known app");
    let profile = DeviceProfile::gtx560();
    let compiled = compile_app(&app, Scale::Test, &profile, &CompileOptions::minimal());
    let workload = &compiled.workload;
    let group = app.spec.name.replace(' ', "_");
    bench(&format!("{group}/exact"), iters, || {
        let mut device = Device::new(profile.clone());
        let run = workload
            .pipeline
            .execute(&mut device, &workload.program)
            .expect("execute");
        black_box(run.stats.total_cycles());
    });
    if let Some(variant) = compiled.variants.first() {
        bench(&format!("{group}/approx"), iters, || {
            let mut device = Device::new(profile.clone());
            let run = variant
                .pipeline
                .execute(&mut device, &variant.program)
                .expect("execute");
            black_box(run.stats.total_cycles());
        });
    }
}

/// Compile-time (detection + rewriting + bit tuning) cost.
fn bench_compile(iters: u32) {
    let app = paraprox_apps::find("BlackScholes").expect("known app");
    let profile = DeviceProfile::gtx560();
    bench("compile/blackscholes_minimal", iters, || {
        black_box(compile_app(
            &app,
            Scale::Test,
            &profile,
            &CompileOptions::minimal(),
        ));
    });
}

/// Frontend throughput: parsing + lowering a representative kernel file.
fn bench_frontend(iters: u32) {
    let source = r#"
        __device__ float heavy(float x) {
            return logf(x + 1.5f) / sqrtf(x * x + 1.0f) / (x + 2.0f);
        }
        __global__ void apply(float* in, float* out, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            if (gid < n) { out[gid] = heavy(in[gid]); }
        }
        __global__ void blur(float* img, float* out, int w, int h) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                float s = 0.0f;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 3; j++) {
                        s += img[(y + i - 1) * w + x + j - 1];
                    }
                }
                out[y * w + x] = s / 9.0f;
            }
        }
    "#;
    bench("frontend/parse_and_lower", iters.max(1) * 20, || {
        black_box(paraprox_lang::parse_program(black_box(source)).expect("parses"));
    });
}

fn main() {
    let full = std::env::var("PARAPROX_BENCH_FULL").is_ok_and(|v| v != "0");
    let iters = if full { 10 } else { 0 };
    // One representative per optimization: map (memoization), stencil,
    // reduction, scan.
    bench_app("BlackScholes", iters); // Fig. 11/12 map kernel
    bench_app("Mean Filter", iters); // Fig. 11 stencil kernel
    bench_app("Kernel Density", iters); // Fig. 11 reduction kernel
    bench_app("Cumulative", iters); // Fig. 11/18 scan pipeline
    bench_compile(iters);
    bench_frontend(iters);
}
