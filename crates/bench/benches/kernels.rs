//! Criterion wall-clock benchmarks of the simulator executing exact vs
//! approximate kernels.
//!
//! Simulated *cycles* (the paper's metric) are measured by the harness
//! binaries in `src/bin/`; these benches track the real-time cost of the
//! reproduction itself — how long the SIMT interpreter takes to execute
//! representative exact and approximate pipelines — so regressions in the
//! simulator or the rewriters show up in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use paraprox::{CompileOptions, Device, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_bench::compile_app;
use std::hint::black_box;

/// Benchmark one app's exact pipeline and its first generated variant.
fn bench_app(c: &mut Criterion, name: &str) {
    let app = paraprox_apps::find(name).expect("known app");
    let profile = DeviceProfile::gtx560();
    let compiled = compile_app(&app, Scale::Test, &profile, &CompileOptions::minimal());
    let workload = &compiled.workload;
    let mut group = c.benchmark_group(app.spec.name.replace(' ', "_"));
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| {
            let mut device = Device::new(profile.clone());
            let run = workload
                .pipeline
                .execute(&mut device, &workload.program)
                .expect("execute");
            black_box(run.stats.total_cycles())
        })
    });
    if let Some(variant) = compiled.variants.first() {
        group.bench_function("approx", |b| {
            b.iter(|| {
                let mut device = Device::new(profile.clone());
                let run = variant
                    .pipeline
                    .execute(&mut device, &variant.program)
                    .expect("execute");
                black_box(run.stats.total_cycles())
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    // One representative per optimization: map (memoization), stencil,
    // reduction, scan.
    bench_app(c, "BlackScholes"); // Fig. 11/12 map kernel
    bench_app(c, "Mean Filter"); // Fig. 11 stencil kernel
    bench_app(c, "Kernel Density"); // Fig. 11 reduction kernel
    bench_app(c, "Cumulative"); // Fig. 11/18 scan pipeline
}

/// Compile-time (detection + rewriting + bit tuning) cost.
fn bench_compile(c: &mut Criterion) {
    let app = paraprox_apps::find("BlackScholes").expect("known app");
    let profile = DeviceProfile::gtx560();
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    group.bench_function("blackscholes_minimal", |b| {
        b.iter(|| {
            black_box(compile_app(
                &app,
                Scale::Test,
                &profile,
                &CompileOptions::minimal(),
            ))
        })
    });
    group.finish();
}

/// Frontend throughput: parsing + lowering a representative kernel file.
fn bench_frontend(c: &mut Criterion) {
    let source = r#"
        __device__ float heavy(float x) {
            return logf(x + 1.5f) / sqrtf(x * x + 1.0f) / (x + 2.0f);
        }
        __global__ void apply(float* in, float* out, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            if (gid < n) { out[gid] = heavy(in[gid]); }
        }
        __global__ void blur(float* img, float* out, int w, int h) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                float s = 0.0f;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 3; j++) {
                        s += img[(y + i - 1) * w + x + j - 1];
                    }
                }
                out[y * w + x] = s / 9.0f;
            }
        }
    "#;
    let mut group = c.benchmark_group("frontend");
    group.bench_function("parse_and_lower", |b| {
        b.iter(|| black_box(paraprox_lang::parse_program(black_box(source)).expect("parses")))
    });
    group.finish();
}

criterion_group!(kernels, benches, bench_compile, bench_frontend);
criterion_main!(kernels);
