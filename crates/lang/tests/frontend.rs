//! End-to-end frontend tests: parse CUDA-flavored source, lower to IR,
//! execute on the virtual device, and check against host references —
//! plus pattern-detection checks proving that source-parsed kernels feed
//! the same Paraprox pipeline as builder-constructed ones.

use paraprox_lang::parse_program;
use paraprox_vgpu::{Device, DeviceProfile, Dim2};

fn gpu() -> Device {
    Device::new(DeviceProfile::gtx560())
}

#[test]
fn map_kernel_from_source_runs() {
    let program = parse_program(
        r#"
        __device__ float gamma_correct(float x) {
            float norm = fmaxf(x * 0.00392156f, 1e-6f);
            return 255.0f * powf(norm, 0.4545f);
        }

        __global__ void gamma(float* img, float* out, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            if (gid < n) {
                out[gid] = gamma_correct(img[gid]);
            }
        }
    "#,
    )
    .expect("parses");
    assert_eq!(program.func_count(), 1);
    assert_eq!(program.kernel_count(), 1);

    let kid = program.kernel_by_name("gamma").unwrap();
    let mut device = gpu();
    let data: Vec<f32> = (0..64).map(|i| i as f32 * 4.0).collect();
    let img = device.alloc_f32(paraprox_ir::MemSpace::Global, &data);
    let out = device.alloc_f32(paraprox_ir::MemSpace::Global, &vec![0.0; 64]);
    device
        .launch(
            &program,
            kid,
            Dim2::linear(2),
            Dim2::linear(32),
            &[img.into(), out.into(), paraprox_ir::Scalar::I32(64).into()],
        )
        .unwrap();
    let result = device.read_f32(out).unwrap();
    for (i, &px) in data.iter().enumerate() {
        let expected = 255.0 * (px * 0.00392156f32).max(1e-6).powf(0.4545);
        assert!(
            (result[i] - expected).abs() < 1e-2,
            "pixel {i}: {} vs {expected}",
            result[i]
        );
    }
}

#[test]
fn reduction_kernel_from_source_detected() {
    let program = parse_program(
        r#"
        __global__ void chunk_sum(float* in, float* out, int chunk) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            float acc = 0.0f;
            for (int i = gid * chunk; i < gid * chunk + chunk; i++) {
                acc += in[i];
            }
            out[gid] = acc;
        }
    "#,
    )
    .expect("parses");
    let kid = program.kernel_by_name("chunk_sum").unwrap();
    let loops = paraprox_patterns::reduction::find_reduction_loops(program.kernel(kid));
    assert_eq!(loops.len(), 1, "source-parsed reduction loop detected");

    // And it runs correctly.
    let mut device = gpu();
    let data = vec![1.5f32; 128];
    let input = device.alloc_f32(paraprox_ir::MemSpace::Global, &data);
    let out = device.alloc_f32(paraprox_ir::MemSpace::Global, &[0.0; 32]);
    device
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(32),
            &[input.into(), out.into(), paraprox_ir::Scalar::I32(4).into()],
        )
        .unwrap();
    assert_eq!(device.read_f32(out).unwrap(), vec![6.0; 32]);
}

#[test]
fn shared_memory_scan_from_source_matches_template() {
    let program = parse_program(
        r#"
        __global__ void scan_phase1(float* input, float* partial, float* sums) {
            __shared__ float s_a[64];
            __shared__ float s_b[64];
            int tid = threadIdx.x;
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            s_a[tid] = input[gid];
            __syncthreads();
            for (int d = 1; d < 64; d <<= 1) {
                if (tid >= d) {
                    s_b[tid] = s_a[tid] + s_a[tid - d];
                } else {
                    s_b[tid] = s_a[tid];
                }
                __syncthreads();
                s_a[tid] = s_b[tid];
                __syncthreads();
            }
            partial[gid] = s_a[tid];
            if (tid == 63) {
                sums[blockIdx.x] = s_a[tid];
            }
        }
    "#,
    )
    .expect("parses");
    let kid = program.kernel_by_name("scan_phase1").unwrap();
    let m = paraprox_patterns::scan::match_scan(program.kernel(kid))
        .expect("scan template must match source-parsed kernel");
    assert_eq!(m.subarray_len, 64);
    assert_eq!(m.input_param, 0);
    assert_eq!(m.partial_param, 1);
    assert_eq!(m.sums_param, 2);
}

#[test]
fn atomic_histogram_from_source() {
    let program = parse_program(
        r#"
        __global__ void hist(float* values, int* counts, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            if (gid < n) {
                int bucket = min((int)(values[gid] * 4.0f), 3);
                atomicAdd(&counts[bucket], 1);
            }
        }
    "#,
    )
    .expect("parses");
    let kid = program.kernel_by_name("hist").unwrap();
    let mut device = gpu();
    let values: Vec<f32> = (0..64).map(|i| (i % 4) as f32 / 4.0 + 0.1).collect();
    let v = device.alloc_f32(paraprox_ir::MemSpace::Global, &values);
    let c = device.alloc_i32(paraprox_ir::MemSpace::Global, &[0; 4]);
    device
        .launch(
            &program,
            kid,
            Dim2::linear(2),
            Dim2::linear(32),
            &[v.into(), c.into(), paraprox_ir::Scalar::I32(64).into()],
        )
        .unwrap();
    assert_eq!(device.read_i32(c).unwrap(), vec![16; 4]);
}

#[test]
fn stencil_from_source_detected_and_approximated() {
    let program = parse_program(
        r#"
        __global__ void mean3x3(float* img, float* out, int w, int h) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                float sum = 0.0f;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 3; j++) {
                        sum += img[(y + i - 1) * w + x + j - 1];
                    }
                }
                out[y * w + x] = sum / 9.0f;
            } else {
                out[y * w + x] = img[y * w + x];
            }
        }
    "#,
    )
    .expect("parses");
    let kid = program.kernel_by_name("mean3x3").unwrap();
    let cands = paraprox_patterns::stencil::find_stencils(program.kernel(kid));
    assert_eq!(cands.len(), 1);
    assert_eq!((cands[0].tile_h, cands[0].tile_w), (3, 3));

    // Approximate and verify quality on a smooth ramp image.
    let approx = paraprox_approx::approximate_stencil(
        &program,
        kid,
        &cands[0],
        paraprox_approx::StencilScheme::Center,
        1,
    )
    .expect("stencil rewrite");
    let (w, h) = (32usize, 16usize);
    let img: Vec<f32> = (0..w * h).map(|i| (i % w) as f32).collect();
    let run = |p: &paraprox_ir::Program| {
        let mut device = gpu();
        let i_b = device.alloc_f32(paraprox_ir::MemSpace::Global, &img);
        let o_b = device.alloc_f32(paraprox_ir::MemSpace::Global, &vec![0.0; w * h]);
        device
            .launch(
                p,
                kid,
                Dim2::new(w / 16, h / 8),
                Dim2::new(16, 8),
                &[
                    i_b.into(),
                    o_b.into(),
                    paraprox_ir::Scalar::I32(w as i32).into(),
                    paraprox_ir::Scalar::I32(h as i32).into(),
                ],
            )
            .unwrap();
        device.read_f32(o_b).unwrap()
    };
    let exact = run(&program);
    let approxed = run(&approx);
    let q = paraprox_quality::Metric::MeanRelative.quality_f32(&exact, &approxed);
    assert!(q > 90.0, "quality = {q}");
}

#[test]
fn type_promotion_int_to_float() {
    let program = parse_program(
        r#"
        __global__ void promote(float* out) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            out[gid] = (float)gid * 2.0f + 1.0f;
        }
    "#,
    )
    .expect("parses");
    let kid = program.kernel_by_name("promote").unwrap();
    let mut device = gpu();
    let out = device.alloc_f32(paraprox_ir::MemSpace::Global, &[0.0; 8]);
    device
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(8),
            &[out.into()],
        )
        .unwrap();
    assert_eq!(
        device.read_f32(out).unwrap(),
        vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]
    );
}

#[test]
fn lowering_rejects_type_errors() {
    // bool + float
    assert!(parse_program("__device__ float f(float x) { return (x > 0.0f) + 1.0f; }").is_err());
    // unknown identifier
    assert!(parse_program("__device__ float f(float x) { return y; }").is_err());
    // array without index
    assert!(parse_program("__global__ void k(float* a) { float x = a; a[0] = x; }").is_err());
    // specials in device functions
    assert!(
        parse_program("__device__ float f(float x) { return x + (float)threadIdx.x; }").is_err()
    );
    // pointer params on device functions
    assert!(parse_program("__device__ float f(float* a) { return 0.0f; }").is_err());
}

#[test]
fn constant_qualifier_places_buffer_in_constant_space() {
    let program = parse_program(
        r#"
        __global__ void conv(float* img, __constant__ float* coef, float* out) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            out[gid] = img[gid] * coef[0];
        }
    "#,
    )
    .expect("parses");
    let kid = program.kernel_by_name("conv").unwrap();
    let k = program.kernel(kid);
    assert!(matches!(
        &k.params[1],
        paraprox_ir::Param::Buffer {
            space: paraprox_ir::MemSpace::Constant,
            ..
        }
    ));
}
