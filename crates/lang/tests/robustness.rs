//! Robustness: the frontend must never panic — any input, however
//! mangled, must produce either a program or a positioned error.

use paraprox_lang::parse_program;
use paraprox_prng::Rng;

/// Arbitrary character soup (including multi-byte and control chars): no
/// panics.
#[test]
fn arbitrary_strings_never_panic() {
    const POOL: &[char] = &[
        'a', 'z', '0', '9', ' ', '\n', '\t', '(', ')', '{', '}', '[', ']', ';', '=', '+', '*', '/',
        '-', '.', ',', '<', '>', '&', '|', '!', '"', '\'', '\\', '_', '#', '@', '~', '%', '^', '?',
        ':', 'é', 'λ', '中', '\u{0}', '\u{7f}', '\u{2028}', '🦀',
    ];
    let mut r = Rng::seed_from_u64(0x50F7);
    for _ in 0..256 {
        let len = r.random_range(0usize..200);
        let input: String = (0..len)
            .map(|_| POOL[r.random_range(0usize..POOL.len())])
            .collect();
        let _ = parse_program(&input);
    }
}

/// Token-shaped soup (identifiers, numbers, operators): no panics.
#[test]
fn token_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "__global__",
        "__device__",
        "float",
        "int",
        "void",
        "if",
        "for",
        "return",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        "=",
        "+",
        "*",
        "x",
        "1",
        "2.5f",
    ];
    let mut r = Rng::seed_from_u64(0x70C3);
    for _ in 0..256 {
        let n = r.random_range(0usize..64);
        let input = (0..n)
            .map(|_| TOKENS[r.random_range(0usize..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_program(&input);
    }
}

/// Truncating a valid program at any byte boundary: no panics, and the
/// full program still parses.
#[test]
fn truncated_programs_never_panic() {
    let full = r#"
        __device__ float f(float x) { return x * x + 1.0f; }
        __global__ void k(float* a, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            if (gid < n) {
                for (int i = 0; i < 4; i++) { a[gid] += f(a[gid]); }
            }
        }
    "#;
    for cut in 0..=full.len() {
        if full.is_char_boundary(cut) {
            let _ = parse_program(&full[..cut]);
        }
    }
    parse_program(full).expect("the full program is valid");
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // Reasonable depths parse; pathological depths get a clean error
    // instead of a stack overflow (the parser caps expression nesting).
    let nest = |n: usize| {
        let mut expr = "x".to_string();
        for _ in 0..n {
            expr = format!("({expr})");
        }
        format!("__device__ float f(float x) {{ return {expr}; }}")
    };
    parse_program(&nest(40)).expect("40-deep parens parse");
    let err = parse_program(&nest(500)).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);
}

#[test]
fn error_positions_point_into_the_source() {
    let src = "__global__ void k(float* a) {\n    a[0] = ;\n}";
    let err = parse_program(src).unwrap_err();
    assert_eq!(err.pos.line, 2);
    assert!(err.pos.col >= 11, "col = {}", err.pos.col);
}
