//! Robustness: the frontend must never panic — any input, however
//! mangled, must produce either a program or a positioned error.

use paraprox_lang::parse_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: no panics.
    #[test]
    fn arbitrary_strings_never_panic(input in "\\PC*") {
        let _ = parse_program(&input);
    }

    /// Token-shaped soup (identifiers, numbers, operators): no panics.
    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("__global__".to_string()),
            Just("__device__".to_string()),
            Just("float".to_string()),
            Just("int".to_string()),
            Just("void".to_string()),
            Just("if".to_string()),
            Just("for".to_string()),
            Just("return".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just(";".to_string()),
            Just("=".to_string()),
            Just("+".to_string()),
            Just("*".to_string()),
            Just("x".to_string()),
            Just("1".to_string()),
            Just("2.5f".to_string()),
        ],
        0..64,
    )) {
        let input = tokens.join(" ");
        let _ = parse_program(&input);
    }

    /// Truncating a valid program at any byte boundary: no panics, and the
    /// full program still parses.
    #[test]
    fn truncated_programs_never_panic(cut in 0usize..400) {
        let full = r#"
            __device__ float f(float x) { return x * x + 1.0f; }
            __global__ void k(float* a, int n) {
                int gid = blockIdx.x * blockDim.x + threadIdx.x;
                if (gid < n) {
                    for (int i = 0; i < 4; i++) { a[gid] += f(a[gid]); }
                }
            }
        "#;
        prop_assume!(full.is_char_boundary(cut.min(full.len())));
        let _ = parse_program(&full[..cut.min(full.len())]);
        parse_program(full).expect("the full program is valid");
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // Reasonable depths parse; pathological depths get a clean error
    // instead of a stack overflow (the parser caps expression nesting).
    let nest = |n: usize| {
        let mut expr = "x".to_string();
        for _ in 0..n {
            expr = format!("({expr})");
        }
        format!("__device__ float f(float x) {{ return {expr}; }}")
    };
    parse_program(&nest(40)).expect("40-deep parens parse");
    let err = parse_program(&nest(500)).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);
}

#[test]
fn error_positions_point_into_the_source() {
    let src = "__global__ void k(float* a) {\n    a[0] = ;\n}";
    let err = parse_program(src).unwrap_err();
    assert_eq!(err.pos.line, 2);
    assert!(err.pos.col >= 11, "col = {}", err.pos.col);
}
