//! Recursive-descent parser with precedence climbing.

use crate::ast::*;
use crate::error::{LangError, Pos};
use crate::lexer::{Tok, Token};

pub(crate) fn parse(tokens: &[Token]) -> Result<Unit, LangError> {
    let mut p = Parser {
        tokens,
        i: 0,
        depth: 0,
    };
    let mut unit = Unit::default();
    while !p.at_end() {
        let pos = p.pos();
        let qualifier = p.expect_any_ident()?;
        match qualifier.as_str() {
            "__device__" => unit.functions.push(p.device_fn(pos)?),
            "__global__" => unit.kernels.push(p.kernel_fn(pos)?),
            other => {
                return Err(LangError::new(
                    pos,
                    format!("expected `__device__` or `__global__`, found `{other}`"),
                ))
            }
        }
    }
    Ok(unit)
}

struct Parser<'t> {
    tokens: &'t [Token],
    i: usize,
    /// Current expression-nesting depth (see [`MAX_EXPR_DEPTH`]).
    depth: u32,
}

/// Maximum expression nesting. Recursive descent uses stack frames
/// proportional to nesting; the cap turns pathological inputs into a clean
/// error instead of a stack overflow (debug builds have large frames).
const MAX_EXPR_DEPTH: u32 = 96;

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.i >= self.tokens.len()
    }

    fn pos(&self) -> Pos {
        self.tokens
            .get(self.i)
            .map(|t| t.pos)
            .unwrap_or(Pos { line: 0, col: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.i).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.i + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.i);
        self.i += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), LangError> {
        let pos = self.pos();
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(LangError::new(
                pos,
                format!("expected `{p}`, found {}", self.describe()),
            ))
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            Some(Tok::Ident(s)) => format!("`{s}`"),
            Some(Tok::Int(v)) => format!("`{v}`"),
            Some(Tok::Float(v)) => format!("`{v}`"),
            Some(Tok::Punct(p)) => format!("`{p}`"),
            None => "end of input".to_string(),
        }
    }

    fn expect_any_ident(&mut self) -> Result<String, LangError> {
        let pos = self.pos();
        match self.bump().map(|t| t.tok.clone()) {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(LangError::new(pos, "expected identifier")),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == word) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn peek_ty(&self) -> Option<SrcTy> {
        match self.peek() {
            Some(Tok::Ident(s)) => ty_of(s),
            _ => None,
        }
    }

    fn expect_ty(&mut self) -> Result<SrcTy, LangError> {
        let pos = self.pos();
        let name = self.expect_any_ident()?;
        ty_of(&name).ok_or_else(|| LangError::new(pos, format!("expected a type, found `{name}`")))
    }

    // ---- declarations ---------------------------------------------------

    fn params(&mut self) -> Result<Vec<ParamDecl>, LangError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let is_constant = self.eat_ident("__constant__") || self.eat_ident("const");
                let ty = self.expect_ty()?;
                let is_pointer = self.eat_punct("*");
                let name = self.expect_any_ident()?;
                params.push(ParamDecl {
                    name,
                    ty,
                    is_pointer,
                    is_constant,
                });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(params)
    }

    fn device_fn(&mut self, pos: Pos) -> Result<DeviceFn, LangError> {
        let ret = self.expect_ty()?;
        let name = self.expect_any_ident()?;
        let params = self.params()?;
        let body = self.block()?;
        Ok(DeviceFn {
            name,
            ret,
            params,
            body,
            pos,
        })
    }

    fn kernel_fn(&mut self, pos: Pos) -> Result<KernelFn, LangError> {
        let void_pos = self.pos();
        let kw = self.expect_any_ident()?;
        if kw != "void" {
            return Err(LangError::new(void_pos, "kernels must return `void`"));
        }
        let name = self.expect_any_ident()?;
        let params = self.params()?;
        self.expect_punct("{")?;
        let mut shared = Vec::new();
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.eat_ident("__shared__") {
                let ty = self.expect_ty()?;
                let sname = self.expect_any_ident()?;
                self.expect_punct("[")?;
                let len_pos = self.pos();
                let len = match self.bump().map(|t| t.tok.clone()) {
                    Some(Tok::Int(v)) if v > 0 => v as usize,
                    _ => {
                        return Err(LangError::new(
                            len_pos,
                            "shared array length must be a positive integer literal",
                        ))
                    }
                };
                self.expect_punct("]")?;
                self.expect_punct(";")?;
                shared.push(SharedDecl {
                    name: sname,
                    ty,
                    len,
                });
            } else {
                body.push(self.stmt()?);
            }
        }
        Ok(KernelFn {
            name,
            params,
            shared,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let pos = self.pos();
        // Declarations.
        if self.peek_ty().is_some() && matches!(self.peek2(), Some(Tok::Ident(_))) {
            let ty = self.expect_ty()?;
            let name = self.expect_any_ident()?;
            self.expect_punct("=")?;
            let init = self.spanned_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Decl { ty, name, init });
        }
        match self.peek() {
            Some(Tok::Ident(word)) => match word.as_str() {
                "if" => self.if_stmt(),
                "for" => self.for_stmt(),
                "return" => {
                    self.i += 1;
                    let e = self.spanned_expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(e))
                }
                "__syncthreads" => {
                    self.i += 1;
                    self.expect_punct("(")?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Sync)
                }
                name if name.starts_with("atomic") => {
                    let name = name.to_string();
                    self.i += 1;
                    self.expect_punct("(")?;
                    self.expect_punct("&")?;
                    let base = self.expect_any_ident()?;
                    self.expect_punct("[")?;
                    let index = self.spanned_expr()?;
                    self.expect_punct("]")?;
                    self.expect_punct(",")?;
                    let value = self.spanned_expr()?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Atomic {
                        name,
                        base,
                        index,
                        value,
                        pos,
                    })
                }
                _ => self.assign_or_store(),
            },
            _ => Err(LangError::new(
                pos,
                format!("expected a statement, found {}", self.describe()),
            )),
        }
    }

    fn assign_or_store(&mut self) -> Result<Stmt, LangError> {
        let name = self.expect_any_ident()?;
        if self.eat_punct("[") {
            let index = self.spanned_expr()?;
            self.expect_punct("]")?;
            // Compound array stores desugar to read-modify-write.
            let pos = self.pos();
            let op = self.assign_op()?;
            let value = self.spanned_expr()?;
            self.expect_punct(";")?;
            let value = if op.is_empty() {
                value
            } else {
                SpannedExpr {
                    pos: value.pos,
                    expr: Expr::Binary(
                        leak_op(&op),
                        Box::new(Expr::Index(name.clone(), Box::new(index.expr.clone()))),
                        Box::new(value.expr),
                    ),
                }
            };
            let _ = pos;
            return Ok(Stmt::Store {
                base: name,
                index,
                value,
            });
        }
        let op = self.assign_op()?;
        let value = self.spanned_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { name, op, value })
    }

    /// Consume `=`, or a compound-assignment operator returning its base op.
    fn assign_op(&mut self) -> Result<String, LangError> {
        for (tok, base) in [
            ("+=", "+"),
            ("-=", "-"),
            ("*=", "*"),
            ("/=", "/"),
            ("%=", "%"),
            ("|=", "|"),
            ("&=", "&"),
            ("^=", "^"),
            ("<<=", "<<"),
            (">>=", ">>"),
        ] {
            if self.eat_punct(tok) {
                return Ok(base.to_string());
            }
        }
        self.expect_punct("=")?;
        Ok(String::new())
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        self.i += 1; // `if`
        self.expect_punct("(")?;
        let cond = self.spanned_expr()?;
        self.expect_punct(")")?;
        let then_body = self.block()?;
        let else_body = if self.eat_ident("else") {
            if matches!(self.peek(), Some(Tok::Ident(s)) if s == "if") {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        self.i += 1; // `for`
        self.expect_punct("(")?;
        let ty_pos = self.pos();
        let ty = self.expect_ty()?;
        if ty != SrcTy::Int {
            return Err(LangError::new(ty_pos, "loop variables must be `int`"));
        }
        let var = self.expect_any_ident()?;
        self.expect_punct("=")?;
        let init = self.spanned_expr()?;
        self.expect_punct(";")?;
        let var2_pos = self.pos();
        let var2 = self.expect_any_ident()?;
        if var2 != var {
            return Err(LangError::new(
                var2_pos,
                "loop condition must test the loop variable",
            ));
        }
        let cmp_pos = self.pos();
        let cmp = ["<", "<=", ">", ">="]
            .into_iter()
            .find(|c| self.eat_punct(c))
            .ok_or_else(|| LangError::new(cmp_pos, "expected `<`, `<=`, `>`, or `>=`"))?
            .to_string();
        let bound = self.spanned_expr()?;
        self.expect_punct(";")?;
        let var3_pos = self.pos();
        // Update clause: `i++`, `++i`, `i--`, or `i OP= amount`.
        let (update, amount) = if self.eat_punct("++") {
            let v = self.expect_any_ident()?;
            if v != var {
                return Err(LangError::new(
                    var3_pos,
                    "update must modify the loop variable",
                ));
            }
            (
                "+=".to_string(),
                SpannedExpr {
                    expr: Expr::Int(1),
                    pos: var3_pos,
                },
            )
        } else {
            let v = self.expect_any_ident()?;
            if v != var {
                return Err(LangError::new(
                    var3_pos,
                    "update must modify the loop variable",
                ));
            }
            if self.eat_punct("++") {
                (
                    "+=".to_string(),
                    SpannedExpr {
                        expr: Expr::Int(1),
                        pos: var3_pos,
                    },
                )
            } else if self.eat_punct("--") {
                (
                    "-=".to_string(),
                    SpannedExpr {
                        expr: Expr::Int(1),
                        pos: var3_pos,
                    },
                )
            } else {
                let op_pos = self.pos();
                let op = ["+=", "-=", "*=", "<<=", ">>="]
                    .into_iter()
                    .find(|c| self.eat_punct(c))
                    .ok_or_else(|| {
                        LangError::new(op_pos, "expected `+=`, `-=`, `*=`, `<<=`, or `>>=`")
                    })?
                    .to_string();
                (op, self.spanned_expr()?)
            }
        };
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            init,
            cmp,
            bound,
            update,
            amount,
            body,
        })
    }

    // ---- expressions -----------------------------------------------------

    fn spanned_expr(&mut self) -> Result<SpannedExpr, LangError> {
        let pos = self.pos();
        let expr = self.ternary()?;
        Ok(SpannedExpr { expr, pos })
    }

    fn ternary(&mut self) -> Result<Expr, LangError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(LangError::new(
                self.pos(),
                format!("expression nesting exceeds {MAX_EXPR_DEPTH} levels"),
            ));
        }
        let result = self.ternary_inner();
        self.depth -= 1;
        result
    }

    fn ternary_inner(&mut self) -> Result<Expr, LangError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let t = self.ternary()?;
            self.expect_punct(":")?;
            let f = self.ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)))
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_level: usize) -> Result<Expr, LangError> {
        // Precedence levels, loosest first.
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if min_level >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_level + 1)?;
        loop {
            let mut matched = None;
            for op in LEVELS[min_level] {
                if matches!(self.peek(), Some(Tok::Punct(p)) if p == op) {
                    matched = Some(*op);
                    break;
                }
            }
            match matched {
                Some(op) => {
                    self.i += 1;
                    let rhs = self.binary(min_level + 1)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        for (tok, name) in [("-", "-"), ("!", "!"), ("~", "~")] {
            if self.eat_punct(tok) {
                return Ok(Expr::Unary(name, Box::new(self.unary()?)));
            }
        }
        // Cast: `(` type `)` unary.
        if matches!(self.peek(), Some(Tok::Punct("(")))
            && matches!(self.peek2(), Some(Tok::Ident(s)) if ty_of(s).is_some())
            && matches!(
                self.tokens.get(self.i + 2).map(|t| &t.tok),
                Some(Tok::Punct(")"))
            )
        {
            self.i += 1;
            let ty = self.expect_ty()?;
            self.expect_punct(")")?;
            return Ok(Expr::Cast(ty, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.ternary()?;
                self.expect_punct("]")?;
                let base = match e {
                    Expr::Ident(name) => name,
                    _ => {
                        return Err(LangError::new(
                            self.pos(),
                            "only named arrays can be indexed",
                        ))
                    }
                };
                e = Expr::Index(base, Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.bump().map(|t| t.tok.clone()) {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::Punct("(")) => {
                let e = self.ternary()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "threadIdx" | "blockIdx" | "blockDim" | "gridDim" => {
                    self.expect_punct(".")?;
                    let axis_pos = self.pos();
                    let axis = self.expect_any_ident()?;
                    let axis_char = match axis.as_str() {
                        "x" => 'x',
                        "y" => 'y',
                        _ => {
                            return Err(LangError::new(
                                axis_pos,
                                "only `.x` and `.y` axes are supported",
                            ))
                        }
                    };
                    Ok(Expr::Special(name, axis_char))
                }
                _ => {
                    if self.eat_punct("(") {
                        let mut args = Vec::new();
                        if !self.eat_punct(")") {
                            loop {
                                args.push(self.ternary()?);
                                if self.eat_punct(")") {
                                    break;
                                }
                                self.expect_punct(",")?;
                            }
                        }
                        Ok(Expr::Call(name, args))
                    } else {
                        Ok(Expr::Ident(name))
                    }
                }
            },
            _ => Err(LangError::new(pos, "expected an expression".to_string())),
        }
    }
}

fn ty_of(name: &str) -> Option<SrcTy> {
    match name {
        "float" => Some(SrcTy::Float),
        "int" => Some(SrcTy::Int),
        "uint" | "unsigned" => Some(SrcTy::Uint),
        "bool" => Some(SrcTy::Bool),
        _ => None,
    }
}

fn leak_op(op: &str) -> &'static str {
    // Compound-assignment base operators are a closed set.
    match op {
        "+" => "+",
        "-" => "-",
        "*" => "*",
        "/" => "/",
        "%" => "%",
        "|" => "|",
        "&" => "&",
        "^" => "^",
        "<<" => "<<",
        ">>" => ">>",
        _ => unreachable!("unknown compound operator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_device_function() {
        let unit = parse_src("__device__ float sq(float x) { return x * x; }");
        assert_eq!(unit.functions.len(), 1);
        let f = &unit.functions[0];
        assert_eq!(f.name, "sq");
        assert_eq!(f.ret, SrcTy::Float);
        assert_eq!(f.params.len(), 1);
        assert!(matches!(f.body[0], Stmt::Return(_)));
    }

    #[test]
    fn parses_kernel_with_params_and_shared() {
        let unit = parse_src(
            r#"__global__ void k(float* in, __constant__ float* coef, int n) {
                __shared__ float tile[64];
                int tid = threadIdx.x;
                tile[tid] = in[tid];
                __syncthreads();
            }"#,
        );
        let k = &unit.kernels[0];
        assert_eq!(k.params.len(), 3);
        assert!(k.params[0].is_pointer && !k.params[0].is_constant);
        assert!(k.params[1].is_pointer && k.params[1].is_constant);
        assert!(!k.params[2].is_pointer);
        assert_eq!(k.shared.len(), 1);
        assert_eq!(k.shared[0].len, 64);
        assert_eq!(k.body.len(), 3);
    }

    #[test]
    fn precedence_is_c_like() {
        let unit = parse_src("__device__ float f(float a, float b) { return a + b * 2.0f; }");
        let Stmt::Return(e) = &unit.functions[0].body[0] else {
            panic!()
        };
        // a + (b * 2)
        assert!(matches!(&e.expr, Expr::Binary("+", _, rhs)
            if matches!(**rhs, Expr::Binary("*", _, _))));
    }

    #[test]
    fn ternary_and_comparison() {
        let unit = parse_src("__device__ float f(float a) { return a >= 0.0f ? a : -a; }");
        let Stmt::Return(e) = &unit.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.expr, Expr::Ternary(..)));
    }

    #[test]
    fn for_loop_forms() {
        let unit = parse_src(
            r#"__global__ void k(float* a, int n) {
                for (int i = 0; i < n; i++) { a[i] = 0.0f; }
                for (int d = 1; d < 64; d <<= 1) { __syncthreads(); }
                for (int s = 32; s > 0; s >>= 1) { __syncthreads(); }
            }"#,
        );
        let k = &unit.kernels[0];
        assert_eq!(k.body.len(), 3);
        let Stmt::For { update, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(update, "+=");
        let Stmt::For { update, cmp, .. } = &k.body[1] else {
            panic!()
        };
        assert_eq!(update, "<<=");
        assert_eq!(cmp, "<");
        let Stmt::For { update, cmp, .. } = &k.body[2] else {
            panic!()
        };
        assert_eq!(update, ">>=");
        assert_eq!(cmp, ">");
    }

    #[test]
    fn compound_assignment_desugars_on_stores() {
        let unit = parse_src("__global__ void k(float* a) { a[0] += 1.0f; }");
        let Stmt::Store { value, .. } = &unit.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(&value.expr, Expr::Binary("+", lhs, _)
            if matches!(**lhs, Expr::Index(..))));
    }

    #[test]
    fn atomics_and_casts() {
        let unit = parse_src(
            r#"__global__ void k(int* counts, float* x) {
                int b = (int)(x[0] * 8.0f);
                atomicAdd(&counts[b], 1);
            }"#,
        );
        let k = &unit.kernels[0];
        assert!(matches!(&k.body[0], Stmt::Decl { init, .. }
            if matches!(init.expr, Expr::Cast(SrcTy::Int, _))));
        assert!(matches!(&k.body[1], Stmt::Atomic { name, .. } if name == "atomicAdd"));
    }

    #[test]
    fn else_if_chains() {
        let unit = parse_src(
            r#"__device__ float f(float x) {
                if (x < 0.0f) { return 0.0f; }
                else if (x > 1.0f) { return 1.0f; }
                else { return x; }
            }"#,
        );
        let Stmt::If { else_body, .. } = &unit.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse(&lex("__global__ void k() { int 3 = x; }").unwrap()).unwrap_err();
        assert_eq!(err.pos.line, 1);
        let err = parse(&lex("__device__ float f() { return 1.0f }").unwrap()).unwrap_err();
        assert!(err.message.contains("expected `;`"), "{}", err.message);
    }

    #[test]
    fn rejects_non_int_loop_variable() {
        let err = parse(
            &lex("__global__ void k(float* a) { for (float i = 0.0f; i < 1.0f; i += 1.0f) { } }")
                .unwrap(),
        )
        .unwrap_err();
        assert!(err.message.contains("loop variables"));
    }
}
