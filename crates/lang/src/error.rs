//! Frontend errors with source positions.

use std::error::Error;
use std::fmt;

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexing, parsing, or lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Where the problem was found.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> LangError {
        LangError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::new(Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}
