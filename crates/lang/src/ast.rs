//! Abstract syntax for the kernel dialect.

use crate::error::Pos;

/// Source-level scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcTy {
    /// `float`
    Float,
    /// `int`
    Int,
    /// `uint` / `unsigned`
    Uint,
    /// `bool`
    Bool,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f32),
    /// `true` / `false`.
    Bool(bool),
    /// Identifier (variable or parameter).
    Ident(String),
    /// `threadIdx.x` and friends: (base, axis).
    Special(String, char),
    /// Unary operation: `-`, `!`, `~`.
    Unary(&'static str, Box<Expr>),
    /// Binary operation by source operator.
    Binary(&'static str, Box<Expr>, Box<Expr>),
    /// Ternary conditional.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Cast `(ty) expr`.
    Cast(SrcTy, Box<Expr>),
    /// Array read `base[index]`.
    Index(String, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
}

/// A spanned expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedExpr {
    /// The expression.
    pub expr: Expr,
    /// Where it starts.
    pub pos: Pos,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ty name = init;`
    Decl {
        /// Declared type.
        ty: SrcTy,
        /// Variable name.
        name: String,
        /// Initializer.
        init: SpannedExpr,
    },
    /// `name op= value;` (`op` empty for plain `=`).
    Assign {
        /// Target variable.
        name: String,
        /// Compound operator without `=` (empty for plain assignment).
        op: String,
        /// Right-hand side.
        value: SpannedExpr,
    },
    /// `base[index] = value;`
    Store {
        /// Array name.
        base: String,
        /// Element index.
        index: SpannedExpr,
        /// Stored value.
        value: SpannedExpr,
    },
    /// `atomicAdd(&base[index], value);` etc.
    Atomic {
        /// Builtin name (`atomicAdd`, ...).
        name: String,
        /// Array name.
        base: String,
        /// Element index.
        index: SpannedExpr,
        /// Operand.
        value: SpannedExpr,
        /// Call position (for diagnostics).
        pos: Pos,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: SpannedExpr,
        /// Then-arm.
        then_body: Vec<Stmt>,
        /// Else-arm (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `for (int i = init; i CMP bound; i STEP amount) { .. }`
    For {
        /// Loop variable name (always declared `int` in the header).
        var: String,
        /// Initial value.
        init: SpannedExpr,
        /// Comparison operator: `<`, `<=`, `>`, `>=`.
        cmp: String,
        /// Bound.
        bound: SpannedExpr,
        /// Update operator: `+=`, `-=`, `*=`, `<<=`, `>>=`, `++`, `--`.
        update: String,
        /// Step amount (1 for `++`/`--`).
        amount: SpannedExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `__syncthreads();`
    Sync,
    /// `return expr;`
    Return(SpannedExpr),
}

/// A function or kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Element / scalar type.
    pub ty: SrcTy,
    /// Pointer parameter (device buffer)?
    pub is_pointer: bool,
    /// `__constant__`-qualified pointer?
    pub is_constant: bool,
}

/// A `__shared__` array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedDecl {
    /// Array name.
    pub name: String,
    /// Element type.
    pub ty: SrcTy,
    /// Compile-time length.
    pub len: usize,
}

/// A `__device__` function.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFn {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: SrcTy,
    /// Scalar parameters.
    pub params: Vec<ParamDecl>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Declaration position.
    pub pos: Pos,
}

/// A `__global__` kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelFn {
    /// Name.
    pub name: String,
    /// Parameters (buffers and scalars).
    pub params: Vec<ParamDecl>,
    /// Shared arrays.
    pub shared: Vec<SharedDecl>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Declaration position.
    pub pos: Pos,
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Device functions, in order.
    pub functions: Vec<DeviceFn>,
    /// Kernels, in order.
    pub kernels: Vec<KernelFn>,
}
