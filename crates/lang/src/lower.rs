//! Lowering from the source AST to the kernel IR.
//!
//! Performs name resolution (parameters, locals with C block scoping,
//! shared arrays, device functions), light type checking with C-style
//! numeric promotion (`int` → `float` etc., inserted as explicit IR
//! casts), builtin mapping (`expf` → [`paraprox_ir::UnOp::Exp`], …), and
//! structural translation of statements.

use std::collections::HashMap;

use paraprox_ir as ir;
use paraprox_ir::Expr as IrExpr;

use crate::ast::*;
use crate::error::{LangError, Pos};

pub(crate) fn lower(unit: &Unit) -> Result<ir::Program, LangError> {
    let mut program = ir::Program::new();
    let mut func_ids: HashMap<String, (ir::FuncId, usize)> = HashMap::new();

    // Device functions first (kernels may call any of them; functions may
    // call previously declared functions, as in C without prototypes).
    for (i, f) in unit.functions.iter().enumerate() {
        if func_ids.contains_key(&f.name) {
            return Err(LangError::new(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
        let lowered = lower_function(f, unit, &func_ids)?;
        let id = program.add_func(lowered);
        func_ids.insert(f.name.clone(), (id, i));
    }
    let mut kernel_names = Vec::new();
    for k in &unit.kernels {
        if kernel_names.contains(&k.name) {
            return Err(LangError::new(
                k.pos,
                format!("duplicate kernel `{}`", k.name),
            ));
        }
        kernel_names.push(k.name.clone());
        let lowered = lower_kernel(k, unit, &func_ids)?;
        program.add_kernel(lowered);
    }
    Ok(program)
}

fn ir_ty(ty: SrcTy) -> ir::Ty {
    match ty {
        SrcTy::Float => ir::Ty::F32,
        SrcTy::Int => ir::Ty::I32,
        SrcTy::Uint => ir::Ty::U32,
        SrcTy::Bool => ir::Ty::Bool,
    }
}

#[derive(Debug, Clone, Copy)]
enum Sym {
    ScalarParam(usize, SrcTy),
    BufferParam(usize, SrcTy),
    Shared(ir::SharedId, SrcTy),
    Local(ir::VarId, SrcTy),
}

struct Lowerer<'u> {
    unit: &'u Unit,
    func_ids: &'u HashMap<String, (ir::FuncId, usize)>,
    /// Name → symbol, innermost last (lookup scans from the end).
    scope: Vec<(String, Sym)>,
    locals: Vec<ir::LocalDecl>,
    in_kernel: bool,
}

impl Lowerer<'_> {
    fn lookup(&self, name: &str) -> Option<Sym> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    fn declare_local(&mut self, name: &str, ty: SrcTy) -> ir::VarId {
        let id = ir::VarId(self.locals.len() as u32);
        self.locals.push(ir::LocalDecl {
            name: name.to_string(),
            ty: ir_ty(ty),
        });
        self.scope.push((name.to_string(), Sym::Local(id, ty)));
        id
    }

    /// Numeric promotion: coerce `expr` (of type `from`) to `to`.
    fn coerce(&self, expr: IrExpr, from: SrcTy, to: SrcTy, pos: Pos) -> Result<IrExpr, LangError> {
        if from == to {
            return Ok(expr);
        }
        match (from, to) {
            (SrcTy::Bool, _) | (_, SrcTy::Bool) => Err(LangError::new(
                pos,
                "no implicit conversion between bool and numeric types",
            )),
            _ => Ok(IrExpr::Cast(ir_ty(to), Box::new(expr))),
        }
    }

    /// C-style usual arithmetic conversions for a binary operation.
    fn promote(
        &self,
        a: (IrExpr, SrcTy),
        b: (IrExpr, SrcTy),
        pos: Pos,
    ) -> Result<(IrExpr, IrExpr, SrcTy), LangError> {
        let rank = |t: SrcTy| match t {
            SrcTy::Bool => 0,
            SrcTy::Int => 1,
            SrcTy::Uint => 2,
            SrcTy::Float => 3,
        };
        let common = if rank(a.1) >= rank(b.1) { a.1 } else { b.1 };
        if (a.1 == SrcTy::Bool) != (b.1 == SrcTy::Bool) {
            return Err(LangError::new(pos, "cannot mix bool and numeric operands"));
        }
        let ea = self.coerce(a.0, a.1, common, pos)?;
        let eb = self.coerce(b.0, b.1, common, pos)?;
        Ok((ea, eb, common))
    }

    fn mem_ref(&self, base: &str, pos: Pos) -> Result<(ir::MemRef, SrcTy), LangError> {
        match self.lookup(base) {
            Some(Sym::BufferParam(i, ty)) => Ok((ir::MemRef::Param(i), ty)),
            Some(Sym::Shared(id, ty)) => Ok((ir::MemRef::Shared(id), ty)),
            Some(_) => Err(LangError::new(pos, format!("`{base}` is not an array"))),
            None => Err(LangError::new(pos, format!("unknown array `{base}`"))),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self, e: &Expr, pos: Pos) -> Result<(IrExpr, SrcTy), LangError> {
        match e {
            Expr::Int(v) => {
                let v32 = i32::try_from(*v)
                    .map_err(|_| LangError::new(pos, "integer literal out of range"))?;
                Ok((IrExpr::i32(v32), SrcTy::Int))
            }
            Expr::Float(v) => Ok((IrExpr::f32(*v), SrcTy::Float)),
            Expr::Bool(v) => Ok((IrExpr::bool(*v), SrcTy::Bool)),
            Expr::Ident(name) => match self.lookup(name) {
                Some(Sym::Local(id, ty)) => Ok((IrExpr::Var(id), ty)),
                Some(Sym::ScalarParam(i, ty)) => Ok((IrExpr::Param(i), ty)),
                Some(Sym::BufferParam(..)) => Err(LangError::new(
                    pos,
                    format!("array `{name}` used without an index"),
                )),
                Some(Sym::Shared(..)) => Err(LangError::new(
                    pos,
                    format!("shared array `{name}` used without an index"),
                )),
                None => Err(LangError::new(pos, format!("unknown identifier `{name}`"))),
            },
            Expr::Special(base, axis) => {
                if !self.in_kernel {
                    return Err(LangError::new(
                        pos,
                        "thread specials are not allowed in __device__ functions",
                    ));
                }
                use ir::Special as Sp;
                let special = match (base.as_str(), axis) {
                    ("threadIdx", 'x') => Sp::ThreadIdX,
                    ("threadIdx", 'y') => Sp::ThreadIdY,
                    ("blockIdx", 'x') => Sp::BlockIdX,
                    ("blockIdx", 'y') => Sp::BlockIdY,
                    ("blockDim", 'x') => Sp::BlockDimX,
                    ("blockDim", 'y') => Sp::BlockDimY,
                    ("gridDim", 'x') => Sp::GridDimX,
                    ("gridDim", 'y') => Sp::GridDimY,
                    _ => return Err(LangError::new(pos, "unknown special")),
                };
                Ok((IrExpr::Special(special), SrcTy::Int))
            }
            Expr::Unary(op, a) => {
                let (ea, ta) = self.expr(a, pos)?;
                match *op {
                    "-" => {
                        if ta == SrcTy::Bool {
                            return Err(LangError::new(pos, "cannot negate a bool"));
                        }
                        Ok((-ea, ta))
                    }
                    "!" => {
                        if ta != SrcTy::Bool {
                            return Err(LangError::new(pos, "`!` needs a bool operand"));
                        }
                        Ok((!ea, ta))
                    }
                    "~" => {
                        if !matches!(ta, SrcTy::Int | SrcTy::Uint) {
                            return Err(LangError::new(pos, "`~` needs an integer operand"));
                        }
                        Ok((!ea, ta))
                    }
                    _ => unreachable!("parser produces only -, !, ~"),
                }
            }
            Expr::Binary(op, a, b) => {
                let ea = self.expr(a, pos)?;
                let eb = self.expr(b, pos)?;
                self.binary(op, ea, eb, pos)
            }
            Expr::Ternary(c, t, f) => {
                let (ec, tc) = self.expr(c, pos)?;
                if tc != SrcTy::Bool {
                    return Err(LangError::new(pos, "ternary condition must be bool"));
                }
                let et = self.expr(t, pos)?;
                let ef = self.expr(f, pos)?;
                let (et, ef, ty) = self.promote(et, ef, pos)?;
                Ok((ec.select(et, ef), ty))
            }
            Expr::Cast(ty, a) => {
                let (ea, _) = self.expr(a, pos)?;
                Ok((IrExpr::Cast(ir_ty(*ty), Box::new(ea)), *ty))
            }
            Expr::Index(base, idx) => {
                let (mem, elem_ty) = self.mem_ref(base, pos)?;
                let (ei, ti) = self.expr(idx, pos)?;
                let ei = match ti {
                    SrcTy::Int => ei,
                    SrcTy::Uint => IrExpr::Cast(ir::Ty::I32, Box::new(ei)),
                    _ => return Err(LangError::new(pos, "array index must be an integer")),
                };
                Ok((
                    IrExpr::Load {
                        mem,
                        index: Box::new(ei),
                    },
                    elem_ty,
                ))
            }
            Expr::Call(name, args) => self.call(name, args, pos),
        }
    }

    fn binary(
        &mut self,
        op: &str,
        a: (IrExpr, SrcTy),
        b: (IrExpr, SrcTy),
        pos: Pos,
    ) -> Result<(IrExpr, SrcTy), LangError> {
        use ir::BinOp;
        match op {
            "+" | "-" | "*" | "/" | "%" => {
                let (ea, eb, ty) = self.promote(a, b, pos)?;
                if ty == SrcTy::Bool {
                    return Err(LangError::new(pos, "arithmetic on bool"));
                }
                let bin = match op {
                    "+" => BinOp::Add,
                    "-" => BinOp::Sub,
                    "*" => BinOp::Mul,
                    "/" => BinOp::Div,
                    _ => BinOp::Rem,
                };
                Ok((IrExpr::Binary(bin, Box::new(ea), Box::new(eb)), ty))
            }
            "<" | "<=" | ">" | ">=" | "==" | "!=" => {
                let (ea, eb, _) = self.promote(a, b, pos)?;
                let e = match op {
                    "<" => ea.lt(eb),
                    "<=" => ea.le(eb),
                    ">" => ea.gt(eb),
                    ">=" => ea.ge(eb),
                    "==" => ea.eq_(eb),
                    _ => ea.ne_(eb),
                };
                Ok((e, SrcTy::Bool))
            }
            "&&" | "||" => {
                if a.1 != SrcTy::Bool || b.1 != SrcTy::Bool {
                    return Err(LangError::new(pos, "logical operators need bool operands"));
                }
                let e = if op == "&&" { a.0 & b.0 } else { a.0 | b.0 };
                Ok((e, SrcTy::Bool))
            }
            "&" | "|" | "^" => {
                let (ea, eb, ty) = self.promote(a, b, pos)?;
                if ty == SrcTy::Float {
                    return Err(LangError::new(
                        pos,
                        "bitwise operators need integer operands",
                    ));
                }
                let e = match op {
                    "&" => ea & eb,
                    "|" => ea | eb,
                    _ => ea ^ eb,
                };
                Ok((e, ty))
            }
            "<<" | ">>" => {
                let (ea, eb, ty) = self.promote(a, b, pos)?;
                if !matches!(ty, SrcTy::Int | SrcTy::Uint) {
                    return Err(LangError::new(pos, "shifts need integer operands"));
                }
                let e = if op == "<<" { ea << eb } else { ea >> eb };
                Ok((e, ty))
            }
            other => Err(LangError::new(
                pos,
                format!("unsupported operator `{other}`"),
            )),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], pos: Pos) -> Result<(IrExpr, SrcTy), LangError> {
        use ir::UnOp;
        // Unary float builtins.
        let unary = |op: UnOp| -> Option<UnOp> { Some(op) };
        let builtin_unary = match name {
            "expf" | "exp" => unary(UnOp::Exp),
            "logf" | "log" => unary(UnOp::Log),
            "sqrtf" | "sqrt" => unary(UnOp::Sqrt),
            "rsqrtf" | "rsqrt" => unary(UnOp::Rsqrt),
            "sinf" | "sin" => unary(UnOp::Sin),
            "cosf" | "cos" => unary(UnOp::Cos),
            "fabsf" | "fabs" | "abs" => unary(UnOp::Abs),
            "floorf" | "floor" => unary(UnOp::Floor),
            _ => None,
        };
        if let Some(op) = builtin_unary {
            if args.len() != 1 {
                return Err(LangError::new(pos, format!("`{name}` takes one argument")));
            }
            let (ea, ta) = self.expr(&args[0], pos)?;
            // `abs` keeps integer type; the float builtins require floats.
            if name == "abs" || (name.starts_with("fabs") && ta != SrcTy::Float) {
                if !matches!(ta, SrcTy::Int | SrcTy::Float) {
                    return Err(LangError::new(pos, "`abs` needs a numeric argument"));
                }
                return Ok((IrExpr::Unary(UnOp::Abs, Box::new(ea)), ta));
            }
            let ea = self.coerce(ea, ta, SrcTy::Float, pos)?;
            return Ok((IrExpr::Unary(op, Box::new(ea)), SrcTy::Float));
        }
        // Binary builtins.
        if matches!(name, "fminf" | "fmaxf" | "min" | "max" | "powf" | "pow") {
            if args.len() != 2 {
                return Err(LangError::new(pos, format!("`{name}` takes two arguments")));
            }
            let ea = self.expr(&args[0], pos)?;
            let eb = self.expr(&args[1], pos)?;
            let (ea, eb, mut ty) = self.promote(ea, eb, pos)?;
            let (mut ea, mut eb) = (ea, eb);
            if name.starts_with('f') || name.starts_with("pow") {
                ea = self.coerce(ea, ty, SrcTy::Float, pos)?;
                eb = self.coerce(eb, ty, SrcTy::Float, pos)?;
                ty = SrcTy::Float;
            }
            let e = match name {
                "fminf" | "min" => ea.min(eb),
                "fmaxf" | "max" => ea.max(eb),
                _ => ea.pow(eb),
            };
            return Ok((e, ty));
        }
        // User device function.
        let Some(&(func_id, decl_idx)) = self.func_ids.get(name) else {
            return Err(LangError::new(pos, format!("unknown function `{name}`")));
        };
        let decl = &self.unit.functions[decl_idx];
        if args.len() != decl.params.len() {
            return Err(LangError::new(
                pos,
                format!(
                    "`{name}` takes {} arguments, {} given",
                    decl.params.len(),
                    args.len()
                ),
            ));
        }
        let mut lowered = Vec::with_capacity(args.len());
        for (arg, param) in args.iter().zip(&decl.params) {
            let (ea, ta) = self.expr(arg, pos)?;
            lowered.push(self.coerce(ea, ta, param.ty, pos)?);
        }
        Ok((
            IrExpr::Call {
                func: func_id,
                args: lowered,
            },
            decl.ret,
        ))
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self, stmts: &[Stmt], out: &mut Vec<ir::Stmt>) -> Result<(), LangError> {
        let scope_mark = self.scope.len();
        for stmt in stmts {
            self.stmt(stmt, out)?;
        }
        self.scope.truncate(scope_mark);
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, out: &mut Vec<ir::Stmt>) -> Result<(), LangError> {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let (e, te) = self.expr(&init.expr, init.pos)?;
                let e = self.coerce(e, te, *ty, init.pos)?;
                let var = self.declare_local(name, *ty);
                out.push(ir::Stmt::Let { var, init: e });
                Ok(())
            }
            Stmt::Assign { name, op, value } => {
                let (var, ty) = match self.lookup(name) {
                    Some(Sym::Local(v, t)) => (v, t),
                    Some(_) => {
                        return Err(LangError::new(
                            value.pos,
                            format!("cannot assign to `{name}` (not a local variable)"),
                        ))
                    }
                    None => {
                        return Err(LangError::new(
                            value.pos,
                            format!("unknown variable `{name}`"),
                        ))
                    }
                };
                let (e, te) = self.expr(&value.expr, value.pos)?;
                let rhs = if op.is_empty() {
                    self.coerce(e, te, ty, value.pos)?
                } else {
                    let (combined, tc) =
                        self.binary(op, (IrExpr::Var(var), ty), (e, te), value.pos)?;
                    self.coerce(combined, tc, ty, value.pos)?
                };
                out.push(ir::Stmt::Assign { var, value: rhs });
                Ok(())
            }
            Stmt::Store { base, index, value } => {
                let (mem, elem_ty) = self.mem_ref(base, index.pos)?;
                let (ei, ti) = self.expr(&index.expr, index.pos)?;
                let ei = match ti {
                    SrcTy::Int => ei,
                    SrcTy::Uint => IrExpr::Cast(ir::Ty::I32, Box::new(ei)),
                    _ => return Err(LangError::new(index.pos, "array index must be an integer")),
                };
                let (ev, tv) = self.expr(&value.expr, value.pos)?;
                let ev = self.coerce(ev, tv, elem_ty, value.pos)?;
                out.push(ir::Stmt::Store {
                    mem,
                    index: ei,
                    value: ev,
                });
                Ok(())
            }
            Stmt::Atomic {
                name,
                base,
                index,
                value,
                pos,
            } => {
                let op = match name.as_str() {
                    "atomicAdd" => ir::AtomicOp::Add,
                    "atomicMin" => ir::AtomicOp::Min,
                    "atomicMax" => ir::AtomicOp::Max,
                    "atomicInc" => ir::AtomicOp::Inc,
                    "atomicAnd" => ir::AtomicOp::And,
                    "atomicOr" => ir::AtomicOp::Or,
                    "atomicXor" => ir::AtomicOp::Xor,
                    other => return Err(LangError::new(*pos, format!("unknown atomic `{other}`"))),
                };
                let (mem, elem_ty) = self.mem_ref(base, *pos)?;
                let (ei, ti) = self.expr(&index.expr, index.pos)?;
                let ei = match ti {
                    SrcTy::Int => ei,
                    SrcTy::Uint => IrExpr::Cast(ir::Ty::I32, Box::new(ei)),
                    _ => return Err(LangError::new(index.pos, "array index must be an integer")),
                };
                let (ev, tv) = self.expr(&value.expr, value.pos)?;
                let ev = self.coerce(ev, tv, elem_ty, value.pos)?;
                out.push(ir::Stmt::Atomic {
                    op,
                    mem,
                    index: ei,
                    value: ev,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (ec, tc) = self.expr(&cond.expr, cond.pos)?;
                if tc != SrcTy::Bool {
                    return Err(LangError::new(cond.pos, "if condition must be bool"));
                }
                let mut then_ir = Vec::new();
                self.block(then_body, &mut then_ir)?;
                let mut else_ir = Vec::new();
                self.block(else_body, &mut else_ir)?;
                out.push(ir::Stmt::If {
                    cond: ec,
                    then_body: then_ir,
                    else_body: else_ir,
                });
                Ok(())
            }
            Stmt::For {
                var,
                init,
                cmp,
                bound,
                update,
                amount,
                body,
            } => {
                let (ei, ti) = self.expr(&init.expr, init.pos)?;
                let ei = self.coerce(ei, ti, SrcTy::Int, init.pos)?;
                let (eb, tb) = self.expr(&bound.expr, bound.pos)?;
                let eb = self.coerce(eb, tb, SrcTy::Int, bound.pos)?;
                let (ea, ta) = self.expr(&amount.expr, amount.pos)?;
                let ea = self.coerce(ea, ta, SrcTy::Int, amount.pos)?;
                let scope_mark = self.scope.len();
                let loop_var = self.declare_local(var, SrcTy::Int);
                let cond = match cmp.as_str() {
                    "<" => ir::LoopCond::Lt(eb),
                    "<=" => ir::LoopCond::Le(eb),
                    ">" => ir::LoopCond::Gt(eb),
                    _ => ir::LoopCond::Ge(eb),
                };
                let step = match update.as_str() {
                    "+=" => ir::LoopStep::Add(ea),
                    "-=" => ir::LoopStep::Sub(ea),
                    "*=" => ir::LoopStep::Mul(ea),
                    "<<=" => ir::LoopStep::Shl(ea),
                    _ => ir::LoopStep::Shr(ea),
                };
                let mut body_ir = Vec::new();
                self.block(body, &mut body_ir)?;
                self.scope.truncate(scope_mark);
                out.push(ir::Stmt::For {
                    var: loop_var,
                    init: ei,
                    cond,
                    step,
                    body: body_ir,
                });
                Ok(())
            }
            Stmt::Sync => {
                if !self.in_kernel {
                    return Err(LangError::new(
                        Pos { line: 0, col: 0 },
                        "__syncthreads() is not allowed in __device__ functions",
                    ));
                }
                out.push(ir::Stmt::Sync);
                Ok(())
            }
            Stmt::Return(e) => {
                let (ee, _) = self.expr(&e.expr, e.pos)?;
                out.push(ir::Stmt::Return(ee));
                Ok(())
            }
        }
    }
}

fn lower_function(
    f: &DeviceFn,
    unit: &Unit,
    func_ids: &HashMap<String, (ir::FuncId, usize)>,
) -> Result<ir::Func, LangError> {
    let mut lowerer = Lowerer {
        unit,
        func_ids,
        scope: Vec::new(),
        locals: Vec::new(),
        in_kernel: false,
    };
    let mut params = Vec::new();
    for (i, p) in f.params.iter().enumerate() {
        if p.is_pointer {
            return Err(LangError::new(
                f.pos,
                "__device__ functions take scalar parameters only",
            ));
        }
        params.push(ir::Param::Scalar {
            name: p.name.clone(),
            ty: ir_ty(p.ty),
        });
        lowerer
            .scope
            .push((p.name.clone(), Sym::ScalarParam(i, p.ty)));
    }
    let mut body = Vec::new();
    lowerer.block(&f.body, &mut body)?;
    Ok(ir::Func {
        name: f.name.clone(),
        params,
        ret: ir_ty(f.ret),
        locals: lowerer.locals,
        body,
    })
}

fn lower_kernel(
    k: &KernelFn,
    unit: &Unit,
    func_ids: &HashMap<String, (ir::FuncId, usize)>,
) -> Result<ir::Kernel, LangError> {
    let mut lowerer = Lowerer {
        unit,
        func_ids,
        scope: Vec::new(),
        locals: Vec::new(),
        in_kernel: true,
    };
    let mut params = Vec::new();
    for (i, p) in k.params.iter().enumerate() {
        if p.is_pointer {
            params.push(ir::Param::Buffer {
                name: p.name.clone(),
                ty: ir_ty(p.ty),
                space: if p.is_constant {
                    ir::MemSpace::Constant
                } else {
                    ir::MemSpace::Global
                },
            });
            lowerer
                .scope
                .push((p.name.clone(), Sym::BufferParam(i, p.ty)));
        } else {
            params.push(ir::Param::Scalar {
                name: p.name.clone(),
                ty: ir_ty(p.ty),
            });
            lowerer
                .scope
                .push((p.name.clone(), Sym::ScalarParam(i, p.ty)));
        }
    }
    let mut shared = Vec::new();
    for (s_idx, s) in k.shared.iter().enumerate() {
        shared.push(ir::SharedDecl {
            name: s.name.clone(),
            ty: ir_ty(s.ty),
            len: s.len,
        });
        lowerer.scope.push((
            s.name.clone(),
            Sym::Shared(ir::SharedId(s_idx as u32), s.ty),
        ));
    }
    let mut body = Vec::new();
    lowerer.block(&k.body, &mut body)?;
    Ok(ir::Kernel {
        name: k.name.clone(),
        params,
        shared,
        locals: lowerer.locals,
        body,
    })
}
