//! Tokenizer for the kernel dialect.

use crate::error::{LangError, Pos};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (a `.`, exponent, or `f` suffix present).
    Float(f32),
    /// Punctuation / operator, e.g. `+`, `<<=`, `&&`.
    Punct(&'static str),
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Position of the first character.
    pub pos: Pos,
}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "|=", "&=", "^=", "++", "--", "?", ":", ";", ",", ".", "(", ")", "{", "}", "[", "]", "+", "-",
    "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
];

/// Tokenize `source`.
///
/// # Errors
///
/// Fails on unknown characters or malformed numeric literals.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let advance = |c: char, line: &mut u32, col: &mut u32| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };
    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        // Whitespace.
        if c.is_whitespace() {
            advance(c, &mut line, &mut col);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            col += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            if i + 1 >= bytes.len() {
                return Err(LangError::new(pos, "unterminated block comment"));
            }
            i += 2;
            col += 2;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            out.push(Token {
                tok: Tok::Ident(text),
                pos,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-') && matches!(bytes[i - 1], 'e' | 'E')))
            {
                if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                    is_float = true;
                }
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            let mut text: String = bytes[start..i].iter().collect();
            // Optional `f` suffix marks a float.
            if i < bytes.len() && (bytes[i] == 'f' || bytes[i] == 'F') {
                is_float = true;
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            // Optional `u` suffix is accepted and ignored (uint literal).
            if !is_float && i < bytes.len() && (bytes[i] == 'u' || bytes[i] == 'U') {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            if is_float {
                if text.ends_with('.') {
                    text.push('0');
                }
                let value: f32 = text
                    .parse()
                    .map_err(|_| LangError::new(pos, format!("bad float literal `{text}`")))?;
                out.push(Token {
                    tok: Tok::Float(value),
                    pos,
                });
            } else {
                let value: i64 = text
                    .parse()
                    .map_err(|_| LangError::new(pos, format!("bad integer literal `{text}`")))?;
                out.push(Token {
                    tok: Tok::Int(value),
                    pos,
                });
            }
            continue;
        }
        // Punctuation.
        let rest: String = bytes[i..(i + 3).min(bytes.len())].iter().collect();
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                out.push(Token {
                    tok: Tok::Punct(p),
                    pos,
                });
                for _ in 0..p.len() {
                    advance(bytes[i], &mut line, &mut col);
                    i += 1;
                }
            }
            None => {
                return Err(LangError::new(pos, format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn identifiers_numbers_punct() {
        assert_eq!(
            kinds("x1 = 42 + 3.5f;"),
            vec![
                Tok::Ident("x1".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct("+"),
                Tok::Float(3.5),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn multi_char_operators_are_greedy() {
        assert_eq!(
            kinds("a <<= 1; b >>= 2; c == d; e != f;"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Int(1),
                Tok::Punct(";"),
                Tok::Ident("b".into()),
                Tok::Punct(">>="),
                Tok::Int(2),
                Tok::Punct(";"),
                Tok::Ident("c".into()),
                Tok::Punct("=="),
                Tok::Ident("d".into()),
                Tok::Punct(";"),
                Tok::Ident("e".into()),
                Tok::Punct("!="),
                Tok::Ident("f".into()),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line comment\n /* block \n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn float_forms() {
        assert_eq!(kinds("1.0"), vec![Tok::Float(1.0)]);
        assert_eq!(kinds("2f"), vec![Tok::Float(2.0)]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(kinds("1.5e-2"), vec![Tok::Float(0.015)]);
        assert_eq!(kinds("7"), vec![Tok::Int(7)]);
        assert_eq!(kinds("7u"), vec![Tok::Int(7)]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_reported() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn unterminated_comment_reported() {
        assert!(lex("/* nope").is_err());
    }
}
