//! A CUDA-flavored source frontend for the kernel IR.
//!
//! Paraprox consumes CUDA/OpenCL source through Clang; this crate plays
//! that role for the reproduction. It parses a compact C dialect — enough
//! to express every benchmark in the paper — and lowers it to
//! [`paraprox_ir::Program`], after which detection, rewriting, and tuning
//! proceed exactly as for builder-constructed kernels.
//!
//! # Supported language
//!
//! ```cuda
//! __device__ float square(float x) {
//!     return x * x;
//! }
//!
//! __global__ void scale(float* data, float k, int n) {
//!     int gid = blockIdx.x * blockDim.x + threadIdx.x;
//!     if (gid < n) {
//!         data[gid] = square(data[gid]) * k;
//!     }
//! }
//! ```
//!
//! * Types: `float`, `int`, `uint`, `bool`; pointer parameters are device
//!   buffers (`__constant__ float*` places the buffer in constant memory).
//! * `__shared__ float tile[256];` declarations at kernel scope.
//! * Statements: declarations, (compound) assignments, array stores,
//!   `if`/`else`, canonical `for` loops, `__syncthreads()`, `return`,
//!   and `atomicAdd/Min/Max/And/Or/Xor(&buf[idx], v)`.
//! * Expressions: the usual C operator precedence including the ternary
//!   conditional, casts, and the math builtins `expf`, `logf`, `sqrtf`,
//!   `rsqrtf`, `sinf`, `cosf`, `fabsf`, `floorf`, `fminf`, `fmaxf`,
//!   `powf`, plus `min`/`max` on integers.
//! * Specials: `threadIdx`, `blockIdx`, `blockDim`, `gridDim` (`.x`/`.y`).
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     __global__ void double_all(float* data, int n) {
//!         int gid = blockIdx.x * blockDim.x + threadIdx.x;
//!         if (gid < n) { data[gid] = data[gid] * 2.0f; }
//!     }
//! "#;
//! let program = paraprox_lang::parse_program(src)?;
//! assert_eq!(program.kernel_count(), 1);
//! # Ok::<(), paraprox_lang::LangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use error::LangError;

/// Parse and lower a source string into an IR program.
///
/// # Errors
///
/// Returns a [`LangError`] carrying the line/column of the first syntax or
/// lowering problem.
pub fn parse_program(source: &str) -> Result<paraprox_ir::Program, LangError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    lower::lower(&unit)
}
