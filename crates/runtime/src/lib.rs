//! The tuning runtime: choose and monitor approximate kernels.
//!
//! Paraprox generates approximate kernels and tuning knobs; a Green/SAGE
//! style runtime (paper §2, Figure 2) then:
//!
//! 1. **profiles** every candidate on training inputs,
//! 2. **selects** the fastest candidate whose measured output quality meets
//!    the user's target output quality (TOQ),
//! 3. in deployment, **checks** quality every N-th served request (the
//!    paper cites 40–50 as keeping overhead under 5%, §5) and **backs
//!    off** to a less aggressive candidate — ultimately exact execution —
//!    whenever the TOQ is violated; with re-promotion enabled
//!    ([`DeploymentConfig::promote_after`]) a configurable streak of clean
//!    checks climbs back up the ladder, so a long-running deployment
//!    recovers once a quality drift passes.
//!
//! The runtime is deliberately independent of the simulator: anything that
//! implements [`Approximable`] can be tuned, which also makes the policy
//! directly testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub use paraprox_quality::Toq;

/// Error type for runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError(pub String);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl Error for RuntimeError {}

/// The observable result of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Flattened output values.
    pub output: Vec<f64>,
    /// Simulated cost in device cycles.
    pub cycles: u64,
}

/// An application with one exact implementation and a set of approximate
/// variants, runnable on seeded inputs.
pub trait Approximable {
    /// Number of approximate variants.
    fn variant_count(&self) -> usize;

    /// Human-readable label of variant `index`.
    ///
    /// # Panics
    ///
    /// May panic when `index` is out of range.
    fn variant_label(&self, index: usize) -> String;

    /// Run the exact implementation on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError>;

    /// Run approximate variant `index` on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError>;

    /// Output quality (%) of `approx` relative to `exact`.
    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64;
}

/// Profiling results for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateProfile {
    /// Variant index.
    pub index: usize,
    /// Variant label.
    pub label: String,
    /// Mean output quality (%) over the training seeds.
    pub mean_quality: f64,
    /// Worst output quality (%) over the training seeds.
    pub min_quality: f64,
    /// Mean speedup over exact execution (cycles ratio).
    pub speedup: f64,
    /// Whether the candidate met the TOQ on every training input.
    pub meets_toq: bool,
}

/// The outcome of a tuning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Per-candidate profiles, in variant order.
    pub profiles: Vec<CandidateProfile>,
    /// The selected variant (fastest meeting the TOQ), or `None` when no
    /// candidate qualifies and exact execution should be used.
    pub chosen: Option<usize>,
    /// Mean exact cycles over the training seeds (the speedup baseline).
    pub exact_cycles: f64,
}

impl TuneReport {
    /// Speedup of the chosen candidate (1.0 when falling back to exact).
    pub fn chosen_speedup(&self) -> f64 {
        self.chosen
            .and_then(|i| self.profiles.iter().find(|p| p.index == i))
            .map(|p| p.speedup)
            .unwrap_or(1.0)
    }

    /// Quality of the chosen candidate (100.0 when falling back to exact).
    pub fn chosen_quality(&self) -> f64 {
        self.chosen
            .and_then(|i| self.profiles.iter().find(|p| p.index == i))
            .map(|p| p.mean_quality)
            .unwrap_or(100.0)
    }

    /// The back-off ladder used by [`Deployment`]: qualifying candidates
    /// (meeting the TOQ *and* faster than exact) ordered most-aggressive
    /// (fastest) first, terminated by the exact kernel.
    ///
    /// The terminal [`Rung::Exact`] is always present, so the ladder is
    /// never empty: with no candidates at all, or with every candidate
    /// below the TOQ, the ladder is exactly `[Rung::Exact]` and a
    /// deployment built from it serves exact execution from the first
    /// request.
    pub fn backoff_ladder(&self) -> Vec<Rung> {
        let mut qualifying: Vec<&CandidateProfile> = self
            .profiles
            .iter()
            .filter(|p| p.meets_toq && p.speedup > 1.0)
            .collect();
        qualifying.sort_by(|a, b| {
            b.speedup
                .partial_cmp(&a.speedup)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut ladder: Vec<Rung> = qualifying.iter().map(|p| Rung::Variant(p.index)).collect();
        ladder.push(Rung::Exact);
        ladder
    }
}

/// One rung of the back-off ladder: an approximate variant, or the exact
/// kernel (always the terminal rung).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Approximate variant by index.
    Variant(usize),
    /// Exact execution — the ladder's terminal rung.
    Exact,
}

impl Rung {
    /// The variant index, or `None` for exact execution.
    pub fn variant(self) -> Option<usize> {
        match self {
            Rung::Variant(i) => Some(i),
            Rung::Exact => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::Variant(i) => write!(f, "v{i}"),
            Rung::Exact => write!(f, "exact"),
        }
    }
}

/// The offline/training-phase tuner.
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Target output quality.
    pub toq: Toq,
    /// Seeds of the training inputs (the paper uses 10 training runs).
    pub training_seeds: Vec<u64>,
}

impl Tuner {
    /// A tuner with the paper's defaults: TOQ = 90%, 10 training inputs.
    pub fn paper_default() -> Tuner {
        Tuner {
            toq: Toq::paper_default(),
            training_seeds: (0..10).collect(),
        }
    }

    /// Profile every variant and select the fastest one meeting the TOQ.
    ///
    /// # Errors
    ///
    /// Propagates execution failures from the application. A variant that
    /// fails to execute is treated as non-qualifying rather than aborting
    /// the tune.
    pub fn tune(&self, app: &mut dyn Approximable) -> Result<TuneReport, RuntimeError> {
        if self.training_seeds.is_empty() {
            return Err(RuntimeError("no training seeds".to_string()));
        }
        let mut exact_runs = Vec::with_capacity(self.training_seeds.len());
        for &seed in &self.training_seeds {
            exact_runs.push(app.run_exact(seed)?);
        }
        let exact_cycles =
            exact_runs.iter().map(|r| r.cycles as f64).sum::<f64>() / exact_runs.len() as f64;

        let mut profiles = Vec::with_capacity(app.variant_count());
        for index in 0..app.variant_count() {
            let label = app.variant_label(index);
            let mut qualities = Vec::new();
            let mut cycles = Vec::new();
            let mut failed = false;
            for (&seed, exact) in self.training_seeds.iter().zip(&exact_runs) {
                match app.run_variant(index, seed) {
                    Ok(run) => {
                        qualities.push(app.quality(&exact.output, &run.output));
                        cycles.push(run.cycles as f64);
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            let profile = if failed || qualities.is_empty() {
                CandidateProfile {
                    index,
                    label,
                    mean_quality: 0.0,
                    min_quality: 0.0,
                    speedup: 0.0,
                    meets_toq: false,
                }
            } else {
                let mean_quality = qualities.iter().sum::<f64>() / qualities.len() as f64;
                let min_quality = qualities.iter().cloned().fold(f64::INFINITY, f64::min);
                let mean_cycles = cycles.iter().sum::<f64>() / cycles.len() as f64;
                let speedup = exact_cycles / mean_cycles.max(1.0);
                CandidateProfile {
                    index,
                    label,
                    mean_quality,
                    min_quality,
                    speedup,
                    meets_toq: qualities.iter().all(|&q| self.toq.is_met(q)),
                }
            };
            profiles.push(profile);
        }
        let chosen = profiles
            .iter()
            .filter(|p| p.meets_toq && p.speedup > 1.0)
            .max_by(|a, b| {
                a.speedup
                    .partial_cmp(&b.speedup)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| p.index);
        Ok(TuneReport {
            profiles,
            chosen,
            exact_cycles,
        })
    }
}

/// Result of one deployed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeResult {
    /// The produced output.
    pub output: Vec<f64>,
    /// Cycles spent on the approximate (or exact) execution.
    pub cycles: u64,
    /// The variant used (`None` = exact).
    pub variant: Option<usize>,
    /// Measured quality when this invocation was a calibration check (or a
    /// shadow probe of the promotion candidate while serving exact).
    pub checked_quality: Option<f64>,
    /// Whether this invocation triggered a back-off.
    pub backed_off: bool,
    /// Whether this invocation triggered a re-promotion up the ladder.
    pub promoted: bool,
}

/// Deployed-mode policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentConfig {
    /// Target output quality enforced by the watchdog.
    pub toq: Toq,
    /// Calibration cadence: every `check_every`-th served request is
    /// checked against exact execution. The paper's §5 cites checks every
    /// 40–50 invocations costing under 5%. Clamped to at least 1.
    pub check_every: u64,
    /// Number of *consecutive* clean checks at the current rung required
    /// before re-promoting one rung up the ladder (hysteresis so variants
    /// do not flap). `0` disables re-promotion: the deployment only ever
    /// walks down, the pre-serving behaviour.
    pub promote_after: u64,
}

impl DeploymentConfig {
    /// Back-off-only policy (no re-promotion), the paper's §5 loop.
    pub fn backoff_only(toq: Toq, check_every: u64) -> DeploymentConfig {
        DeploymentConfig {
            toq,
            check_every,
            promote_after: 0,
        }
    }
}

/// Deployed-mode execution: run the chosen kernel, periodically verify
/// quality, back off on TOQ violations, and (when configured) re-promote
/// after a clean streak.
#[derive(Debug, Clone)]
pub struct Deployment {
    config: DeploymentConfig,
    ladder: Vec<Rung>,
    /// Index into `ladder`; the last rung is always [`Rung::Exact`].
    position: usize,
    invocations: u64,
    /// Served requests since the last calibration check.
    since_check: u64,
    checks: u64,
    violations: u64,
    promotions: u64,
    clean_streak: u64,
}

impl Deployment {
    /// Create a back-off-only deployment from a tune report (no
    /// re-promotion; see [`Deployment::with_config`]).
    ///
    /// `check_every` controls calibration frequency; the paper's §5 cites
    /// checks every 40–50 invocations costing under 5%.
    pub fn new(report: &TuneReport, toq: Toq, check_every: u64) -> Deployment {
        Deployment::with_config(report, DeploymentConfig::backoff_only(toq, check_every))
    }

    /// Create a deployment with an explicit policy, including re-promotion
    /// hysteresis for long-running (serving) use.
    pub fn with_config(report: &TuneReport, config: DeploymentConfig) -> Deployment {
        Deployment {
            config: DeploymentConfig {
                check_every: config.check_every.max(1),
                ..config
            },
            ladder: report.backoff_ladder(),
            position: 0,
            invocations: 0,
            since_check: 0,
            checks: 0,
            violations: 0,
            promotions: 0,
            clean_streak: 0,
        }
    }

    /// The variant the next invocation will use (`None` = exact).
    pub fn current_variant(&self) -> Option<usize> {
        self.ladder[self.position].variant()
    }

    /// The full back-off ladder (terminal rung is always [`Rung::Exact`]).
    pub fn ladder(&self) -> &[Rung] {
        &self.ladder
    }

    /// Current position in the ladder (0 = most aggressive).
    pub fn position(&self) -> usize {
        self.position
    }

    /// The policy this deployment runs under.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// Number of served invocations so far. Calibration re-executions
    /// (the exact run of a check, the variant run of a shadow probe) are
    /// *not* counted: they are overhead, not served requests.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Number of calibration checks (including shadow probes) performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of checks that violated the TOQ.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of re-promotions up the ladder.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Consecutive clean checks at the current rung.
    pub fn clean_streak(&self) -> u64 {
        self.clean_streak
    }

    fn promotion_enabled(&self) -> bool {
        self.config.promote_after > 0
    }

    /// Register a clean check; promote when the streak reaches the
    /// configured hysteresis threshold. Returns whether a promotion fired.
    fn record_clean(&mut self) -> bool {
        self.clean_streak += 1;
        if self.promotion_enabled()
            && self.position > 0
            && self.clean_streak >= self.config.promote_after
        {
            self.position -= 1;
            self.promotions += 1;
            self.clean_streak = 0;
            return true;
        }
        false
    }

    /// Execute one invocation on the input derived from `seed`.
    ///
    /// Every `check_every`-th *served* request is a calibration check:
    /// while serving an approximate variant, the same input is re-run
    /// exactly and the measured quality drives back-off (on violation) or
    /// the clean streak (toward re-promotion). While serving exact with a
    /// non-trivial ladder and re-promotion enabled, the check instead
    /// *shadow-probes* the next-better rung: the candidate variant runs on
    /// the same input (the exact output is still the one served) and its
    /// quality feeds the same clean-streak hysteresis.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn invoke(
        &mut self,
        app: &mut dyn Approximable,
        seed: u64,
    ) -> Result<InvokeResult, RuntimeError> {
        self.invocations += 1;
        self.since_check += 1;
        let variant = self.current_variant();
        let run = match variant {
            Some(v) => app.run_variant(v, seed)?,
            None => app.run_exact(seed)?,
        };
        let mut checked_quality = None;
        let mut backed_off = false;
        let mut promoted = false;
        if self.since_check >= self.config.check_every {
            self.since_check = 0;
            match variant {
                Some(_) => {
                    // Calibration check of the served variant.
                    self.checks += 1;
                    let exact = app.run_exact(seed)?;
                    let q = app.quality(&exact.output, &run.output);
                    checked_quality = Some(q);
                    if self.config.toq.is_met(q) {
                        promoted = self.record_clean();
                    } else {
                        self.violations += 1;
                        // The terminal rung is Exact, so this never walks
                        // past the end: variant.is_some() implies
                        // position < ladder.len() - 1.
                        self.position += 1;
                        backed_off = true;
                        self.clean_streak = 0;
                    }
                }
                None if self.promotion_enabled() && self.position > 0 => {
                    // Serving exact: shadow-probe the next-better rung so
                    // the deployment can climb back once quality recovers.
                    self.checks += 1;
                    let Rung::Variant(candidate) = self.ladder[self.position - 1] else {
                        unreachable!("only the terminal rung is exact")
                    };
                    let probe = app.run_variant(candidate, seed)?;
                    let q = app.quality(&run.output, &probe.output);
                    checked_quality = Some(q);
                    if self.config.toq.is_met(q) {
                        promoted = self.record_clean();
                    } else {
                        self.violations += 1;
                        self.clean_streak = 0;
                    }
                }
                None => {}
            }
        }
        Ok(InvokeResult {
            output: run.output,
            cycles: run.cycles,
            variant,
            checked_quality,
            backed_off,
            promoted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mock application whose variants have configurable (quality,
    /// cycles); quality can degrade over time (run-count based) or over a
    /// seed window (for deterministic drift-and-recovery scenarios) to
    /// exercise the watchdog.
    struct Mock {
        /// (quality, cycles) per variant.
        variants: Vec<(f64, u64)>,
        exact_cycles: u64,
        /// Quality drop applied after `drift_after` total runs.
        drift_after: Option<u64>,
        /// Quality drop applied to seeds inside this window.
        drift_seeds: Option<std::ops::Range<u64>>,
        runs: u64,
    }

    impl Mock {
        fn new(variants: Vec<(f64, u64)>) -> Mock {
            Mock {
                variants,
                exact_cycles: 1000,
                drift_after: None,
                drift_seeds: None,
                runs: 0,
            }
        }
    }

    impl Approximable for Mock {
        fn variant_count(&self) -> usize {
            self.variants.len()
        }
        fn variant_label(&self, index: usize) -> String {
            format!("variant{index}")
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.runs += 1;
            Ok(RunOutcome {
                output: vec![100.0],
                cycles: self.exact_cycles,
            })
        }
        fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.runs += 1;
            let (quality, cycles) = self.variants[index];
            let mut effective = quality;
            if matches!(self.drift_after, Some(t) if self.runs > t) {
                effective -= 20.0;
            }
            if matches!(&self.drift_seeds, Some(w) if w.contains(&seed)) {
                effective -= 20.0;
            }
            // Encode quality as the output error: quality() below recovers it.
            Ok(RunOutcome {
                output: vec![effective],
                cycles,
            })
        }
        fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
            approx[0]
        }
    }

    #[test]
    fn tuner_picks_fastest_qualifying_candidate() {
        // v0: high quality, modest speedup; v1: qualifying and faster;
        // v2: fastest but below TOQ.
        let mut app = Mock::new(vec![(99.0, 800), (95.0, 400), (70.0, 100)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, Some(1));
        assert!(report.profiles[2].speedup > report.profiles[1].speedup);
        assert!(!report.profiles[2].meets_toq);
        assert!((report.chosen_speedup() - 2.5).abs() < 1e-9);
        assert_eq!(report.chosen_quality(), 95.0);
    }

    #[test]
    fn tuner_falls_back_to_exact_when_nothing_qualifies() {
        let mut app = Mock::new(vec![(50.0, 100), (60.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, None);
        assert_eq!(report.chosen_speedup(), 1.0);
        assert_eq!(report.chosen_quality(), 100.0);
    }

    #[test]
    fn slower_than_exact_variants_are_not_chosen() {
        let mut app = Mock::new(vec![(99.0, 2000)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, None);
    }

    #[test]
    fn backoff_ladder_orders_by_speedup_and_terminates_in_exact() {
        let mut app = Mock::new(vec![(95.0, 800), (95.0, 200), (95.0, 400)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(
            report.backoff_ladder(),
            vec![
                Rung::Variant(1),
                Rung::Variant(2),
                Rung::Variant(0),
                Rung::Exact
            ]
        );
    }

    #[test]
    fn ladder_is_exact_only_for_empty_candidate_set() {
        let mut app = Mock::new(vec![]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![Rung::Exact]);
        // A deployment over the trivial ladder serves exact immediately and
        // never checks.
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        assert_eq!(deploy.current_variant(), None);
        for seed in 0..5 {
            let r = deploy.invoke(&mut app, seed).unwrap();
            assert_eq!(r.variant, None);
            assert!(r.checked_quality.is_none());
            assert!(!r.backed_off && !r.promoted);
        }
        assert_eq!(deploy.checks(), 0);
    }

    #[test]
    fn ladder_is_exact_only_when_every_candidate_is_below_toq() {
        let mut app = Mock::new(vec![(50.0, 100), (60.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![Rung::Exact]);
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        assert_eq!(deploy.current_variant(), None);
        assert!(deploy
            .invoke(&mut app, 0)
            .unwrap()
            .checked_quality
            .is_none());
    }

    #[test]
    fn ladder_excludes_qualifying_but_slower_than_exact_variants() {
        // 99% quality but 2x the exact cycles: meets the TOQ yet must not
        // appear on the ladder — backing off to it would serve a slower
        // *and* approximate kernel.
        let mut app = Mock::new(vec![(99.0, 2000), (95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![Rung::Variant(1), Rung::Exact]);
    }

    #[test]
    fn rung_accessors_and_display() {
        assert_eq!(Rung::Variant(3).variant(), Some(3));
        assert_eq!(Rung::Exact.variant(), None);
        assert_eq!(Rung::Variant(3).to_string(), "v3");
        assert_eq!(Rung::Exact.to_string(), "exact");
    }

    #[test]
    fn deployment_checks_periodically_and_backs_off_on_drift() {
        let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
        app.drift_after = Some(30);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, Some(0));
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 5);
        assert_eq!(deploy.current_variant(), Some(0));

        let mut backed_off_at = None;
        for i in 0..40 {
            let result = deploy.invoke(&mut app, i).unwrap();
            if result.backed_off {
                backed_off_at = Some(i);
                break;
            }
        }
        // Drift starts after 30 total runs; the next periodic check (every
        // 5th invocation) must catch it and back off to variant 1.
        assert!(backed_off_at.is_some(), "watchdog must catch the drift");
        assert_eq!(deploy.current_variant(), Some(1));
    }

    #[test]
    fn deployment_exhausts_ladder_to_exact() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_after = Some(0); // always drifted: checks always fail
        let report = {
            // Tune on a pristine copy so the variant qualifies.
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        let first = deploy.invoke(&mut app, 0).unwrap();
        assert_eq!(first.variant, Some(0));
        assert!(first.backed_off);
        let second = deploy.invoke(&mut app, 1).unwrap();
        assert_eq!(second.variant, None, "ladder exhausted -> exact");
        // Exact runs are never "checked".
        assert!(second.checked_quality.is_none());
    }

    #[test]
    fn check_cadence_respected() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 10);
        let mut checks = 0;
        for i in 0..50 {
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                checks += 1;
            }
        }
        assert_eq!(checks, 5);
    }

    #[test]
    fn check_cadence_counts_served_requests_not_calibration_reruns() {
        // Regression: "check every Nth" must mean every Nth *served*
        // request. The exact re-execution a check performs is calibration
        // overhead, not a served request, and must not advance the cadence
        // counter or the invocation count.
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let runs_after_tune = app.runs;
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 3);
        let mut check_invocations = Vec::new();
        for i in 1..=12u64 {
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                check_invocations.push(i);
            }
        }
        assert_eq!(check_invocations, vec![3, 6, 9, 12]);
        assert_eq!(deploy.invocations(), 12);
        assert_eq!(deploy.checks(), 4);
        // 12 served runs + 4 exact calibration re-runs.
        assert_eq!(app.runs - runs_after_tune, 12 + 4);
    }

    #[test]
    fn cadence_stays_aligned_across_backoff() {
        // Two qualifying variants; the first drifts over a seed window so a
        // check fails mid-stream. The checks must keep firing every 3rd
        // served request, unperturbed by the rung change.
        let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
        app.drift_seeds = Some(4..20);
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200), (96.0, 500)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        // Promotion enabled (with a threshold the stream never reaches) so
        // shadow probes keep firing on the same cadence once the ladder is
        // exhausted to exact.
        let mut deploy = Deployment::with_config(
            &report,
            DeploymentConfig {
                toq: Toq::paper_default(),
                check_every: 3,
                promote_after: 100,
            },
        );
        let mut check_invocations = Vec::new();
        for i in 1..=15u64 {
            // Seed == served-request index.
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                check_invocations.push(i);
            }
        }
        assert_eq!(check_invocations, vec![3, 6, 9, 12, 15]);
        assert!(deploy.violations() > 0, "the drift window must be caught");
    }

    #[test]
    fn clean_streak_repromotes_after_recovery() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_seeds = Some(5..12);
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::with_config(
            &report,
            DeploymentConfig {
                toq: Toq::paper_default(),
                check_every: 2,
                promote_after: 2,
            },
        );
        let mut backed_off_at = None;
        let mut promoted_at = None;
        for i in 0..30u64 {
            let r = deploy.invoke(&mut app, i).unwrap();
            if r.backed_off {
                assert!(backed_off_at.is_none(), "must back off exactly once");
                backed_off_at = Some(i);
            }
            if r.promoted {
                assert!(promoted_at.is_none(), "must promote exactly once");
                promoted_at = Some(i);
            }
        }
        // Checks land on seeds 1,3,5,...; the first drifted check is seed 5.
        assert_eq!(backed_off_at, Some(5));
        // Shadow probes at 7,9,11 are dirty; 13 and 15 are clean: streak of
        // 2 reached at seed 15 -> promotion back to the variant.
        assert_eq!(promoted_at, Some(15));
        assert_eq!(deploy.current_variant(), Some(0));
        assert_eq!(deploy.promotions(), 1);
        // Violations: the serving check at 5 plus the dirty probes 7/9/11.
        assert_eq!(deploy.violations(), 4);
    }

    #[test]
    fn promotion_disabled_never_climbs_back() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_seeds = Some(3..8);
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        for i in 0..20u64 {
            let r = deploy.invoke(&mut app, i).unwrap();
            assert!(!r.promoted);
            // Once at exact, no checks fire at all (legacy behaviour).
            if r.variant.is_none() {
                assert!(r.checked_quality.is_none());
            }
        }
        assert_eq!(deploy.current_variant(), None);
        assert_eq!(deploy.promotions(), 0);
    }

    #[test]
    fn hysteresis_blocks_flapping_candidates() {
        // The variant's quality alternates clean/dirty per seed; with
        // promote_after = 2 the streak never reaches 2, so once backed off
        // the deployment must stay at exact instead of flapping.
        struct Flapper;
        impl Approximable for Flapper {
            fn variant_count(&self) -> usize {
                1
            }
            fn variant_label(&self, _: usize) -> String {
                "flapper".into()
            }
            fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
                Ok(RunOutcome {
                    output: vec![100.0],
                    cycles: 1000,
                })
            }
            fn run_variant(&mut self, _: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
                let q = if seed.is_multiple_of(2) { 95.0 } else { 75.0 };
                Ok(RunOutcome {
                    output: vec![q],
                    cycles: 100,
                })
            }
            fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
                approx[0]
            }
        }
        let report = {
            let mut clean = Mock::new(vec![(95.0, 100)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut app = Flapper;
        let mut deploy = Deployment::with_config(
            &report,
            DeploymentConfig {
                toq: Toq::paper_default(),
                check_every: 1,
                promote_after: 2,
            },
        );
        let mut promoted_any = false;
        for seed in 0..40u64 {
            let r = deploy.invoke(&mut app, seed).unwrap();
            promoted_any |= r.promoted;
        }
        assert_eq!(deploy.current_variant(), None, "must settle at exact");
        assert!(
            !promoted_any,
            "alternating quality must never clear hysteresis"
        );
    }

    #[test]
    fn empty_training_rejected() {
        let tuner = Tuner {
            toq: Toq::paper_default(),
            training_seeds: vec![],
        };
        let mut app = Mock::new(vec![]);
        assert!(tuner.tune(&mut app).is_err());
    }

    #[test]
    fn error_display() {
        assert!(!RuntimeError("x".into()).to_string().is_empty());
    }
}
