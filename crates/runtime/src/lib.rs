//! The tuning runtime: choose and monitor approximate kernels.
//!
//! Paraprox generates approximate kernels and tuning knobs; a Green/SAGE
//! style runtime (paper §2, Figure 2) then:
//!
//! 1. **profiles** every candidate on training inputs,
//! 2. **selects** the fastest candidate whose measured output quality meets
//!    the user's target output quality (TOQ),
//! 3. in deployment, **checks** quality every N-th served request (the
//!    paper cites 40–50 as keeping overhead under 5%, §5) and **backs
//!    off** to a less aggressive candidate — ultimately exact execution —
//!    whenever the TOQ is violated; with re-promotion enabled
//!    ([`DeploymentConfig::promote_after`]) a configurable streak of clean
//!    checks climbs back up the ladder, so a long-running deployment
//!    recovers once a quality drift passes.
//!
//! The runtime is deliberately independent of the simulator: anything that
//! implements [`Approximable`] can be tuned, which also makes the policy
//! directly testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub use paraprox_quality::Toq;

/// Error type for runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError(pub String);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl Error for RuntimeError {}

/// The observable result of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Flattened output values.
    pub output: Vec<f64>,
    /// Simulated cost in device cycles.
    pub cycles: u64,
}

/// One execution a batched invocation needs: which rung to run (`None` =
/// exact) on the input derived from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRun {
    /// Variant to run (`None` = exact execution).
    pub variant: Option<usize>,
    /// Input seed.
    pub seed: u64,
}

/// Host-side executor diagnostics an [`Approximable`] may expose:
/// cumulative bytecode ops dispatched, superinstruction fusions hit, and
/// approximate-memory traffic (zero for backends that do not track them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineDiagnostics {
    /// Bytecode operations dispatched across all runs so far.
    pub ops_dispatched: u64,
    /// Fused superinstructions dispatched across all runs so far.
    pub fusions_hit: u64,
    /// Lane-loads served from approximate memory across all runs so far.
    pub approx_loads: u64,
    /// Bit flips injected into approximate loads across all runs so far.
    pub bit_flips: u64,
}

/// An application with one exact implementation and a set of approximate
/// variants, runnable on seeded inputs.
pub trait Approximable {
    /// Number of approximate variants.
    fn variant_count(&self) -> usize;

    /// Human-readable label of variant `index`.
    ///
    /// # Panics
    ///
    /// May panic when `index` is out of range.
    fn variant_label(&self, index: usize) -> String;

    /// Run the exact implementation on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError>;

    /// Run approximate variant `index` on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError>;

    /// Output quality (%) of `approx` relative to `exact`.
    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64;

    /// Execute a batch of runs and return their outcomes in order.
    ///
    /// The default loops over [`Approximable::run_variant`] /
    /// [`Approximable::run_exact`] in batch order — the *same call order*
    /// a sequence of [`Deployment::invoke`] calls would produce, so even
    /// order-sensitive (stateful) implementations behave identically
    /// under batched and sequential invocation. Backends whose runs are
    /// history-independent (e.g. a device app that starts every request
    /// cold) may override this with a fused execution path; the override
    /// must keep every outcome bit-identical to the default.
    ///
    /// # Errors
    ///
    /// Propagates execution failures; on error the whole batch is
    /// abandoned.
    fn run_batch(&mut self, runs: &[BatchRun]) -> Result<Vec<RunOutcome>, RuntimeError> {
        runs.iter()
            .map(|r| match r.variant {
                Some(v) => self.run_variant(v, r.seed),
                None => self.run_exact(r.seed),
            })
            .collect()
    }

    /// Cumulative executor diagnostics (see [`EngineDiagnostics`]);
    /// backends without instrumentation return the zero default.
    fn engine_diagnostics(&self) -> EngineDiagnostics {
        EngineDiagnostics::default()
    }
}

/// Static quality prediction for one rung, produced by the compiler's
/// error-propagation analysis (`paraprox-analysis::errorprop`) before any
/// calibration launch runs.
///
/// Two numbers matter and they play different roles:
///
/// - `quality_floor` is the *sound* certificate: output quality can never
///   fall below it (it is `100·(1 − error_bound)` for the app's metric).
///   Empirical error must never exceed `error_bound` — `bench_errorprop`
///   asserts exactly that across every app × rung.
/// - `predicted_quality` is the *heuristic* point estimate used for
///   calibration avoidance: pruning rungs from the tuning pass and
///   ordering the back-off ladder. It is allowed to be wrong (a pruned
///   rung is merely not measured — never served unsafely, because only
///   measured rungs enter the ladder).
#[derive(Debug, Clone, PartialEq)]
pub struct StaticQuality {
    /// Rung label (matches [`Approximable::variant_label`]).
    pub label: String,
    /// Sound upper bound on metric-space output error (`+∞` = unbounded,
    /// e.g. for unbounded metrics or refused rungs).
    pub error_bound: f64,
    /// Sound lower bound on output quality (%), `100·(1 − error_bound)`
    /// clamped to `[0, 100]`; 0 when the bound is unbounded.
    pub quality_floor: f64,
    /// Heuristic point estimate of output quality (%), used for pruning
    /// and ladder ordering.
    pub predicted_quality: f64,
    /// Whether `predicted_quality` is an *affirmative* claim (backed by a
    /// finite propagated bound or an explicit error-rate model). When the
    /// analysis refused the rung or widened its bound to `+∞`, the
    /// prediction carries no pruning weight: the rung must be measured
    /// dynamically, exactly as without a static table.
    pub predictive: bool,
    /// Whether the analysis *refused* this rung: injected error reached a
    /// Critical sink (address, branch, loop bound, Critical buffer) and
    /// no bound exists.
    pub refused: bool,
    /// Refusal reasons (rendered diagnostics), empty unless `refused`.
    pub refusals: Vec<String>,
}

impl StaticQuality {
    /// Whether this rung may skip calibration-free pruning checks: `true`
    /// unless the table makes an affirmative finite prediction below
    /// `toq`. A refusal or a precision loss (`predictive == false`) means
    /// "no claim" — the rung is measured dynamically, never pruned, so an
    /// imprecise analysis can only cost launches it would have cost
    /// anyway.
    pub fn predicts_met(&self, toq: Toq) -> bool {
        !self.predictive || self.predicted_quality >= toq.percent()
    }
}

/// Profiling results for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateProfile {
    /// Variant index.
    pub index: usize,
    /// Variant label.
    pub label: String,
    /// Mean output quality (%) over the training seeds.
    pub mean_quality: f64,
    /// Worst output quality (%) over the training seeds.
    pub min_quality: f64,
    /// Mean speedup over exact execution (cycles ratio).
    pub speedup: f64,
    /// Whether the candidate met the TOQ on every training input.
    pub meets_toq: bool,
    /// Whether the candidate was pruned by the static error-propagation
    /// table and never measured (its qualities/speedup are zeroed).
    pub pruned: bool,
}

/// The outcome of a tuning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Per-candidate profiles, in variant order.
    pub profiles: Vec<CandidateProfile>,
    /// The selected variant (fastest meeting the TOQ), or `None` when no
    /// candidate qualifies and exact execution should be used.
    pub chosen: Option<usize>,
    /// Mean exact cycles over the training seeds (the speedup baseline).
    pub exact_cycles: f64,
    /// Static per-rung quality table, when the tune ran with one (empty
    /// otherwise). Indexed like `profiles` by variant index.
    pub statics: Vec<StaticQuality>,
    /// Calibration launches skipped thanks to static pruning (pruned
    /// rungs × training seeds).
    pub calibration_launches_saved: u64,
}

impl TuneReport {
    /// Speedup of the chosen candidate (1.0 when falling back to exact).
    pub fn chosen_speedup(&self) -> f64 {
        self.chosen
            .and_then(|i| self.profiles.iter().find(|p| p.index == i))
            .map(|p| p.speedup)
            .unwrap_or(1.0)
    }

    /// Quality of the chosen candidate (100.0 when falling back to exact).
    pub fn chosen_quality(&self) -> f64 {
        self.chosen
            .and_then(|i| self.profiles.iter().find(|p| p.index == i))
            .map(|p| p.mean_quality)
            .unwrap_or(100.0)
    }

    /// The back-off ladder used by [`Deployment`]: qualifying candidates
    /// (meeting the TOQ *and* faster than exact) ordered most-aggressive
    /// (fastest) first, terminated by the exact kernel.
    ///
    /// The terminal [`Rung::Exact`] is always present, so the ladder is
    /// never empty: with no candidates at all, or with every candidate
    /// below the TOQ, the ladder is exactly `[Rung::Exact]` and a
    /// deployment built from it serves exact execution from the first
    /// request.
    pub fn backoff_ladder(&self) -> Vec<Rung> {
        let mut qualifying: Vec<&CandidateProfile> = self
            .profiles
            .iter()
            .filter(|p| p.meets_toq && p.speedup > 1.0)
            .collect();
        qualifying.sort_by(|a, b| {
            b.speedup
                .partial_cmp(&a.speedup)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut ladder: Vec<Rung> = qualifying.iter().map(|p| Rung::Variant(p.index)).collect();
        // With a static quality table, order the *fallback* rungs (after
        // the chosen fastest) by predicted quality, best first: backing
        // off then lands on the rung most likely to repair quality rather
        // than merely the next-fastest one.
        if !self.statics.is_empty() && ladder.len() > 2 {
            let predicted = |r: &Rung| match r {
                Rung::Variant(i) => self
                    .statics
                    .get(*i)
                    .map(|s| if s.refused { 0.0 } else { s.predicted_quality })
                    .unwrap_or(0.0),
                Rung::Exact => 100.0,
            };
            ladder[1..].sort_by(|a, b| {
                predicted(b)
                    .partial_cmp(&predicted(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        ladder.push(Rung::Exact);
        ladder
    }
}

/// One rung of the back-off ladder: an approximate variant, or the exact
/// kernel (always the terminal rung).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Approximate variant by index.
    Variant(usize),
    /// Exact execution — the ladder's terminal rung.
    Exact,
}

impl Rung {
    /// The variant index, or `None` for exact execution.
    pub fn variant(self) -> Option<usize> {
        match self {
            Rung::Variant(i) => Some(i),
            Rung::Exact => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::Variant(i) => write!(f, "v{i}"),
            Rung::Exact => write!(f, "exact"),
        }
    }
}

/// The offline/training-phase tuner.
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Target output quality.
    pub toq: Toq,
    /// Seeds of the training inputs (the paper uses 10 training runs).
    pub training_seeds: Vec<u64>,
}

impl Tuner {
    /// A tuner with the paper's defaults: TOQ = 90%, 10 training inputs.
    pub fn paper_default() -> Tuner {
        Tuner {
            toq: Toq::paper_default(),
            training_seeds: (0..10).collect(),
        }
    }

    /// Profile every variant and select the fastest one meeting the TOQ.
    ///
    /// # Errors
    ///
    /// Propagates execution failures from the application. A variant that
    /// fails to execute is treated as non-qualifying rather than aborting
    /// the tune.
    pub fn tune(&self, app: &mut dyn Approximable) -> Result<TuneReport, RuntimeError> {
        self.tune_with_static(app, &[])
    }

    /// [`Tuner::tune`] with a static per-rung quality table: rungs whose
    /// static prediction already fails the TOQ — or that the analysis
    /// refused outright — are *pruned*: their calibration launches are
    /// skipped entirely and their profiles zeroed with
    /// [`CandidateProfile::pruned`] set. The skipped launches are counted
    /// in [`TuneReport::calibration_launches_saved`].
    ///
    /// Pruning is a calibration-avoidance heuristic, not a soundness
    /// gate: a mispredicted prune costs speedup (the rung is just never
    /// measured), never quality — unmeasured rungs cannot enter the
    /// back-off ladder.
    ///
    /// # Errors
    ///
    /// Same as [`Tuner::tune`].
    pub fn tune_with_static(
        &self,
        app: &mut dyn Approximable,
        statics: &[StaticQuality],
    ) -> Result<TuneReport, RuntimeError> {
        if self.training_seeds.is_empty() {
            return Err(RuntimeError("no training seeds".to_string()));
        }
        let mut exact_runs = Vec::with_capacity(self.training_seeds.len());
        for &seed in &self.training_seeds {
            exact_runs.push(app.run_exact(seed)?);
        }
        let exact_cycles =
            exact_runs.iter().map(|r| r.cycles as f64).sum::<f64>() / exact_runs.len() as f64;

        let mut calibration_launches_saved = 0u64;
        let mut profiles = Vec::with_capacity(app.variant_count());
        for index in 0..app.variant_count() {
            let label = app.variant_label(index);
            if let Some(sq) = statics.get(index) {
                if !sq.predicts_met(self.toq) {
                    calibration_launches_saved += self.training_seeds.len() as u64;
                    profiles.push(CandidateProfile {
                        index,
                        label,
                        mean_quality: 0.0,
                        min_quality: 0.0,
                        speedup: 0.0,
                        meets_toq: false,
                        pruned: true,
                    });
                    continue;
                }
            }
            let mut qualities = Vec::new();
            let mut cycles = Vec::new();
            let mut failed = false;
            for (&seed, exact) in self.training_seeds.iter().zip(&exact_runs) {
                match app.run_variant(index, seed) {
                    Ok(run) => {
                        qualities.push(app.quality(&exact.output, &run.output));
                        cycles.push(run.cycles as f64);
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            let profile = if failed || qualities.is_empty() {
                CandidateProfile {
                    index,
                    label,
                    mean_quality: 0.0,
                    min_quality: 0.0,
                    speedup: 0.0,
                    meets_toq: false,
                    pruned: false,
                }
            } else {
                let mean_quality = qualities.iter().sum::<f64>() / qualities.len() as f64;
                let min_quality = qualities.iter().cloned().fold(f64::INFINITY, f64::min);
                let mean_cycles = cycles.iter().sum::<f64>() / cycles.len() as f64;
                let speedup = exact_cycles / mean_cycles.max(1.0);
                CandidateProfile {
                    index,
                    label,
                    mean_quality,
                    min_quality,
                    speedup,
                    meets_toq: qualities.iter().all(|&q| self.toq.is_met(q)),
                    pruned: false,
                }
            };
            profiles.push(profile);
        }
        let chosen = profiles
            .iter()
            .filter(|p| p.meets_toq && p.speedup > 1.0)
            .max_by(|a, b| {
                a.speedup
                    .partial_cmp(&b.speedup)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| p.index);
        Ok(TuneReport {
            profiles,
            chosen,
            exact_cycles,
            statics: statics.to_vec(),
            calibration_launches_saved,
        })
    }
}

/// Result of one deployed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeResult {
    /// The produced output.
    pub output: Vec<f64>,
    /// Cycles spent on the approximate (or exact) execution.
    pub cycles: u64,
    /// The variant used (`None` = exact).
    pub variant: Option<usize>,
    /// Measured quality when this invocation was a calibration check (or a
    /// shadow probe of the promotion candidate while serving exact).
    pub checked_quality: Option<f64>,
    /// Whether this invocation triggered a back-off.
    pub backed_off: bool,
    /// Whether this invocation triggered a re-promotion up the ladder.
    pub promoted: bool,
}

/// Deployed-mode policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentConfig {
    /// Target output quality enforced by the watchdog.
    pub toq: Toq,
    /// Calibration cadence: every `check_every`-th served request is
    /// checked against exact execution. The paper's §5 cites checks every
    /// 40–50 invocations costing under 5%. Clamped to at least 1.
    pub check_every: u64,
    /// Number of *consecutive* clean checks at the current rung required
    /// before re-promoting one rung up the ladder (hysteresis so variants
    /// do not flap). `0` disables re-promotion: the deployment only ever
    /// walks down, the pre-serving behaviour.
    pub promote_after: u64,
}

impl DeploymentConfig {
    /// Back-off-only policy (no re-promotion), the paper's §5 loop.
    pub fn backoff_only(toq: Toq, check_every: u64) -> DeploymentConfig {
        DeploymentConfig {
            toq,
            check_every,
            promote_after: 0,
        }
    }
}

/// Deployed-mode execution: run the chosen kernel, periodically verify
/// quality, back off on TOQ violations, and (when configured) re-promote
/// after a clean streak.
#[derive(Debug, Clone)]
pub struct Deployment {
    config: DeploymentConfig,
    ladder: Vec<Rung>,
    /// Index into `ladder`; the last rung is always [`Rung::Exact`].
    position: usize,
    /// The ladder index this deployment started at (non-zero when the
    /// static error-propagation table predicted the leading rungs would
    /// miss the TOQ for this policy's threshold).
    seeded_position: usize,
    invocations: u64,
    /// Served requests since the last calibration check.
    since_check: u64,
    checks: u64,
    violations: u64,
    promotions: u64,
    clean_streak: u64,
}

impl Deployment {
    /// Create a back-off-only deployment from a tune report (no
    /// re-promotion; see [`Deployment::with_config`]).
    ///
    /// `check_every` controls calibration frequency; the paper's §5 cites
    /// checks every 40–50 invocations costing under 5%.
    pub fn new(report: &TuneReport, toq: Toq, check_every: u64) -> Deployment {
        Deployment::with_config(report, DeploymentConfig::backoff_only(toq, check_every))
    }

    /// Create a deployment with an explicit policy, including re-promotion
    /// hysteresis for long-running (serving) use.
    ///
    /// When the report carries a static quality table, the starting rung
    /// is *seeded*: leading ladder rungs whose static prediction misses
    /// this policy's TOQ are skipped, so the first served invocations do
    /// not have to discover (and pay for) a doomed rung dynamically.
    pub fn with_config(report: &TuneReport, config: DeploymentConfig) -> Deployment {
        let ladder = report.backoff_ladder();
        let seeded_position = if report.statics.is_empty() {
            0
        } else {
            ladder
                .iter()
                .position(|r| match r {
                    Rung::Exact => true,
                    Rung::Variant(v) => report
                        .statics
                        .get(*v)
                        .is_none_or(|s| s.predicts_met(config.toq)),
                })
                .unwrap_or(ladder.len() - 1)
        };
        Deployment {
            config: DeploymentConfig {
                check_every: config.check_every.max(1),
                ..config
            },
            ladder,
            position: seeded_position,
            seeded_position,
            invocations: 0,
            since_check: 0,
            checks: 0,
            violations: 0,
            promotions: 0,
            clean_streak: 0,
        }
    }

    /// The variant the next invocation will use (`None` = exact).
    pub fn current_variant(&self) -> Option<usize> {
        self.ladder[self.position].variant()
    }

    /// The full back-off ladder (terminal rung is always [`Rung::Exact`]).
    pub fn ladder(&self) -> &[Rung] {
        &self.ladder
    }

    /// Current position in the ladder (0 = most aggressive).
    pub fn position(&self) -> usize {
        self.position
    }

    /// The ladder index this deployment started at. Zero unless the tune
    /// report carried a static quality table that disqualified the
    /// leading rungs for this policy's TOQ.
    pub fn seeded_position(&self) -> usize {
        self.seeded_position
    }

    /// The policy this deployment runs under.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// Number of served invocations so far. Calibration re-executions
    /// (the exact run of a check, the variant run of a shadow probe) are
    /// *not* counted: they are overhead, not served requests.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Number of calibration checks (including shadow probes) performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of checks that violated the TOQ.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of re-promotions up the ladder.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Consecutive clean checks at the current rung.
    pub fn clean_streak(&self) -> u64 {
        self.clean_streak
    }

    fn promotion_enabled(&self) -> bool {
        self.config.promote_after > 0
    }

    /// Register a clean check; promote when the streak reaches the
    /// configured hysteresis threshold. Returns whether a promotion fired.
    fn record_clean(&mut self) -> bool {
        self.clean_streak += 1;
        if self.promotion_enabled()
            && self.position > 0
            && self.clean_streak >= self.config.promote_after
        {
            self.position -= 1;
            self.promotions += 1;
            self.clean_streak = 0;
            return true;
        }
        false
    }

    /// Execute one invocation on the input derived from `seed`.
    ///
    /// Every `check_every`-th *served* request is a calibration check:
    /// while serving an approximate variant, the same input is re-run
    /// exactly and the measured quality drives back-off (on violation) or
    /// the clean streak (toward re-promotion). While serving exact with a
    /// non-trivial ladder and re-promotion enabled, the check instead
    /// *shadow-probes* the next-better rung: the candidate variant runs on
    /// the same input (the exact output is still the one served) and its
    /// quality feeds the same clean-streak hysteresis.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn invoke(
        &mut self,
        app: &mut dyn Approximable,
        seed: u64,
    ) -> Result<InvokeResult, RuntimeError> {
        self.invocations += 1;
        self.since_check += 1;
        let variant = self.current_variant();
        let run = match variant {
            Some(v) => app.run_variant(v, seed)?,
            None => app.run_exact(seed)?,
        };
        let mut checked_quality = None;
        let mut backed_off = false;
        let mut promoted = false;
        if self.since_check >= self.config.check_every {
            self.since_check = 0;
            match variant {
                Some(_) => {
                    // Calibration check of the served variant.
                    self.checks += 1;
                    let exact = app.run_exact(seed)?;
                    let q = app.quality(&exact.output, &run.output);
                    checked_quality = Some(q);
                    if self.config.toq.is_met(q) {
                        promoted = self.record_clean();
                    } else {
                        self.violations += 1;
                        // The terminal rung is Exact, so this never walks
                        // past the end: variant.is_some() implies
                        // position < ladder.len() - 1.
                        self.position += 1;
                        backed_off = true;
                        self.clean_streak = 0;
                    }
                }
                None if self.promotion_enabled() && self.position > 0 => {
                    // Serving exact: shadow-probe the next-better rung so
                    // the deployment can climb back once quality recovers.
                    self.checks += 1;
                    let Rung::Variant(candidate) = self.ladder[self.position - 1] else {
                        unreachable!("only the terminal rung is exact")
                    };
                    let probe = app.run_variant(candidate, seed)?;
                    let q = app.quality(&run.output, &probe.output);
                    checked_quality = Some(q);
                    if self.config.toq.is_met(q) {
                        promoted = self.record_clean();
                    } else {
                        self.violations += 1;
                        self.clean_streak = 0;
                    }
                }
                None => {}
            }
        }
        Ok(InvokeResult {
            output: run.output,
            cycles: run.cycles,
            variant,
            checked_quality,
            backed_off,
            promoted,
        })
    }

    /// Plan the next batch of at most `available` served requests.
    ///
    /// The rung can only change at a calibration boundary, so the
    /// requests *between* boundaries are rung-stable and can run fused:
    /// the plan's length is `min(available, requests until the next
    /// boundary)` and every request runs at the current rung. When the
    /// batch ends exactly on the boundary, the plan also names the
    /// calibration re-execution the check needs ([`Calibration`]), to run
    /// on the boundary (last) seed.
    ///
    /// Because the plan never crosses a boundary, committing it replays
    /// exactly the state transitions the equivalent [`Deployment::invoke`]
    /// sequence performs — the decision trace is independent of how many
    /// requests were available, i.e. of batch-formation timing.
    pub fn plan_batch(&self, available: usize) -> BatchPlan {
        let span = self.config.check_every - self.since_check;
        let len = available.min(usize::try_from(span).unwrap_or(usize::MAX));
        let variant = self.current_variant();
        let at_boundary = len as u64 >= span;
        let calibration = if at_boundary && len > 0 {
            match variant {
                Some(_) => Some(Calibration::Exact),
                None if self.promotion_enabled() && self.position > 0 => {
                    let Rung::Variant(candidate) = self.ladder[self.position - 1] else {
                        unreachable!("only the terminal rung is exact")
                    };
                    Some(Calibration::Probe(candidate))
                }
                None => None,
            }
        } else {
            None
        };
        BatchPlan {
            len,
            variant,
            calibration,
        }
    }

    /// Commit the outcomes of an executed batch plan: advance the
    /// invocation counters and, at a calibration boundary, drive the
    /// back-off / clean-streak policy exactly as the equivalent
    /// [`Deployment::invoke`] sequence would. Returns one
    /// [`InvokeResult`] per served request; only the boundary (last)
    /// request can carry check fields.
    ///
    /// # Errors
    ///
    /// Fails when the outcome counts do not match the plan, or when the
    /// deployment state changed between plan and commit (the plan is
    /// stale).
    pub fn commit_batch(
        &mut self,
        app: &dyn Approximable,
        plan: &BatchPlan,
        served: Vec<RunOutcome>,
        calibration: Option<RunOutcome>,
    ) -> Result<Vec<InvokeResult>, RuntimeError> {
        if served.len() != plan.len {
            return Err(RuntimeError(format!(
                "batch commit: {} outcomes for a plan of {}",
                served.len(),
                plan.len
            )));
        }
        if plan.variant != self.current_variant() {
            return Err(RuntimeError(
                "batch commit: plan is stale (rung changed since planning)".to_string(),
            ));
        }
        if calibration.is_some() != plan.calibration.is_some() {
            return Err(RuntimeError(
                "batch commit: calibration outcome does not match the plan".to_string(),
            ));
        }
        if plan.len == 0 {
            return Ok(Vec::new());
        }
        self.invocations += plan.len as u64;
        self.since_check += plan.len as u64;
        let mut results: Vec<InvokeResult> = served
            .into_iter()
            .map(|run| InvokeResult {
                output: run.output,
                cycles: run.cycles,
                variant: plan.variant,
                checked_quality: None,
                backed_off: false,
                promoted: false,
            })
            .collect();
        if self.since_check >= self.config.check_every {
            self.since_check = 0;
            let last = results.last_mut().expect("plan.len > 0");
            match (&plan.calibration, calibration) {
                (Some(Calibration::Exact), Some(exact)) => {
                    self.checks += 1;
                    let q = app.quality(&exact.output, &last.output);
                    last.checked_quality = Some(q);
                    if self.config.toq.is_met(q) {
                        last.promoted = self.record_clean();
                    } else {
                        self.violations += 1;
                        self.position += 1;
                        last.backed_off = true;
                        self.clean_streak = 0;
                    }
                }
                (Some(Calibration::Probe(_)), Some(probe)) => {
                    self.checks += 1;
                    let q = app.quality(&last.output, &probe.output);
                    last.checked_quality = Some(q);
                    if self.config.toq.is_met(q) {
                        last.promoted = self.record_clean();
                    } else {
                        self.violations += 1;
                        self.clean_streak = 0;
                    }
                }
                (None, None) => {}
                _ => unreachable!("calibration presence validated above"),
            }
        }
        Ok(results)
    }

    /// Serve `seeds` through the batched path: repeatedly plan a
    /// rung-stable chunk, execute it (plus any calibration re-execution)
    /// via [`Approximable::run_batch`], and commit. The returned results
    /// — and the deployment's decision trace — are identical to invoking
    /// each seed individually, for any `seeds.len()`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures; the failing chunk is not committed.
    pub fn invoke_batch(
        &mut self,
        app: &mut dyn Approximable,
        seeds: &[u64],
    ) -> Result<Vec<InvokeResult>, RuntimeError> {
        let mut out = Vec::with_capacity(seeds.len());
        let mut rest = seeds;
        while !rest.is_empty() {
            let plan = self.plan_batch(rest.len());
            let (chunk, tail) = rest.split_at(plan.len);
            rest = tail;
            let mut runs: Vec<BatchRun> = chunk
                .iter()
                .map(|&seed| BatchRun {
                    variant: plan.variant,
                    seed,
                })
                .collect();
            if let Some(c) = &plan.calibration {
                let boundary = *chunk.last().expect("plan.len > 0 with calibration");
                runs.push(BatchRun {
                    variant: match c {
                        Calibration::Exact => None,
                        Calibration::Probe(v) => Some(*v),
                    },
                    seed: boundary,
                });
            }
            let mut outcomes = app.run_batch(&runs)?;
            if outcomes.len() != runs.len() {
                return Err(RuntimeError(format!(
                    "run_batch returned {} outcomes for {} runs",
                    outcomes.len(),
                    runs.len()
                )));
            }
            let cal = plan
                .calibration
                .is_some()
                .then(|| outcomes.pop().expect("outcome count checked above"));
            out.extend(self.commit_batch(app, &plan, outcomes, cal)?);
        }
        Ok(out)
    }
}

/// What one planned batch will execute (see [`Deployment::plan_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Number of served requests in this batch (rung-stable by
    /// construction).
    pub len: usize,
    /// The rung every request of this batch runs at (`None` = exact).
    pub variant: Option<usize>,
    /// Calibration re-execution the batch's final request requires, when
    /// the batch ends on a check boundary.
    pub calibration: Option<Calibration>,
}

/// The calibration re-execution a batch boundary needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Calibration {
    /// Re-run the boundary input exactly (the deployment is serving a
    /// variant; the check compares the served output against it).
    Exact,
    /// Shadow-probe this candidate variant on the boundary input (the
    /// deployment is serving exact; the probe feeds re-promotion).
    Probe(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mock application whose variants have configurable (quality,
    /// cycles); quality can degrade over time (run-count based) or over a
    /// seed window (for deterministic drift-and-recovery scenarios) to
    /// exercise the watchdog.
    struct Mock {
        /// (quality, cycles) per variant.
        variants: Vec<(f64, u64)>,
        exact_cycles: u64,
        /// Quality drop applied after `drift_after` total runs.
        drift_after: Option<u64>,
        /// Quality drop applied to seeds inside this window.
        drift_seeds: Option<std::ops::Range<u64>>,
        runs: u64,
    }

    impl Mock {
        fn new(variants: Vec<(f64, u64)>) -> Mock {
            Mock {
                variants,
                exact_cycles: 1000,
                drift_after: None,
                drift_seeds: None,
                runs: 0,
            }
        }
    }

    impl Approximable for Mock {
        fn variant_count(&self) -> usize {
            self.variants.len()
        }
        fn variant_label(&self, index: usize) -> String {
            format!("variant{index}")
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.runs += 1;
            Ok(RunOutcome {
                output: vec![100.0],
                cycles: self.exact_cycles,
            })
        }
        fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.runs += 1;
            let (quality, cycles) = self.variants[index];
            let mut effective = quality;
            if matches!(self.drift_after, Some(t) if self.runs > t) {
                effective -= 20.0;
            }
            if matches!(&self.drift_seeds, Some(w) if w.contains(&seed)) {
                effective -= 20.0;
            }
            // Encode quality as the output error: quality() below recovers it.
            Ok(RunOutcome {
                output: vec![effective],
                cycles,
            })
        }
        fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
            approx[0]
        }
    }

    #[test]
    fn tuner_picks_fastest_qualifying_candidate() {
        // v0: high quality, modest speedup; v1: qualifying and faster;
        // v2: fastest but below TOQ.
        let mut app = Mock::new(vec![(99.0, 800), (95.0, 400), (70.0, 100)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, Some(1));
        assert!(report.profiles[2].speedup > report.profiles[1].speedup);
        assert!(!report.profiles[2].meets_toq);
        assert!((report.chosen_speedup() - 2.5).abs() < 1e-9);
        assert_eq!(report.chosen_quality(), 95.0);
    }

    #[test]
    fn tuner_falls_back_to_exact_when_nothing_qualifies() {
        let mut app = Mock::new(vec![(50.0, 100), (60.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, None);
        assert_eq!(report.chosen_speedup(), 1.0);
        assert_eq!(report.chosen_quality(), 100.0);
    }

    #[test]
    fn slower_than_exact_variants_are_not_chosen() {
        let mut app = Mock::new(vec![(99.0, 2000)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, None);
    }

    #[test]
    fn backoff_ladder_orders_by_speedup_and_terminates_in_exact() {
        let mut app = Mock::new(vec![(95.0, 800), (95.0, 200), (95.0, 400)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(
            report.backoff_ladder(),
            vec![
                Rung::Variant(1),
                Rung::Variant(2),
                Rung::Variant(0),
                Rung::Exact
            ]
        );
    }

    fn sq(predicted: f64, refused: bool) -> StaticQuality {
        StaticQuality {
            label: String::new(),
            error_bound: if refused { f64::INFINITY } else { 0.0 },
            quality_floor: if refused { 0.0 } else { predicted },
            predicted_quality: if refused { 0.0 } else { predicted },
            predictive: !refused,
            refused,
            refusals: if refused {
                vec!["error reaches Critical sink".to_string()]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn static_table_prunes_rungs_and_counts_saved_launches() {
        // v2's affirmative prediction is below the 90% TOQ: it may not
        // consume calibration launches. v1 and v3 make no claim (refusal
        // / widened bound) — they are measured like any other rung.
        let mut app = Mock::new(vec![(95.0, 200), (95.0, 100), (70.0, 100), (95.0, 400)]);
        let no_claim = StaticQuality {
            predictive: false,
            ..sq(0.0, false)
        };
        let statics = [sq(95.0, false), sq(99.0, true), sq(70.0, false), no_claim];
        let tuner = Tuner::paper_default();
        let report = tuner.tune_with_static(&mut app, &statics).unwrap();
        assert_eq!(report.chosen, Some(1));
        assert!(!report.profiles[0].pruned);
        assert!(!report.profiles[1].pruned, "refusal is not a prune");
        assert!(report.profiles[2].pruned && !report.profiles[2].meets_toq);
        assert!(!report.profiles[3].pruned, "no-claim rungs are measured");
        assert_eq!(
            report.calibration_launches_saved,
            tuner.training_seeds.len() as u64
        );
        // Exact runs plus three measured variants.
        assert_eq!(app.runs, 4 * tuner.training_seeds.len() as u64);
        // The pruned rung never reaches the ladder.
        assert!(!report.backoff_ladder().contains(&Rung::Variant(2)));
    }

    #[test]
    fn tune_without_statics_prunes_nothing() {
        let mut app = Mock::new(vec![(95.0, 200), (70.0, 100)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert!(report.profiles.iter().all(|p| !p.pruned));
        assert_eq!(report.calibration_launches_saved, 0);
        assert!(report.statics.is_empty());
    }

    #[test]
    fn static_table_orders_fallback_rungs_by_predicted_quality() {
        // Speedup order would be v1, v2, v0; with a static table the
        // fallback rungs (after the chosen fastest) reorder by predicted
        // quality so backing off lands on the best repair first.
        let mut app = Mock::new(vec![(95.0, 800), (95.0, 200), (95.0, 400)]);
        let statics = [sq(99.0, false), sq(93.0, false), sq(91.0, false)];
        let report = Tuner::paper_default()
            .tune_with_static(&mut app, &statics)
            .unwrap();
        assert_eq!(
            report.backoff_ladder(),
            vec![
                Rung::Variant(1),
                Rung::Variant(0),
                Rung::Variant(2),
                Rung::Exact
            ]
        );
    }

    #[test]
    fn deployment_seeds_starting_rung_from_static_table() {
        let mut app = Mock::new(vec![(95.0, 800), (95.0, 200), (95.0, 400)]);
        // Without statics the deployment starts at position 0.
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let deploy = Deployment::new(&report, Toq::paper_default(), 10);
        assert_eq!(deploy.seeded_position(), 0);

        // With a static table predicting the chosen rung misses a
        // *stricter* deployment TOQ, the start seeds past it.
        let statics = [sq(99.0, false), sq(93.0, false), sq(98.0, false)];
        let report = Tuner::paper_default()
            .tune_with_static(&mut app, &statics)
            .unwrap();
        // Ladder: v1 (fastest), then v2, v0 by predicted quality... but a
        // 97% TOQ deployment skips rungs predicted below 97.
        let deploy = Deployment::new(&report, Toq::new(97.0).unwrap(), 10);
        let ladder = deploy.ladder().to_vec();
        assert_eq!(ladder[0], Rung::Variant(1));
        assert!(deploy.seeded_position() > 0);
        let seeded = ladder[deploy.seeded_position()];
        assert!(matches!(seeded, Rung::Variant(0) | Rung::Variant(2)));
        assert_eq!(deploy.position(), deploy.seeded_position());
    }

    #[test]
    fn ladder_is_exact_only_for_empty_candidate_set() {
        let mut app = Mock::new(vec![]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![Rung::Exact]);
        // A deployment over the trivial ladder serves exact immediately and
        // never checks.
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        assert_eq!(deploy.current_variant(), None);
        for seed in 0..5 {
            let r = deploy.invoke(&mut app, seed).unwrap();
            assert_eq!(r.variant, None);
            assert!(r.checked_quality.is_none());
            assert!(!r.backed_off && !r.promoted);
        }
        assert_eq!(deploy.checks(), 0);
    }

    #[test]
    fn ladder_is_exact_only_when_every_candidate_is_below_toq() {
        let mut app = Mock::new(vec![(50.0, 100), (60.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![Rung::Exact]);
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        assert_eq!(deploy.current_variant(), None);
        assert!(deploy
            .invoke(&mut app, 0)
            .unwrap()
            .checked_quality
            .is_none());
    }

    #[test]
    fn ladder_excludes_qualifying_but_slower_than_exact_variants() {
        // 99% quality but 2x the exact cycles: meets the TOQ yet must not
        // appear on the ladder — backing off to it would serve a slower
        // *and* approximate kernel.
        let mut app = Mock::new(vec![(99.0, 2000), (95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![Rung::Variant(1), Rung::Exact]);
    }

    #[test]
    fn rung_accessors_and_display() {
        assert_eq!(Rung::Variant(3).variant(), Some(3));
        assert_eq!(Rung::Exact.variant(), None);
        assert_eq!(Rung::Variant(3).to_string(), "v3");
        assert_eq!(Rung::Exact.to_string(), "exact");
    }

    #[test]
    fn deployment_checks_periodically_and_backs_off_on_drift() {
        let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
        app.drift_after = Some(30);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, Some(0));
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 5);
        assert_eq!(deploy.current_variant(), Some(0));

        let mut backed_off_at = None;
        for i in 0..40 {
            let result = deploy.invoke(&mut app, i).unwrap();
            if result.backed_off {
                backed_off_at = Some(i);
                break;
            }
        }
        // Drift starts after 30 total runs; the next periodic check (every
        // 5th invocation) must catch it and back off to variant 1.
        assert!(backed_off_at.is_some(), "watchdog must catch the drift");
        assert_eq!(deploy.current_variant(), Some(1));
    }

    #[test]
    fn deployment_exhausts_ladder_to_exact() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_after = Some(0); // always drifted: checks always fail
        let report = {
            // Tune on a pristine copy so the variant qualifies.
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        let first = deploy.invoke(&mut app, 0).unwrap();
        assert_eq!(first.variant, Some(0));
        assert!(first.backed_off);
        let second = deploy.invoke(&mut app, 1).unwrap();
        assert_eq!(second.variant, None, "ladder exhausted -> exact");
        // Exact runs are never "checked".
        assert!(second.checked_quality.is_none());
    }

    #[test]
    fn check_cadence_respected() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 10);
        let mut checks = 0;
        for i in 0..50 {
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                checks += 1;
            }
        }
        assert_eq!(checks, 5);
    }

    #[test]
    fn check_cadence_counts_served_requests_not_calibration_reruns() {
        // Regression: "check every Nth" must mean every Nth *served*
        // request. The exact re-execution a check performs is calibration
        // overhead, not a served request, and must not advance the cadence
        // counter or the invocation count.
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let runs_after_tune = app.runs;
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 3);
        let mut check_invocations = Vec::new();
        for i in 1..=12u64 {
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                check_invocations.push(i);
            }
        }
        assert_eq!(check_invocations, vec![3, 6, 9, 12]);
        assert_eq!(deploy.invocations(), 12);
        assert_eq!(deploy.checks(), 4);
        // 12 served runs + 4 exact calibration re-runs.
        assert_eq!(app.runs - runs_after_tune, 12 + 4);
    }

    #[test]
    fn cadence_stays_aligned_across_backoff() {
        // Two qualifying variants; the first drifts over a seed window so a
        // check fails mid-stream. The checks must keep firing every 3rd
        // served request, unperturbed by the rung change.
        let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
        app.drift_seeds = Some(4..20);
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200), (96.0, 500)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        // Promotion enabled (with a threshold the stream never reaches) so
        // shadow probes keep firing on the same cadence once the ladder is
        // exhausted to exact.
        let mut deploy = Deployment::with_config(
            &report,
            DeploymentConfig {
                toq: Toq::paper_default(),
                check_every: 3,
                promote_after: 100,
            },
        );
        let mut check_invocations = Vec::new();
        for i in 1..=15u64 {
            // Seed == served-request index.
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                check_invocations.push(i);
            }
        }
        assert_eq!(check_invocations, vec![3, 6, 9, 12, 15]);
        assert!(deploy.violations() > 0, "the drift window must be caught");
    }

    #[test]
    fn clean_streak_repromotes_after_recovery() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_seeds = Some(5..12);
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::with_config(
            &report,
            DeploymentConfig {
                toq: Toq::paper_default(),
                check_every: 2,
                promote_after: 2,
            },
        );
        let mut backed_off_at = None;
        let mut promoted_at = None;
        for i in 0..30u64 {
            let r = deploy.invoke(&mut app, i).unwrap();
            if r.backed_off {
                assert!(backed_off_at.is_none(), "must back off exactly once");
                backed_off_at = Some(i);
            }
            if r.promoted {
                assert!(promoted_at.is_none(), "must promote exactly once");
                promoted_at = Some(i);
            }
        }
        // Checks land on seeds 1,3,5,...; the first drifted check is seed 5.
        assert_eq!(backed_off_at, Some(5));
        // Shadow probes at 7,9,11 are dirty; 13 and 15 are clean: streak of
        // 2 reached at seed 15 -> promotion back to the variant.
        assert_eq!(promoted_at, Some(15));
        assert_eq!(deploy.current_variant(), Some(0));
        assert_eq!(deploy.promotions(), 1);
        // Violations: the serving check at 5 plus the dirty probes 7/9/11.
        assert_eq!(deploy.violations(), 4);
    }

    #[test]
    fn promotion_disabled_never_climbs_back() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_seeds = Some(3..8);
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        for i in 0..20u64 {
            let r = deploy.invoke(&mut app, i).unwrap();
            assert!(!r.promoted);
            // Once at exact, no checks fire at all (legacy behaviour).
            if r.variant.is_none() {
                assert!(r.checked_quality.is_none());
            }
        }
        assert_eq!(deploy.current_variant(), None);
        assert_eq!(deploy.promotions(), 0);
    }

    #[test]
    fn hysteresis_blocks_flapping_candidates() {
        // The variant's quality alternates clean/dirty per seed; with
        // promote_after = 2 the streak never reaches 2, so once backed off
        // the deployment must stay at exact instead of flapping.
        struct Flapper;
        impl Approximable for Flapper {
            fn variant_count(&self) -> usize {
                1
            }
            fn variant_label(&self, _: usize) -> String {
                "flapper".into()
            }
            fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
                Ok(RunOutcome {
                    output: vec![100.0],
                    cycles: 1000,
                })
            }
            fn run_variant(&mut self, _: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
                let q = if seed.is_multiple_of(2) { 95.0 } else { 75.0 };
                Ok(RunOutcome {
                    output: vec![q],
                    cycles: 100,
                })
            }
            fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
                approx[0]
            }
        }
        let report = {
            let mut clean = Mock::new(vec![(95.0, 100)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut app = Flapper;
        let mut deploy = Deployment::with_config(
            &report,
            DeploymentConfig {
                toq: Toq::paper_default(),
                check_every: 1,
                promote_after: 2,
            },
        );
        let mut promoted_any = false;
        for seed in 0..40u64 {
            let r = deploy.invoke(&mut app, seed).unwrap();
            promoted_any |= r.promoted;
        }
        assert_eq!(deploy.current_variant(), None, "must settle at exact");
        assert!(
            !promoted_any,
            "alternating quality must never clear hysteresis"
        );
    }

    /// Drive the same seeded stream through sequential `invoke` and
    /// through `invoke_batch` at the given window, and assert the
    /// results and final deployment state are identical.
    fn assert_batch_matches_sequential(
        make_app: impl Fn() -> Mock,
        config: DeploymentConfig,
        requests: u64,
        window: usize,
    ) {
        let report = {
            let mut clean = Mock::new(vec![(95.0, 200), (96.0, 500)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let seeds: Vec<u64> = (0..requests).collect();

        let mut seq_app = make_app();
        let mut seq = Deployment::with_config(&report, config);
        let expected: Vec<InvokeResult> = seeds
            .iter()
            .map(|&s| seq.invoke(&mut seq_app, s).unwrap())
            .collect();

        let mut bat_app = make_app();
        let mut bat = Deployment::with_config(&report, config);
        let mut got = Vec::new();
        for chunk in seeds.chunks(window) {
            got.extend(bat.invoke_batch(&mut bat_app, chunk).unwrap());
        }

        assert_eq!(got, expected, "results diverged (window={window})");
        assert_eq!(bat.invocations(), seq.invocations());
        assert_eq!(bat.checks(), seq.checks());
        assert_eq!(bat.violations(), seq.violations());
        assert_eq!(bat.promotions(), seq.promotions());
        assert_eq!(bat.clean_streak(), seq.clean_streak());
        assert_eq!(bat.position(), seq.position());
        // The apps saw the exact same call sequence, so even their
        // order-sensitive internal state matches.
        assert_eq!(bat_app.runs, seq_app.runs, "call counts (window={window})");
    }

    #[test]
    fn batched_invocation_is_trace_identical_to_sequential() {
        // Drift over a seed window: the stream backs off mid-way and
        // re-promotes after recovery, so the trace exercises every
        // decision kind across every batch window.
        let make_app = || {
            let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
            app.drift_seeds = Some(10..30);
            app
        };
        for window in [1, 2, 3, 5, 8, 64] {
            assert_batch_matches_sequential(
                make_app,
                DeploymentConfig {
                    toq: Toq::paper_default(),
                    check_every: 4,
                    promote_after: 2,
                },
                60,
                window,
            );
        }
    }

    #[test]
    fn batched_invocation_matches_for_stateful_drift() {
        // Run-count based drift is order-sensitive: identical traces here
        // prove the batched path preserves the exact call order of the
        // sequential path (served runs in sequence order, calibration
        // immediately after its boundary request).
        let make_app = || {
            let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
            app.drift_after = Some(25);
            app
        };
        for window in [1, 4, 7, 32] {
            assert_batch_matches_sequential(
                make_app,
                DeploymentConfig {
                    toq: Toq::paper_default(),
                    check_every: 5,
                    promote_after: 0,
                },
                40,
                window,
            );
        }
    }

    #[test]
    fn plan_batch_never_crosses_a_check_boundary() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 5);
        // Fresh deployment: 5 requests until the boundary.
        let plan = deploy.plan_batch(100);
        assert_eq!(plan.len, 5);
        assert_eq!(plan.variant, Some(0));
        assert_eq!(plan.calibration, Some(Calibration::Exact));
        // Short of the boundary: no calibration.
        let plan = deploy.plan_batch(3);
        assert_eq!(plan.len, 3);
        assert_eq!(plan.calibration, None);
        // After two served requests, only 3 remain until the boundary.
        deploy.invoke(&mut app, 0).unwrap();
        deploy.invoke(&mut app, 1).unwrap();
        assert_eq!(deploy.plan_batch(100).len, 3);
        assert_eq!(deploy.plan_batch(0).len, 0);
    }

    #[test]
    fn commit_batch_rejects_mismatched_outcomes() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 5);
        let plan = deploy.plan_batch(2);
        assert_eq!(plan.calibration, None);
        // Wrong outcome count.
        assert!(deploy.commit_batch(&app, &plan, vec![], None).is_err());
        // Unexpected calibration outcome.
        let run = RunOutcome {
            output: vec![95.0],
            cycles: 200,
        };
        assert!(deploy
            .commit_batch(&app, &plan, vec![run.clone(), run.clone()], Some(run))
            .is_err());
    }

    #[test]
    fn empty_training_rejected() {
        let tuner = Tuner {
            toq: Toq::paper_default(),
            training_seeds: vec![],
        };
        let mut app = Mock::new(vec![]);
        assert!(tuner.tune(&mut app).is_err());
    }

    #[test]
    fn error_display() {
        assert!(!RuntimeError("x".into()).to_string().is_empty());
    }
}
