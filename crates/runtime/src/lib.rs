//! The tuning runtime: choose and monitor approximate kernels.
//!
//! Paraprox generates approximate kernels and tuning knobs; a Green/SAGE
//! style runtime (paper §2, Figure 2) then:
//!
//! 1. **profiles** every candidate on training inputs,
//! 2. **selects** the fastest candidate whose measured output quality meets
//!    the user's target output quality (TOQ),
//! 3. in deployment, **checks** quality every N-th invocation (the paper
//!    cites 40–50 as keeping overhead under 5%, §5) and **backs off** to a
//!    less aggressive candidate — ultimately exact execution — whenever the
//!    TOQ is violated.
//!
//! The runtime is deliberately independent of the simulator: anything that
//! implements [`Approximable`] can be tuned, which also makes the policy
//! directly testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub use paraprox_quality::Toq;

/// Error type for runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError(pub String);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl Error for RuntimeError {}

/// The observable result of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Flattened output values.
    pub output: Vec<f64>,
    /// Simulated cost in device cycles.
    pub cycles: u64,
}

/// An application with one exact implementation and a set of approximate
/// variants, runnable on seeded inputs.
pub trait Approximable {
    /// Number of approximate variants.
    fn variant_count(&self) -> usize;

    /// Human-readable label of variant `index`.
    ///
    /// # Panics
    ///
    /// May panic when `index` is out of range.
    fn variant_label(&self, index: usize) -> String;

    /// Run the exact implementation on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError>;

    /// Run approximate variant `index` on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError>;

    /// Output quality (%) of `approx` relative to `exact`.
    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64;
}

/// Profiling results for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateProfile {
    /// Variant index.
    pub index: usize,
    /// Variant label.
    pub label: String,
    /// Mean output quality (%) over the training seeds.
    pub mean_quality: f64,
    /// Worst output quality (%) over the training seeds.
    pub min_quality: f64,
    /// Mean speedup over exact execution (cycles ratio).
    pub speedup: f64,
    /// Whether the candidate met the TOQ on every training input.
    pub meets_toq: bool,
}

/// The outcome of a tuning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Per-candidate profiles, in variant order.
    pub profiles: Vec<CandidateProfile>,
    /// The selected variant (fastest meeting the TOQ), or `None` when no
    /// candidate qualifies and exact execution should be used.
    pub chosen: Option<usize>,
    /// Mean exact cycles over the training seeds (the speedup baseline).
    pub exact_cycles: f64,
}

impl TuneReport {
    /// Speedup of the chosen candidate (1.0 when falling back to exact).
    pub fn chosen_speedup(&self) -> f64 {
        self.chosen
            .and_then(|i| self.profiles.iter().find(|p| p.index == i))
            .map(|p| p.speedup)
            .unwrap_or(1.0)
    }

    /// Quality of the chosen candidate (100.0 when falling back to exact).
    pub fn chosen_quality(&self) -> f64 {
        self.chosen
            .and_then(|i| self.profiles.iter().find(|p| p.index == i))
            .map(|p| p.mean_quality)
            .unwrap_or(100.0)
    }

    /// Qualifying candidates ordered most-aggressive (fastest) first — the
    /// back-off ladder used by [`Deployment`].
    pub fn backoff_ladder(&self) -> Vec<usize> {
        let mut qualifying: Vec<&CandidateProfile> =
            self.profiles.iter().filter(|p| p.meets_toq).collect();
        qualifying.sort_by(|a, b| {
            b.speedup
                .partial_cmp(&a.speedup)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        qualifying.iter().map(|p| p.index).collect()
    }
}

/// The offline/training-phase tuner.
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Target output quality.
    pub toq: Toq,
    /// Seeds of the training inputs (the paper uses 10 training runs).
    pub training_seeds: Vec<u64>,
}

impl Tuner {
    /// A tuner with the paper's defaults: TOQ = 90%, 10 training inputs.
    pub fn paper_default() -> Tuner {
        Tuner {
            toq: Toq::paper_default(),
            training_seeds: (0..10).collect(),
        }
    }

    /// Profile every variant and select the fastest one meeting the TOQ.
    ///
    /// # Errors
    ///
    /// Propagates execution failures from the application. A variant that
    /// fails to execute is treated as non-qualifying rather than aborting
    /// the tune.
    pub fn tune(&self, app: &mut dyn Approximable) -> Result<TuneReport, RuntimeError> {
        if self.training_seeds.is_empty() {
            return Err(RuntimeError("no training seeds".to_string()));
        }
        let mut exact_runs = Vec::with_capacity(self.training_seeds.len());
        for &seed in &self.training_seeds {
            exact_runs.push(app.run_exact(seed)?);
        }
        let exact_cycles =
            exact_runs.iter().map(|r| r.cycles as f64).sum::<f64>() / exact_runs.len() as f64;

        let mut profiles = Vec::with_capacity(app.variant_count());
        for index in 0..app.variant_count() {
            let label = app.variant_label(index);
            let mut qualities = Vec::new();
            let mut cycles = Vec::new();
            let mut failed = false;
            for (&seed, exact) in self.training_seeds.iter().zip(&exact_runs) {
                match app.run_variant(index, seed) {
                    Ok(run) => {
                        qualities.push(app.quality(&exact.output, &run.output));
                        cycles.push(run.cycles as f64);
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            let profile = if failed || qualities.is_empty() {
                CandidateProfile {
                    index,
                    label,
                    mean_quality: 0.0,
                    min_quality: 0.0,
                    speedup: 0.0,
                    meets_toq: false,
                }
            } else {
                let mean_quality = qualities.iter().sum::<f64>() / qualities.len() as f64;
                let min_quality = qualities.iter().cloned().fold(f64::INFINITY, f64::min);
                let mean_cycles = cycles.iter().sum::<f64>() / cycles.len() as f64;
                let speedup = exact_cycles / mean_cycles.max(1.0);
                CandidateProfile {
                    index,
                    label,
                    mean_quality,
                    min_quality,
                    speedup,
                    meets_toq: qualities.iter().all(|&q| self.toq.is_met(q)),
                }
            };
            profiles.push(profile);
        }
        let chosen = profiles
            .iter()
            .filter(|p| p.meets_toq && p.speedup > 1.0)
            .max_by(|a, b| {
                a.speedup
                    .partial_cmp(&b.speedup)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| p.index);
        Ok(TuneReport {
            profiles,
            chosen,
            exact_cycles,
        })
    }
}

/// Result of one deployed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeResult {
    /// The produced output.
    pub output: Vec<f64>,
    /// Cycles spent on the approximate (or exact) execution.
    pub cycles: u64,
    /// The variant used (`None` = exact).
    pub variant: Option<usize>,
    /// Measured quality when this invocation was a calibration check.
    pub checked_quality: Option<f64>,
    /// Whether this invocation triggered a back-off.
    pub backed_off: bool,
}

/// Deployed-mode execution: run the chosen kernel, periodically verify
/// quality, and back off on TOQ violations.
#[derive(Debug, Clone)]
pub struct Deployment {
    toq: Toq,
    check_every: u64,
    ladder: Vec<usize>,
    /// Position in the ladder; `ladder.len()` means exact execution.
    position: usize,
    invocations: u64,
}

impl Deployment {
    /// Create a deployment from a tune report.
    ///
    /// `check_every` controls calibration frequency; the paper's §5 cites
    /// checks every 40–50 invocations costing under 5%.
    pub fn new(report: &TuneReport, toq: Toq, check_every: u64) -> Deployment {
        Deployment {
            toq,
            check_every: check_every.max(1),
            ladder: report.backoff_ladder(),
            position: 0,
            invocations: 0,
        }
    }

    /// The variant the next invocation will use (`None` = exact).
    pub fn current_variant(&self) -> Option<usize> {
        self.ladder.get(self.position).copied()
    }

    /// Number of invocations executed so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Execute one invocation on the input derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn invoke(
        &mut self,
        app: &mut dyn Approximable,
        seed: u64,
    ) -> Result<InvokeResult, RuntimeError> {
        self.invocations += 1;
        let variant = self.current_variant();
        let run = match variant {
            Some(v) => app.run_variant(v, seed)?,
            None => app.run_exact(seed)?,
        };
        let mut checked_quality = None;
        let mut backed_off = false;
        let is_check = variant.is_some() && self.invocations.is_multiple_of(self.check_every);
        if is_check {
            let exact = app.run_exact(seed)?;
            let q = app.quality(&exact.output, &run.output);
            checked_quality = Some(q);
            if !self.toq.is_met(q) {
                // Back off to the next less aggressive candidate.
                self.position += 1;
                backed_off = true;
            }
        }
        Ok(InvokeResult {
            output: run.output,
            cycles: run.cycles,
            variant,
            checked_quality,
            backed_off,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mock application whose variants have configurable (quality,
    /// cycles); quality can degrade over time to exercise the watchdog.
    struct Mock {
        /// (quality, cycles) per variant.
        variants: Vec<(f64, u64)>,
        exact_cycles: u64,
        /// Quality drop applied after `drift_after` total runs.
        drift_after: Option<u64>,
        runs: u64,
    }

    impl Mock {
        fn new(variants: Vec<(f64, u64)>) -> Mock {
            Mock {
                variants,
                exact_cycles: 1000,
                drift_after: None,
                runs: 0,
            }
        }
    }

    impl Approximable for Mock {
        fn variant_count(&self) -> usize {
            self.variants.len()
        }
        fn variant_label(&self, index: usize) -> String {
            format!("variant{index}")
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.runs += 1;
            Ok(RunOutcome {
                output: vec![100.0],
                cycles: self.exact_cycles,
            })
        }
        fn run_variant(&mut self, index: usize, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.runs += 1;
            let (quality, cycles) = self.variants[index];
            let effective = match self.drift_after {
                Some(t) if self.runs > t => quality - 20.0,
                _ => quality,
            };
            // Encode quality as the output error: quality() below recovers it.
            Ok(RunOutcome {
                output: vec![effective],
                cycles,
            })
        }
        fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
            approx[0]
        }
    }

    #[test]
    fn tuner_picks_fastest_qualifying_candidate() {
        // v0: high quality, modest speedup; v1: qualifying and faster;
        // v2: fastest but below TOQ.
        let mut app = Mock::new(vec![(99.0, 800), (95.0, 400), (70.0, 100)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, Some(1));
        assert!(report.profiles[2].speedup > report.profiles[1].speedup);
        assert!(!report.profiles[2].meets_toq);
        assert!((report.chosen_speedup() - 2.5).abs() < 1e-9);
        assert_eq!(report.chosen_quality(), 95.0);
    }

    #[test]
    fn tuner_falls_back_to_exact_when_nothing_qualifies() {
        let mut app = Mock::new(vec![(50.0, 100), (60.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, None);
        assert_eq!(report.chosen_speedup(), 1.0);
        assert_eq!(report.chosen_quality(), 100.0);
    }

    #[test]
    fn slower_than_exact_variants_are_not_chosen() {
        let mut app = Mock::new(vec![(99.0, 2000)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, None);
    }

    #[test]
    fn backoff_ladder_orders_by_speedup() {
        let mut app = Mock::new(vec![(95.0, 800), (95.0, 200), (95.0, 400)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.backoff_ladder(), vec![1, 2, 0]);
    }

    #[test]
    fn deployment_checks_periodically_and_backs_off_on_drift() {
        let mut app = Mock::new(vec![(95.0, 200), (96.0, 500)]);
        app.drift_after = Some(30);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        assert_eq!(report.chosen, Some(0));
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 5);
        assert_eq!(deploy.current_variant(), Some(0));

        let mut backed_off_at = None;
        for i in 0..40 {
            let result = deploy.invoke(&mut app, i).unwrap();
            if result.backed_off {
                backed_off_at = Some(i);
                break;
            }
        }
        // Drift starts after 30 total runs; the next periodic check (every
        // 5th invocation) must catch it and back off to variant 1.
        assert!(backed_off_at.is_some(), "watchdog must catch the drift");
        assert_eq!(deploy.current_variant(), Some(1));
    }

    #[test]
    fn deployment_exhausts_ladder_to_exact() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        app.drift_after = Some(0); // always drifted: checks always fail
        let report = {
            // Tune on a pristine copy so the variant qualifies.
            let mut clean = Mock::new(vec![(95.0, 200)]);
            Tuner::paper_default().tune(&mut clean).unwrap()
        };
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 1);
        let first = deploy.invoke(&mut app, 0).unwrap();
        assert_eq!(first.variant, Some(0));
        assert!(first.backed_off);
        let second = deploy.invoke(&mut app, 1).unwrap();
        assert_eq!(second.variant, None, "ladder exhausted -> exact");
        // Exact runs are never "checked".
        assert!(second.checked_quality.is_none());
    }

    #[test]
    fn check_cadence_respected() {
        let mut app = Mock::new(vec![(95.0, 200)]);
        let report = Tuner::paper_default().tune(&mut app).unwrap();
        let mut deploy = Deployment::new(&report, Toq::paper_default(), 10);
        let mut checks = 0;
        for i in 0..50 {
            if deploy
                .invoke(&mut app, i)
                .unwrap()
                .checked_quality
                .is_some()
            {
                checks += 1;
            }
        }
        assert_eq!(checks, 5);
    }

    #[test]
    fn empty_training_rejected() {
        let tuner = Tuner {
            toq: Toq::paper_default(),
            training_seeds: vec![],
        };
        let mut app = Mock::new(vec![]);
        assert!(tuner.tune(&mut app).is_err());
    }

    #[test]
    fn error_display() {
        assert!(!RuntimeError("x".into()).to_string().is_empty());
    }
}
