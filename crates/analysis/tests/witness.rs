//! Witness-chain contract tests for the criticality partition.
//!
//! Every Critical verdict carries a witness chain explaining *why* the
//! buffer must stay exact. Downstream consumers — the `analyze --json`
//! schema, the serving engine's per-worker re-partitioning, and the
//! error-propagation refusal messages — compare these chains textually,
//! so two properties are load-bearing:
//!
//! * **minimal** — exactly one entry per memory-mediated hop between the
//!   buffer and its sink, with the direct sink reached in a single
//!   entry; and
//! * **stable** — byte-identical chains no matter which program the
//!   kernel is embedded in, what unrelated kernels surround it (each
//!   serving worker partitions its own copy of the program), or what
//!   unrelated work rides along in the kernel body.

use std::collections::BTreeMap;

use paraprox_analysis::{partition_kernel, Criticality};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Ty};

/// How the fixture kernel is embedded when partitioned.
#[derive(Clone, Copy, Debug)]
enum Perm {
    /// The kernel is the only one in its program.
    Alone,
    /// Unrelated kernels are registered before and after it — the shape
    /// each serving worker sees when tenants share one program.
    AmongOtherKernels,
    /// Unrelated trailing statements ride along inside the kernel body.
    WithTrailingDecoys,
}

const PERMS: [Perm; 3] = [
    Perm::Alone,
    Perm::AmongOtherKernels,
    Perm::WithTrailingDecoys,
];

fn unrelated_kernel(name: &str) -> paraprox_ir::Kernel {
    let mut kb = KernelBuilder::new(name);
    let a = kb.buffer("a", Ty::F32, MemSpace::Global);
    let b = kb.buffer("b", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(b, gid.clone(), kb.load(a, gid));
    kb.finish()
}

/// Independent copy between two decoy buffers, appended after the real
/// body so it shifts no statement path the witnesses mention.
fn trailing_decoys(kb: &mut KernelBuilder) {
    let din = kb.buffer("decoy_in", Ty::F32, MemSpace::Global);
    let dout = kb.buffer("decoy_out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("decoy_gid", KernelBuilder::global_id_x());
    kb.store(dout, gid.clone(), kb.load(din, gid));
}

/// Partition the fixture under one embedding and collect each non-decoy
/// buffer's verdict and full witness chain, keyed by buffer name.
fn partition_with(
    perm: Perm,
    build: &dyn Fn(&mut KernelBuilder),
) -> BTreeMap<String, (Criticality, Vec<String>)> {
    let mut program = Program::new();
    if matches!(perm, Perm::AmongOtherKernels) {
        program.add_kernel(unrelated_kernel("warmup"));
        program.add_kernel(unrelated_kernel("prefetch"));
    }
    let mut kb = KernelBuilder::new("fixture");
    build(&mut kb);
    if matches!(perm, Perm::WithTrailingDecoys) {
        trailing_decoys(&mut kb);
    }
    let kid = program.add_kernel(kb.finish());
    if matches!(perm, Perm::AmongOtherKernels) {
        program.add_kernel(unrelated_kernel("drain"));
    }
    let part = partition_kernel(&program, kid);
    part.verdicts
        .iter()
        .filter(|v| !v.name.starts_with("decoy_"))
        .map(|v| (v.name.clone(), (v.criticality, v.witness.clone())))
        .collect()
}

/// Assert the fixture's verdicts and witness chains are byte-identical
/// under every embedding (and across repeated runs), then hand the
/// canonical map back for per-fixture minimality assertions.
fn stable_chains(
    build: &dyn Fn(&mut KernelBuilder),
) -> BTreeMap<String, (Criticality, Vec<String>)> {
    let base = partition_with(Perm::Alone, build);
    assert_eq!(
        partition_with(Perm::Alone, build),
        base,
        "repeated partitioning must be deterministic"
    );
    for perm in PERMS {
        assert_eq!(
            partition_with(perm, build),
            base,
            "witness chains drifted under {perm:?}"
        );
    }
    base
}

fn chain<'m>(map: &'m BTreeMap<String, (Criticality, Vec<String>)>, name: &str) -> &'m [String] {
    let (c, w) = &map[name];
    assert_eq!(*c, Criticality::Critical, "`{name}` should be Critical");
    w
}

/// Fixture 1 — gather: `idx` feeds a load address directly. The witness
/// must be a single entry naming the sink; no intermediate hops exist,
/// so none may be reported.
#[test]
fn direct_index_witness_is_one_minimal_entry() {
    let build = |kb: &mut KernelBuilder| {
        let idx = kb.buffer("idx", Ty::I32, MemSpace::Global);
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let i = kb.let_("i", kb.load(idx, gid.clone()));
        let v = kb.let_("v", kb.load(src, i));
        kb.store(dst, gid, v);
    };
    let map = stable_chains(&build);
    let w = chain(&map, "idx");
    assert_eq!(w.len(), 1, "direct sink needs exactly one hop: {w:?}");
    assert!(w[0].contains("index of a load from `src`"), "{w:?}");
    assert_eq!(map["src"].0, Criticality::Tolerant);
    assert_eq!(map["dst"].0, Criticality::Tolerant);
}

/// Fixture 2 — staged gather: `src` flows through `stage` before
/// indexing `lut`. `stage` sits one hop from the sink, `src` exactly
/// two — the memory-mediated closure must prepend precisely one edge.
#[test]
fn staged_index_witness_is_two_minimal_hops() {
    let build = |kb: &mut KernelBuilder| {
        let src = kb.buffer("src", Ty::I32, MemSpace::Global);
        let stage = kb.buffer("stage", Ty::I32, MemSpace::Global);
        let lut = kb.buffer("lut", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(src, gid.clone()));
        kb.store(stage, gid.clone(), v);
        let i = kb.let_("i", kb.load(stage, gid.clone()));
        let w = kb.let_("w", kb.load(lut, i));
        kb.store(dst, gid, w);
    };
    let map = stable_chains(&build);
    let stage_w = chain(&map, "stage");
    assert_eq!(
        stage_w.len(),
        1,
        "stage is one hop from the sink: {stage_w:?}"
    );
    let src_w = chain(&map, "src");
    assert_eq!(src_w.len(), 2, "src is exactly two hops away: {src_w:?}");
    assert!(src_w[0].contains("stored into `stage`"), "{src_w:?}");
    assert_eq!(
        src_w[1], stage_w[0],
        "src's tail must be stage's own chain, unchanged"
    );
    assert_eq!(map["lut"].0, Criticality::Tolerant);
}

/// Fixture 3 — control flow: `pred` guards a branch and `counts` bounds
/// a loop. Each is a direct sink with its own single-entry witness, and
/// neither chain may leak into the other's.
#[test]
fn branch_and_loop_bound_witnesses_stay_separate_and_minimal() {
    let build = |kb: &mut KernelBuilder| {
        let pred = kb.buffer("pred", Ty::Bool, MemSpace::Global);
        let counts = kb.buffer("counts", Ty::I32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let c = kb.let_("c", kb.load(pred, gid.clone()));
        let n = kb.let_("n", kb.load(counts, gid.clone()));
        kb.if_(c, |kb| {
            kb.store(dst, gid.clone(), Expr::f32(1.0));
        });
        kb.for_up("j", Expr::i32(0), n, Expr::i32(1), |kb, _j| {
            kb.store(dst, gid.clone(), Expr::f32(2.0));
        });
    };
    let map = stable_chains(&build);
    let pred_w = chain(&map, "pred");
    assert_eq!(pred_w.len(), 1, "{pred_w:?}");
    assert!(pred_w[0].contains("branch"), "{pred_w:?}");
    let counts_w = chain(&map, "counts");
    assert_eq!(counts_w.len(), 1, "{counts_w:?}");
    assert!(counts_w[0].contains("loop"), "{counts_w:?}");
    assert!(
        !pred_w[0].contains("loop") && !counts_w[0].contains("branch"),
        "chains must not cross: {pred_w:?} vs {counts_w:?}"
    );
    assert_eq!(map["dst"].0, Criticality::Tolerant);
}
