//! Per-lint fixture pairs: for every lint, one kernel that trips it and a
//! minimally-different twin that does not. These pin down both directions
//! of each check — the bug is caught, and the idiomatic fix is accepted.

use paraprox_analysis::{
    analyze_kernel, check_placements, check_races, propagate_kernel, ErrMag, Injection,
    LaunchContext, Severity,
};
use paraprox_ir::{Expr, Kernel, KernelBuilder, MemRef, MemSpace, Program, Ty, VarId};

/// A 1×1-grid, 32×1-block launch with one 32-element buffer per kernel
/// param (enough for every fixture here).
fn ctx_for(kernel: &Kernel) -> LaunchContext {
    let mut ctx = LaunchContext::with_dims((1, 1), (32, 1));
    for _ in &kernel.params {
        ctx.buffer_len.push(Some(32));
        ctx.scalar.push(None);
    }
    ctx
}

fn analyze(build: impl FnOnce(&mut KernelBuilder)) -> Vec<paraprox_analysis::Diagnostic> {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("fixture");
    build(&mut kb);
    let kid = program.add_kernel(kb.finish());
    let ctx = ctx_for(program.kernel(kid));
    analyze_kernel(&program, kid, Some(&ctx))
}

fn codes(diags: &[paraprox_analysis::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------------
// Race detector
// ---------------------------------------------------------------------------

/// Shared tile reversal: thread `tx` writes `s[tx]`, thread `31-tx` reads
/// it back. With the barrier this is the canonical correct exchange;
/// without it the write and the read share a phase and the detector must
/// produce a concrete two-thread witness (an *error*, not a hedge).
fn reversal(kb: &mut KernelBuilder, with_sync: bool) {
    let input = kb.buffer("in", Ty::I32, MemSpace::Global);
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let s = kb.shared_array("s", Ty::I32, 32);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(s, tx.clone(), kb.load(input, gid.clone()));
    if with_sync {
        kb.sync();
    }
    kb.store(out, gid, kb.load(s, Expr::i32(31) - tx));
}

// lint-fixture: race positive
#[test]
fn missing_barrier_race_is_an_error_with_a_witness() {
    let diags = analyze(|kb| reversal(kb, false));
    let race = diags
        .iter()
        .find(|d| d.code == "race")
        .expect("the unsynchronized reversal must be flagged");
    assert_eq!(race.severity, Severity::Error);
    assert!(
        race.message.contains("same barrier phase"),
        "witness message should name the colliding phase: {}",
        race.message
    );
}

// lint-fixture: race negative
#[test]
fn barrier_separated_reversal_is_clean() {
    let diags = analyze(|kb| reversal(kb, true));
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

/// Matmul-shaped staging: a loop whose body stages into a shared tile,
/// syncs, consumes the whole tile, and syncs again. Exercises the
/// double-walk that pairs a late-phase read with the *next* iteration's
/// write — correctly separated here by the trailing barrier.
#[test]
fn tiled_staging_loop_with_trailing_barrier_is_clean() {
    let diags = analyze(|kb| {
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let tile = kb.shared_array("tile", Ty::F32, 32);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("t", Expr::i32(0), Expr::i32(4), Expr::i32(1), |kb, t| {
            kb.store(
                tile,
                tx.clone(),
                kb.load(input, tx.clone()) + Expr::Cast(Ty::F32, Box::new(t.clone())),
            );
            kb.sync();
            kb.for_up("k", Expr::i32(0), Expr::i32(32), Expr::i32(1), |kb, k| {
                kb.assign(acc, Expr::Var(acc) + kb.load(tile, k));
            });
            kb.sync();
        });
        kb.store(out, gid, Expr::Var(acc));
    });
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

/// Dropping the trailing barrier lets iteration `t+1`'s tile write land
/// while a slow thread of iteration `t` is still reading — a cross-
/// iteration write-read race the double-walk must still catch.
#[test]
fn tiled_staging_loop_without_trailing_barrier_races() {
    let diags = analyze(|kb| {
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let tile = kb.shared_array("tile", Ty::F32, 32);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("t", Expr::i32(0), Expr::i32(4), Expr::i32(1), |kb, t| {
            kb.store(
                tile,
                tx.clone(),
                kb.load(input, tx.clone()) + Expr::Cast(Ty::F32, Box::new(t.clone())),
            );
            kb.sync();
            kb.for_up("k", Expr::i32(0), Expr::i32(32), Expr::i32(1), |kb, k| {
                kb.assign(acc, Expr::Var(acc) + kb.load(tile, k));
            });
            // no trailing sync
        });
        kb.store(out, gid, Expr::Var(acc));
    });
    assert!(
        diags.iter().any(|d| d.code == "race"),
        "cross-iteration write-read must be flagged, got: {:?}",
        codes(&diags)
    );
}

/// Without a launch context the pairwise search cannot enumerate threads;
/// only the structural barrier-divergence check runs.
#[test]
fn divergent_barrier_is_flagged_even_without_a_launch() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("divergent");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    kb.if_(tx.clone().lt(Expr::i32(16)), |kb| kb.sync());
    kb.store(out, tx, Expr::i32(1));
    let kid = program.add_kernel(kb.finish());
    let mut out_diags = Vec::new();
    check_races(program.kernel(kid), kid, None, &mut out_diags);
    assert!(
        out_diags.iter().any(|d| d.code == "barrier-divergence"),
        "got: {:?}",
        codes(&out_diags)
    );
}

// ---------------------------------------------------------------------------
// Bounds lint
// ---------------------------------------------------------------------------

// lint-fixture: oob positive
#[test]
fn off_by_one_store_past_the_buffer_is_flagged() {
    // gid ranges over [0, 31]; gid + 1 reaches 32 — one past the end.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(out, gid + Expr::i32(1), Expr::i32(7));
    });
    assert!(
        diags.iter().any(|d| d.code == "oob"),
        "got: {:?}",
        codes(&diags)
    );
}

// lint-fixture: oob negative
#[test]
fn guarded_negative_offset_is_accepted() {
    // `s[tx - 1]` alone would reach index -1, but the enclosing
    // `if tx >= 1` guard proves it non-negative — the relational fact the
    // scan kernels rely on.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let s = kb.shared_array("s", Ty::I32, 32);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        kb.store(s, tx.clone(), tx.clone());
        kb.sync();
        kb.if_(tx.clone().ge(Expr::i32(1)), |kb| {
            kb.store(out, tx.clone(), kb.load(s, tx.clone() - Expr::i32(1)));
        });
    });
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

#[test]
fn unguarded_negative_offset_is_flagged() {
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let s = kb.shared_array("s", Ty::I32, 32);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        kb.store(s, tx.clone(), tx.clone());
        kb.sync();
        kb.store(out, tx.clone(), kb.load(s, tx - Expr::i32(1)));
    });
    assert!(
        diags.iter().any(|d| d.code == "oob"),
        "got: {:?}",
        codes(&diags)
    );
}

// ---------------------------------------------------------------------------
// Dataflow lints
// ---------------------------------------------------------------------------

#[test]
fn conditionally_initialized_local_is_flagged() {
    // The local is assigned only in the then-arm, so the read after the
    // `If` may see garbage (intersection join over the arms).
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let mut maybe: Option<VarId> = None;
        kb.if_(tx.clone().lt(Expr::i32(16)), |kb| {
            maybe = Some(kb.let_mut("maybe", Ty::I32, Expr::i32(1)));
        });
        kb.store(out, tx, Expr::Var(maybe.unwrap()));
    });
    assert!(
        diags.iter().any(|d| d.code == "uninit"),
        "got: {:?}",
        codes(&diags)
    );
}

#[test]
fn default_then_conditional_overwrite_is_accepted() {
    // The declaration's value survives on the implicit else path, so it is
    // not a dead store, and the local is definitely assigned everywhere.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let v = kb.let_mut("v", Ty::I32, Expr::i32(0));
        kb.if_(tx.clone().lt(Expr::i32(16)), |kb| {
            kb.assign(v, Expr::i32(1))
        });
        kb.store(out, tx, Expr::Var(v));
    });
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

#[test]
fn overwritten_before_read_is_a_dead_store() {
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let v = kb.let_mut("v", Ty::I32, Expr::i32(1));
        kb.assign(v, Expr::i32(2)); // the init above is never observed
        kb.store(out, tx, Expr::Var(v));
    });
    assert!(
        diags.iter().any(|d| d.code == "dead-store"),
        "got: {:?}",
        codes(&diags)
    );
}

#[test]
fn loop_carried_value_is_not_a_dead_store() {
    // `acc` is written at the bottom of the loop and read at the top of
    // the next iteration — live around the back edge, not dead.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let acc = kb.let_mut("acc", Ty::I32, Expr::i32(0));
        kb.for_up("i", Expr::i32(0), Expr::i32(8), Expr::i32(1), |kb, i| {
            kb.assign(acc, Expr::Var(acc) + i);
        });
        kb.store(out, tx, Expr::Var(acc));
    });
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

#[test]
fn value_assigned_on_one_arm_only_is_flagged() {
    // Both arms exist, but only the then-arm assigns: the merge is the
    // intersection of the two arm states, so the read after the `If`
    // must be flagged as possibly uninitialized.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let mut slot: Option<VarId> = None;
        kb.if_else(
            tx.clone().lt(Expr::i32(16)),
            |kb| {
                slot = Some(kb.let_mut("slot", Ty::I32, Expr::i32(1)));
            },
            |kb| {
                // The else-arm touches other state but never `slot`.
                let _ = kb.let_("unrelated", Expr::i32(0));
            },
        );
        kb.store(out, tx, Expr::Var(slot.unwrap()));
    });
    assert!(
        diags.iter().any(|d| d.code == "uninit"),
        "got: {:?}",
        codes(&diags)
    );
}

#[test]
fn value_assigned_on_both_arms_is_accepted() {
    // The minimally-different twin: the else-arm also assigns, so the
    // intersection join sees the local defined on every path.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let slot = kb.let_mut("slot", Ty::I32, Expr::i32(0));
        kb.if_else(
            tx.clone().lt(Expr::i32(16)),
            |kb| kb.assign(slot, Expr::Var(slot) + Expr::i32(1)),
            |kb| kb.assign(slot, Expr::i32(2)),
        );
        kb.store(out, tx, Expr::Var(slot));
    });
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

#[test]
fn store_shadowed_across_a_barrier_is_dead() {
    // The write before the barrier is never read on any path: the
    // barrier itself must not count as a use of thread-local state.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let v = kb.let_mut("v", Ty::I32, Expr::i32(1));
        kb.sync();
        kb.assign(v, Expr::i32(2)); // shadows the init across the barrier
        kb.store(out, tx, Expr::Var(v));
    });
    assert!(
        diags.iter().any(|d| d.code == "dead-store"),
        "got: {:?}",
        codes(&diags)
    );
}

#[test]
fn store_consumed_before_the_barrier_is_live() {
    // Twin: staging the value into shared memory before the barrier
    // consumes the first write, so nothing is dead.
    let diags = analyze(|kb| {
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        let s = kb.shared_array("s", Ty::I32, 32);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        let v = kb.let_mut("v", Ty::I32, Expr::i32(1));
        kb.store(s, tx.clone(), Expr::Var(v));
        kb.sync();
        kb.assign(v, Expr::i32(2));
        kb.store(out, tx.clone(), Expr::Var(v) + kb.load(s, tx));
    });
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// Launch sanity
// ---------------------------------------------------------------------------

#[test]
fn degenerate_launch_dim_is_a_warning_not_a_panic() {
    // A zero block dimension used to silently disable the bounds lint
    // (every special evaluates to "unknown"); it must now surface as a
    // `launch` warning — and must never panic inside interval math.
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("degenerate");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(out, gid.clone() * gid, Expr::i32(1));
    let kid = program.add_kernel(kb.finish());
    let mut ctx = LaunchContext::with_dims((1, 1), (0, 1));
    ctx.buffer_len.push(Some(32));
    let diags = analyze_kernel(&program, kid, Some(&ctx));
    let launch = diags
        .iter()
        .find(|d| d.code == "launch")
        .expect("degenerate dim must be reported");
    assert_eq!(launch.severity, Severity::Warning);
    assert!(launch.message.contains("block.x"), "{}", launch.message);

    // The healthy twin launch stays clean.
    let mut ok = LaunchContext::with_dims((1, 1), (32, 1));
    ok.buffer_len.push(Some(32 * 32));
    let diags = analyze_kernel(&program, kid, Some(&ok));
    assert!(
        diags.iter().all(|d| d.code != "launch"),
        "unexpected: {:?}",
        codes(&diags)
    );
}

// ---------------------------------------------------------------------------
// Approximate-placement refusals
// ---------------------------------------------------------------------------

/// A gather kernel: `idx` feeds load addresses (Critical), `src` feeds
/// only stored data (Tolerant). The same program backs both directions
/// of the placement lint.
fn gather_program() -> (Program, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("gather");
    let idx = kb.buffer("idx", Ty::I32, MemSpace::Global);
    let src = kb.buffer("src", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let j = kb.let_("j", kb.load(idx, gid.clone()));
    kb.store(out, gid, kb.load(src, j));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

// lint-fixture: approx-placement positive
#[test]
fn placing_an_index_buffer_in_approx_memory_is_refused() {
    let (program, kid) = gather_program();
    let mut diags = Vec::new();
    check_placements(&program, &[(kid, 0)], &mut diags);
    let d = diags
        .iter()
        .find(|d| d.code == "approx-placement")
        .expect("placing the index buffer must be refused");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("Critical"),
        "refusal should cite the criticality witness: {}",
        d.message
    );
}

// lint-fixture: approx-placement negative
#[test]
fn placing_a_data_only_buffer_in_approx_memory_is_accepted() {
    // Twin placement on the same kernel: `src` (param 1) feeds stored
    // data only, so the partition calls it Tolerant and the plan passes.
    let (program, kid) = gather_program();
    let mut diags = Vec::new();
    check_placements(&program, &[(kid, 1)], &mut diags);
    assert!(diags.is_empty(), "unexpected: {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// Error-propagation refusals
// ---------------------------------------------------------------------------

/// A kernel whose loaded value is used either as a store *address*
/// (scatter) or as plain stored *data* (copy); error injected on the
/// load must be refused in the first shape and bounded in the second.
fn value_use_program(as_address: bool) -> (Program, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new(if as_address { "scatter" } else { "copy" });
    let input = kb.buffer("in", Ty::I32, MemSpace::Global);
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    let v = kb.let_("v", kb.load(input, tx.clone()));
    if as_address {
        kb.store(out, v, Expr::i32(1));
    } else {
        kb.store(out, tx, v);
    }
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

// lint-fixture: errorprop positive
#[test]
fn injected_error_reaching_a_store_address_is_refused() {
    let (program, kid) = value_use_program(true);
    let ctx = ctx_for(program.kernel(kid));
    let injections = [Injection::Load {
        kernel: kid,
        mem: MemRef::Param(0),
        mag: ErrMag::Abs(1.0),
    }];
    let (_, diags) = propagate_kernel(&program, kid, &ctx, &[None, None], &injections);
    let d = diags
        .iter()
        .find(|d| d.code == "errorprop" && d.severity == Severity::Error)
        .expect("error used as a store address must be a refusal");
    assert!(
        d.message.contains("address") || d.message.contains("index"),
        "refusal should name the Critical sink: {}",
        d.message
    );
}

// lint-fixture: errorprop negative
#[test]
fn injected_error_flowing_to_stored_data_is_bounded_not_refused() {
    let (program, kid) = value_use_program(false);
    let ctx = ctx_for(program.kernel(kid));
    let injections = [Injection::Load {
        kernel: kid,
        mem: MemRef::Param(0),
        mag: ErrMag::Abs(1.0),
    }];
    let (post, diags) = propagate_kernel(&program, kid, &ctx, &[None, None], &injections);
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "data-only flow must not be refused: {:?}",
        codes(&diags)
    );
    let out_err = post[1].err;
    assert!(
        out_err.is_finite() && out_err > 0.0,
        "output buffer should carry the finite injected bound, got {out_err}"
    );
}
