//! Dataflow core: definite assignment and liveness over the structured IR.
//!
//! The IR has no CFG — control flow is the statement tree itself — so both
//! analyses are tree walks with the classic joins expressed structurally:
//!
//! * **definite assignment** (forward): a local is definitely assigned
//!   after an `If` only when both arms assign it (intersection join); a
//!   `For` body may run zero times, so its assignments do not survive the
//!   loop. A `Var` read outside the definitely-assigned set is reported as
//!   a possibly-uninitialized use (`uninit`).
//! * **liveness** (backward): a `Let`/`Assign` whose bound value is never
//!   read before the next write (or the end of the kernel) is a dead store
//!   (`dead-store`). Loop bodies are iterated to a fixpoint so values
//!   carried around the back edge stay live.
//!
//! Both lints are advisory (`Severity::Warning`): neither can make a
//! correct kernel compute wrong values, but both flag code the programmer
//! probably did not mean to write.
//!
//! Statement paths follow the flattened child-index convention of
//! `paraprox_patterns::StmtPath`: an `If`'s else-arm children are numbered
//! after its then-arm children.

use std::collections::BTreeSet;

use paraprox_ir::{for_each_expr, Expr, Kernel, KernelId, Stmt, VarId};

use crate::diag::{push_unique, Diagnostic, Severity};

fn vars_read(e: &Expr, out: &mut BTreeSet<VarId>) {
    for_each_expr(e, &mut |n| {
        if let Expr::Var(v) = n {
            out.insert(*v);
        }
    });
}

fn local_name(kernel: &Kernel, var: VarId) -> String {
    kernel
        .locals
        .get(var.index())
        .map(|d| d.name.clone())
        .unwrap_or_else(|| var.to_string())
}

/// Run both dataflow lints on one kernel.
pub fn check_dataflow(kernel: &Kernel, id: KernelId, out: &mut Vec<Diagnostic>) {
    let mut cx = Dataflow {
        kernel,
        id,
        path: Vec::new(),
    };
    let mut assigned = BTreeSet::new();
    let mut reported = BTreeSet::new();
    cx.uninit(&kernel.body, 0, &mut assigned, &mut reported, out);
    let mut live = BTreeSet::new();
    cx.liveness(&kernel.body, 0, &mut live, true, out);
}

struct Dataflow<'a> {
    kernel: &'a Kernel,
    id: KernelId,
    path: Vec<usize>,
}

impl Dataflow<'_> {
    fn check_uses(
        &mut self,
        e: &Expr,
        assigned: &BTreeSet<VarId>,
        reported: &mut BTreeSet<VarId>,
        out: &mut Vec<Diagnostic>,
    ) {
        let mut used = BTreeSet::new();
        vars_read(e, &mut used);
        for v in used {
            if !assigned.contains(&v) && reported.insert(v) {
                push_unique(
                    out,
                    Diagnostic::new(
                        Severity::Warning,
                        self.id,
                        &self.kernel.name,
                        &self.path,
                        "uninit",
                        format!(
                            "local `{}` may be read before it is assigned",
                            local_name(self.kernel, v)
                        ),
                    ),
                );
            }
        }
    }

    /// Forward definite-assignment walk. `offset` shifts the recorded child
    /// indices (used for the flattened else-arm numbering).
    fn uninit(
        &mut self,
        stmts: &[Stmt],
        offset: usize,
        assigned: &mut BTreeSet<VarId>,
        reported: &mut BTreeSet<VarId>,
        out: &mut Vec<Diagnostic>,
    ) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.path.push(offset + i);
            match stmt {
                Stmt::Let { var, init } => {
                    self.check_uses(init, assigned, reported, out);
                    assigned.insert(*var);
                }
                Stmt::Assign { var, value } => {
                    self.check_uses(value, assigned, reported, out);
                    assigned.insert(*var);
                }
                Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                    self.check_uses(index, assigned, reported, out);
                    self.check_uses(value, assigned, reported, out);
                }
                Stmt::Sync => {}
                Stmt::Return(e) => self.check_uses(e, assigned, reported, out),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.check_uses(cond, assigned, reported, out);
                    let mut then_assigned = assigned.clone();
                    let mut else_assigned = assigned.clone();
                    self.uninit(then_body, 0, &mut then_assigned, reported, out);
                    self.uninit(
                        else_body,
                        then_body.len(),
                        &mut else_assigned,
                        reported,
                        out,
                    );
                    // Definitely assigned after the If = assigned on both
                    // arms.
                    *assigned = then_assigned
                        .intersection(&else_assigned)
                        .copied()
                        .collect();
                }
                Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                } => {
                    self.check_uses(init, assigned, reported, out);
                    self.check_uses(cond.bound(), assigned, reported, out);
                    self.check_uses(step.amount(), assigned, reported, out);
                    // The init clause always runs, even for zero-trip loops.
                    assigned.insert(*var);
                    let mut body_assigned = assigned.clone();
                    self.uninit(body, 0, &mut body_assigned, reported, out);
                    // The body may run zero times: its assignments don't
                    // survive the loop.
                }
            }
            self.path.pop();
        }
    }

    /// Backward liveness walk. `live` is the live set after the block and
    /// is updated to the live set before it; warnings are only pushed when
    /// `report` is true (fixpoint iterations run silently).
    fn liveness(
        &mut self,
        stmts: &[Stmt],
        offset: usize,
        live: &mut BTreeSet<VarId>,
        report: bool,
        out: &mut Vec<Diagnostic>,
    ) {
        for (i, stmt) in stmts.iter().enumerate().rev() {
            self.path.push(offset + i);
            match stmt {
                Stmt::Let { var, init } => {
                    if report && !live.contains(var) {
                        self.dead_store(*var, "bound to", out);
                    }
                    live.remove(var);
                    vars_read(init, live);
                }
                Stmt::Assign { var, value } => {
                    if report && !live.contains(var) {
                        self.dead_store(*var, "assigned to", out);
                    }
                    live.remove(var);
                    vars_read(value, live);
                }
                Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                    vars_read(index, live);
                    vars_read(value, live);
                }
                Stmt::Sync => {}
                Stmt::Return(e) => vars_read(e, live),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let mut then_live = live.clone();
                    let mut else_live = live.clone();
                    self.liveness(then_body, 0, &mut then_live, report, out);
                    self.liveness(else_body, then_body.len(), &mut else_live, report, out);
                    *live = then_live.union(&else_live).copied().collect();
                    vars_read(cond, live);
                }
                Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                } => {
                    // Fixpoint: anything a later iteration reads is live at
                    // the end of the body. Iterate silently until stable,
                    // then report once with the final sets.
                    let mut head = live.clone();
                    // The loop variable is read by the condition and step
                    // on every iteration.
                    head.insert(*var);
                    loop {
                        let mut pass = head.clone();
                        self.liveness(body, 0, &mut pass, false, out);
                        pass.insert(*var);
                        let merged: BTreeSet<VarId> = head.union(&pass).copied().collect();
                        if merged == head {
                            break;
                        }
                        head = merged;
                    }
                    if report {
                        let mut pass = head.clone();
                        self.liveness(body, 0, &mut pass, true, out);
                    }
                    *live = head;
                    // `init` writes the loop variable before anything reads
                    // it.
                    live.remove(var);
                    vars_read(init, live);
                    vars_read(cond.bound(), live);
                    vars_read(step.amount(), live);
                }
            }
            self.path.pop();
        }
    }

    fn dead_store(&mut self, var: VarId, verb: &str, out: &mut Vec<Diagnostic>) {
        push_unique(
            out,
            Diagnostic::new(
                Severity::Warning,
                self.id,
                &self.kernel.name,
                &self.path,
                "dead-store",
                format!(
                    "value {verb} `{}` is never read",
                    local_name(self.kernel, var)
                ),
            ),
        );
    }
}
