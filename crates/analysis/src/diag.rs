//! Diagnostics produced by the lints.
//!
//! Each diagnostic pins down a kernel, a statement path (the same flattened
//! child-index convention as `paraprox_patterns::StmtPath`), a severity, a
//! stable lint code, and a human-readable explanation. The `Display`
//! implementation renders a compact rustc-style report:
//!
//! ```text
//! error[race]: matmul_tiled @ stmt 4.2: write-write conflict on shared `a_s` ...
//! ```

use std::fmt;

use paraprox_ir::KernelId;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Conservative finding: the analysis could not prove safety.
    Warning,
    /// Proven problem: a concrete witness (thread pair, index value, …)
    /// exists.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// The kernel the finding is in.
    pub kernel: KernelId,
    /// Kernel name (copied so diagnostics render without the program).
    pub kernel_name: String,
    /// Flattened child-index path to the offending statement.
    pub path: Vec<usize>,
    /// Stable lint code (`race`, `oob`, `uninit`, `dead-store`,
    /// `barrier-divergence`, `type`, `launch`, `approx-placement`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(
        severity: Severity,
        kernel: KernelId,
        kernel_name: &str,
        path: &[usize],
        code: &'static str,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            kernel,
            kernel_name: kernel_name.to_string(),
            path: path.to_vec(),
            code,
            message: message.into(),
        }
    }

    /// Render the statement path as `3.1.0` (or `<kernel>` for the root).
    pub fn path_string(&self) -> String {
        if self.path.is_empty() {
            "<kernel>".to_string()
        } else {
            self.path
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(".")
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} @ stmt {}: {}",
            self.severity,
            self.code,
            self.kernel_name,
            self.path_string(),
            self.message
        )
    }
}

/// Every lint code that can be emitted at [`Severity::Error`].
///
/// This is the registry `scripts/check_lint_fixtures.sh` reads: each code
/// listed here must have a `// lint-fixture: <code> positive` and a
/// `// lint-fixture: <code> negative` marker in
/// `crates/analysis/tests/lints.rs`, or verify.sh fails the build. Keep
/// it in sync with the `Severity::Error` emission sites — a new
/// error-severity lint that is not listed here ships untested.
pub fn error_lint_codes() -> &'static [&'static str] {
    &["race", "oob", "approx-placement", "errorprop"]
}

/// Push `diag` unless an equal finding is already present.
pub(crate) fn push_unique(out: &mut Vec<Diagnostic>, diag: Diagnostic) {
    if !out.contains(&diag) {
        out.push(diag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic::new(
            Severity::Error,
            KernelId(0),
            "k",
            &[3, 1],
            "race",
            "write-write conflict",
        );
        assert_eq!(
            d.to_string(),
            "error[race]: k @ stmt 3.1: write-write conflict"
        );
        let root = Diagnostic::new(Severity::Warning, KernelId(0), "k", &[], "oob", "m");
        assert_eq!(root.to_string(), "warning[oob]: k @ stmt <kernel>: m");
    }

    #[test]
    fn push_unique_dedupes() {
        let d = Diagnostic::new(Severity::Warning, KernelId(1), "k", &[0], "oob", "m");
        let mut v = Vec::new();
        push_unique(&mut v, d.clone());
        push_unique(&mut v, d);
        assert_eq!(v.len(), 1);
    }
}
