//! The shared abstract-value domains of the analysis suite.
//!
//! Two lattices live here:
//!
//! - [`Interval`], the inclusive *integer* interval domain the bounds
//!   lint evaluates index expressions over. `None` is ⊤ (unknown); every
//!   arithmetic helper saturates at the `i64` rim so a huge-but-known
//!   range never wraps into a spuriously *small* one (wrapping would be
//!   unsound: a wrapped upper bound can certify an out-of-bounds access
//!   as in-bounds). The meet of two disjoint intervals is *empty* —
//!   [`meet`] makes that case explicit instead of every caller
//!   re-deriving it.
//! - [`VRange`], the *floating-point* value range the error-propagation
//!   analysis pairs with an absolute-error bound. ⊤ is `(-∞, +∞)`;
//!   arithmetic is outward-rounding in spirit (IEEE corner evaluation
//!   with NaN collapsing to ⊤), which keeps every operation sound for
//!   range containment.
//!
//! Both domains order by containment: `a ⊑ b` iff `a`'s concretization
//! is a subset of `b`'s. Join is interval hull ([`union`] /
//! [`VRange::join`]); the integer meet is intersection-or-empty.

/// Inclusive integer interval; `None` = unknown (⊤).
pub type Interval = Option<(i64, i64)>;

/// The singleton interval `[v, v]`.
pub fn exact(v: i64) -> Interval {
    Some((v, v))
}

/// Saturating interval addition.
pub fn add(a: Interval, b: Interval) -> Interval {
    let (a, b) = (a?, b?);
    Some((a.0.saturating_add(b.0), a.1.saturating_add(b.1)))
}

/// Saturating interval subtraction.
pub fn sub(a: Interval, b: Interval) -> Interval {
    let (a, b) = (a?, b?);
    Some((a.0.saturating_sub(b.1), a.1.saturating_sub(b.0)))
}

/// Saturating interval multiplication (corner evaluation).
pub fn mul(a: Interval, b: Interval) -> Interval {
    let (a, b) = (a?, b?);
    let products = [
        a.0.saturating_mul(b.0),
        a.0.saturating_mul(b.1),
        a.1.saturating_mul(b.0),
        a.1.saturating_mul(b.1),
    ];
    // Fold instead of `min()/max().unwrap()`: an empty corner set (can only
    // happen if the array above ever becomes dynamic, e.g. under a
    // degenerate launch dim) must degrade to "unknown", not panic.
    products
        .iter()
        .copied()
        .fold(None, |acc: Option<(i64, i64)>, p| match acc {
            None => Some((p, p)),
            Some((lo, hi)) => Some((lo.min(p), hi.max(p))),
        })
}

/// Join (interval hull); unknown absorbs.
pub fn union(a: Interval, b: Interval) -> Interval {
    let (a, b) = (a?, b?);
    Some((a.0.min(b.0), a.1.max(b.1)))
}

/// Meet of two *known* intervals: their intersection, or `None` when they
/// are disjoint (the empty interval ⊥ — the guarded path is infeasible).
/// Callers must treat the empty meet as "no refinement possible", never
/// as ⊤: conflating ⊥ with unknown silently widens an infeasible path
/// back into the analysis.
pub fn meet(a: (i64, i64), b: (i64, i64)) -> Option<(i64, i64)> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    (lo <= hi).then_some((lo, hi))
}

/// Saturating left shift of a single non-negative value: shifting any bit
/// past the sign position pins the result to `i64::MAX` instead of
/// wrapping negative (the overflow-saturation fix the shared domain
/// makes uniform — `<<` on `i64` silently discards overflowed bits).
pub fn shl_sat(v: i64, s: u32) -> i64 {
    debug_assert!(v >= 0, "shl_sat is defined for non-negative values");
    if v == 0 {
        return 0;
    }
    if s >= 63 || v > (i64::MAX >> s) {
        i64::MAX
    } else {
        v << s
    }
}

/// Saturating interval left-shift by a known non-negative amount, for
/// non-negative intervals.
pub fn shl(a: (i64, i64), s: u32) -> (i64, i64) {
    (shl_sat(a.0, s), shl_sat(a.1, s))
}

/// A closed floating-point range `[lo, hi]`; ⊤ is `(-∞, +∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VRange {
    /// Lower bound (may be `-∞`).
    pub lo: f64,
    /// Upper bound (may be `+∞`).
    pub hi: f64,
}

impl VRange {
    /// The unknown range (⊤).
    pub fn top() -> VRange {
        VRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The singleton range `[v, v]` (⊤ for non-finite `v`).
    pub fn exact(v: f64) -> VRange {
        if v.is_finite() {
            VRange { lo: v, hi: v }
        } else {
            VRange::top()
        }
    }

    /// A range from explicit bounds, normalized: NaN ⇒ ⊤, inverted
    /// bounds reordered.
    pub fn new(lo: f64, hi: f64) -> VRange {
        if lo.is_nan() || hi.is_nan() {
            return VRange::top();
        }
        VRange {
            lo: lo.min(hi),
            hi: lo.max(hi),
        }
    }

    /// Whether both bounds are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Join: the hull of both ranges.
    pub fn join(self, other: VRange) -> VRange {
        VRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Width `hi - lo` (∞ for unbounded ranges).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Largest absolute magnitude in the range (∞ for unbounded).
    pub fn max_abs(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest absolute magnitude in the range (0 when it straddles 0).
    pub fn min_abs(&self) -> f64 {
        if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// The range dilated by an absolute error `e` on both sides.
    pub fn dilate(self, e: f64) -> VRange {
        if e == 0.0 {
            return self;
        }
        VRange::new(self.lo - e, self.hi + e)
    }

    fn corners(a: VRange, b: VRange, f: impl Fn(f64, f64) -> f64) -> VRange {
        let cs = [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cs {
            if c.is_nan() {
                return VRange::top();
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        VRange { lo, hi }
    }

    /// Elementwise minimum.
    pub fn min_r(self, b: VRange) -> VRange {
        VRange::new(self.lo.min(b.lo), self.hi.min(b.hi))
    }

    /// Elementwise maximum.
    pub fn max_r(self, b: VRange) -> VRange {
        VRange::new(self.lo.max(b.lo), self.hi.max(b.hi))
    }
}

/// Range addition.
impl std::ops::Add for VRange {
    type Output = VRange;
    fn add(self, b: VRange) -> VRange {
        VRange::new(self.lo + b.lo, self.hi + b.hi)
    }
}

/// Range subtraction.
impl std::ops::Sub for VRange {
    type Output = VRange;
    fn sub(self, b: VRange) -> VRange {
        VRange::new(self.lo - b.hi, self.hi - b.lo)
    }
}

/// Range multiplication (corner evaluation; `0 × ∞` collapses to ⊤).
impl std::ops::Mul for VRange {
    type Output = VRange;
    fn mul(self, b: VRange) -> VRange {
        VRange::corners(self, b, |x, y| x * y)
    }
}

/// Range division; ⊤ whenever the divisor range can touch 0.
impl std::ops::Div for VRange {
    type Output = VRange;
    fn div(self, b: VRange) -> VRange {
        if b.lo <= 0.0 && b.hi >= 0.0 {
            return VRange::top();
        }
        VRange::corners(self, b, |x, y| x / y)
    }
}

/// Negation.
impl std::ops::Neg for VRange {
    type Output = VRange;
    fn neg(self) -> VRange {
        VRange::new(-self.hi, -self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_saturates_instead_of_wrapping() {
        // `(1 << 62) << 1` wraps negative under plain `<<`; the shared
        // domain must pin it at the rim so a huge known index can never
        // masquerade as a small (in-bounds) one.
        assert_eq!(shl_sat(1 << 62, 1), i64::MAX);
        assert_eq!(shl_sat(1, 62), 1 << 62);
        assert_eq!(shl_sat(1, 63), i64::MAX);
        assert_eq!(shl_sat(0, 63), 0);
        assert_eq!(shl_sat(3, 2), 12);
        assert_eq!(shl((0, i64::MAX / 2 + 1), 1), (0, i64::MAX));
    }

    #[test]
    fn meet_of_disjoint_intervals_is_empty() {
        assert_eq!(meet((0, 3), (5, 9)), None);
        assert_eq!(meet((0, 5), (5, 9)), Some((5, 5)));
        assert_eq!(meet((0, 10), (2, 4)), Some((2, 4)));
    }

    #[test]
    fn saturating_arith_never_wraps() {
        assert_eq!(add(exact(i64::MAX), exact(1)), Some((i64::MAX, i64::MAX)));
        assert_eq!(sub(exact(i64::MIN), exact(1)), Some((i64::MIN, i64::MIN)));
        assert_eq!(
            mul(exact(i64::MAX / 2 + 1), exact(2)),
            Some((i64::MAX, i64::MAX))
        );
        assert_eq!(add(None, exact(1)), None);
        assert_eq!(union(exact(1), exact(5)), Some((1, 5)));
    }

    #[test]
    fn vrange_basics() {
        let r = VRange::new(-2.0, 3.0);
        assert_eq!(r.width(), 5.0);
        assert_eq!(r.max_abs(), 3.0);
        assert_eq!(r.min_abs(), 0.0);
        assert_eq!(VRange::new(2.0, 3.0).min_abs(), 2.0);
        assert_eq!(VRange::new(-3.0, -2.0).min_abs(), 2.0);
        assert!(VRange::top() == VRange::exact(f64::NAN));
        // Inverted bounds normalize.
        assert_eq!(VRange::new(3.0, -2.0), r.join(VRange::exact(0.0)));
    }

    #[test]
    fn vrange_arith_is_containing() {
        let a = VRange::new(1.0, 2.0);
        let b = VRange::new(-1.0, 3.0);
        let m = a * b;
        assert!(m.lo <= -2.0 && m.hi >= 6.0);
        // Division by a zero-straddling range is unknown.
        assert_eq!(a / b, VRange::top());
        assert_eq!(a / VRange::new(2.0, 4.0), VRange::new(0.25, 1.0));
        assert_eq!(a.dilate(0.5), VRange::new(0.5, 2.5));
        // 0 × ∞ collapses to ⊤ rather than NaN.
        assert_eq!(VRange::exact(0.0) * VRange::top(), VRange::top());
    }
}
