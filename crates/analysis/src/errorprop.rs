//! Static error propagation: per-knob error injection over a paired
//! (value-range, absolute-error) abstract domain.
//!
//! Every Paraprox approximation knob perturbs a value at a known program
//! point: memoization quantizes a function's return value, stencil
//! approximation replicates a load within its reaching distance,
//! reduction skipping rescales a loop's accumulators, scan prediction
//! perturbs a phase input, and the approximate memory space flips bits
//! in loaded words. This module models each knob as an [`Injection`] and
//! abstractly interprets the *exact* kernel IR, propagating the injected
//! error through arithmetic, calls, conditionals, counted loops
//! (bounded abstract unrolling with a join-widening fallback), barriers,
//! and atomics, down to a per-pipeline-slot absolute error bound.
//!
//! The abstract value is [`Aval`]: a [`VRange`] paired with an absolute
//! error `err ≥ 0`, meaning "the exact execution's value lies in
//! `range`, and the approximate execution's value differs from it by at
//! most `err`". Soundness of every transfer function is with respect to
//! that reading; when a bound cannot be established the error goes to
//! `+∞`, never to an optimistic finite value.
//!
//! **Refusal instead of a bound.** Error reaching a *Critical* sink —
//! a load/store/atomic address, a branch condition, a loop bound, or a
//! buffer the criticality partition ([`crate::partition`]) classifies as
//! Critical — cannot be bounded by interval reasoning (one flipped
//! branch or index rewrites arbitrary memory). Those flows produce an
//! error-severity `errorprop` [`Diagnostic`] and the rung is *refused*:
//! its static bound is reported as unbounded and tuners must treat it as
//! failing every TOQ.

use std::collections::BTreeMap;

use paraprox_ir::{
    AtomicOp, BinOp, Expr, FuncId, Kernel, KernelId, LoopCond, LoopStep, MemRef, Program, Scalar,
    Special, Stmt, Ty, UnOp, VarId,
};

use crate::context::LaunchContext;
use crate::diag::{push_unique, Diagnostic, Severity};
use crate::interval::VRange;
use crate::partition::{partition_kernel, Criticality, KernelPartition};

/// Statement-visit budget per launch; beyond this the interpretation is
/// abandoned and every slot error widens to `+∞` (sound, never silent).
const STEP_BUDGET: usize = 400_000;

/// Concrete loop-simulation cap: counted loops with more iterations than
/// this are handled by the join-widening fallback instead of unrolling.
const UNROLL_CAP: usize = 65_536;

/// Join-widening iterations before remaining unstable entries go to ⊤/∞.
const WIDEN_ROUNDS: usize = 8;

/// Magnitude of an injected error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrMag {
    /// A fixed absolute perturbation.
    Abs(f64),
    /// A fraction of the perturbed buffer's value-range width at the
    /// injection point (stencil replication stays within the buffer's
    /// own values, so its error is naturally range-relative).
    RangeFrac(f64),
}

impl ErrMag {
    fn resolve(self, range: VRange) -> f64 {
        match self {
            ErrMag::Abs(a) => a.max(0.0),
            ErrMag::RangeFrac(f) => {
                let w = range.width();
                if w.is_finite() {
                    (f.max(0.0) * w).max(0.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// One approximation knob, modeled as error injected at its program point.
#[derive(Debug, Clone, PartialEq)]
pub enum Injection {
    /// Every load from `mem` inside `kernel` is perturbed by `mag`
    /// (stencil tile replication, scan subarray prediction, approximate
    /// memory bit flips).
    Load {
        /// Kernel whose loads are perturbed.
        kernel: KernelId,
        /// The perturbed buffer or shared array.
        mem: MemRef,
        /// Perturbation magnitude.
        mag: ErrMag,
    },
    /// Every call of `func` returns a value perturbed by at most `abs`
    /// (memo-table quantization step).
    Call {
        /// The memoized function.
        func: FuncId,
        /// Quantization error bound.
        abs: f64,
    },
    /// The counted loop at statement `path` inside `kernel` skips a
    /// fraction of its iterations: every accumulator it carries leaves
    /// the loop with an extra relative error `rel` of its magnitude
    /// (reduction skip-rate scaling).
    LoopScale {
        /// Kernel containing the loop.
        kernel: KernelId,
        /// Statement path of the `For` (as in [`Diagnostic::path`]).
        path: Vec<usize>,
        /// Relative error: `(skip - 1) / skip` for skip rate `skip`.
        rel: f64,
    },
}

/// Abstract buffer state at a pipeline slot: the exact execution's value
/// range and the accumulated approximation error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotState {
    /// Value range of the exact execution.
    pub range: VRange,
    /// Absolute error bound vs the exact execution (`+∞` = unbounded).
    pub err: f64,
}

impl SlotState {
    /// A slot with a known exact range and no error yet.
    pub fn exact(range: VRange) -> SlotState {
        SlotState { range, err: 0.0 }
    }

    /// A fully unknown slot.
    pub fn top() -> SlotState {
        SlotState {
            range: VRange::top(),
            err: 0.0,
        }
    }
}

/// One kernel launch of a pipeline, with its context and the pipeline
/// slot each buffer parameter binds to (`None` for scalar params or
/// buffers outside the tracked slot set).
#[derive(Debug, Clone)]
pub struct LaunchModel {
    /// Kernel being launched.
    pub kernel: KernelId,
    /// Launch shape, buffer extents, scalar values.
    pub ctx: LaunchContext,
    /// Pipeline slot index per kernel parameter position.
    pub args: Vec<Option<usize>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Aval {
    range: VRange,
    err: f64,
}

impl Aval {
    fn new(range: VRange, err: f64) -> Aval {
        Aval {
            range,
            err: if err.is_nan() {
                f64::INFINITY
            } else {
                err.max(0.0)
            },
        }
    }

    fn top() -> Aval {
        Aval::new(VRange::top(), 0.0)
    }

    fn exact(v: f64) -> Aval {
        Aval::new(VRange::exact(v), 0.0)
    }

    fn join(self, other: Aval) -> Aval {
        Aval::new(self.range.join(other.range), self.err.max(other.err))
    }
}

struct Prop<'a> {
    program: &'a Program,
    kernel: &'a Kernel,
    id: KernelId,
    ctx: &'a LaunchContext,
    injections: &'a [Injection],
    env: BTreeMap<VarId, Aval>,
    mem: BTreeMap<MemRef, Aval>,
    /// Scalar argument bindings while interpreting a device function body
    /// (shadows `ctx.scalar` for `Expr::Param`).
    fargs: Option<Vec<Aval>>,
    /// Return-value accumulator while interpreting a device function.
    ret: Option<Aval>,
    path: Vec<usize>,
    steps: usize,
    exhausted: bool,
    out: Vec<Diagnostic>,
}

impl Prop<'_> {
    fn refuse(&mut self, msg: String) {
        push_unique(
            &mut self.out,
            Diagnostic::new(
                Severity::Error,
                self.id,
                &self.kernel.name,
                &self.path,
                "errorprop",
                msg,
            ),
        );
    }

    /// Refuse when an error-carrying value reaches a Critical sink.
    fn check_sink(&mut self, v: &Aval, sink: &str) {
        if v.err > 0.0 {
            self.refuse(format!(
                "approximation error (±{:.3e}) reaches {sink} — a Critical sink; \
                 refusing to bound this rung",
                v.err
            ));
        }
    }

    fn eval(&mut self, e: &Expr) -> Aval {
        match e {
            Expr::Const(s) => match s {
                Scalar::F32(v) => Aval::exact(f64::from(*v)),
                Scalar::I32(v) => Aval::exact(f64::from(*v)),
                Scalar::U32(v) => Aval::exact(f64::from(*v)),
                Scalar::Bool(b) => Aval::exact(if *b { 1.0 } else { 0.0 }),
            },
            Expr::Var(v) => self.env.get(v).copied().unwrap_or_else(Aval::top),
            Expr::Param(i) => {
                if let Some(args) = &self.fargs {
                    args.get(*i).copied().unwrap_or_else(Aval::top)
                } else {
                    match self.ctx.scalar.get(*i).copied().flatten() {
                        Some(Scalar::F32(v)) => Aval::exact(f64::from(v)),
                        Some(Scalar::I32(v)) => Aval::exact(f64::from(v)),
                        Some(Scalar::U32(v)) => Aval::exact(f64::from(v)),
                        Some(Scalar::Bool(b)) => Aval::exact(if b { 1.0 } else { 0.0 }),
                        None => Aval::top(),
                    }
                }
            }
            Expr::Special(s) => {
                let (gx, gy) = (f64::from(self.ctx.grid.0), f64::from(self.ctx.grid.1));
                let (bx, by) = (f64::from(self.ctx.block.0), f64::from(self.ctx.block.1));
                let range = match s {
                    Special::ThreadIdX => VRange::new(0.0, (bx - 1.0).max(0.0)),
                    Special::ThreadIdY => VRange::new(0.0, (by - 1.0).max(0.0)),
                    Special::BlockIdX => VRange::new(0.0, (gx - 1.0).max(0.0)),
                    Special::BlockIdY => VRange::new(0.0, (gy - 1.0).max(0.0)),
                    Special::BlockDimX => VRange::exact(bx),
                    Special::BlockDimY => VRange::exact(by),
                    Special::GridDimX => VRange::exact(gx),
                    Special::GridDimY => VRange::exact(gy),
                };
                Aval::new(range, 0.0)
            }
            Expr::Unary(op, a) => {
                let v = self.eval(a);
                unary(*op, v)
            }
            Expr::Binary(op, a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                binary(*op, va, vb)
            }
            Expr::Cmp(_, a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                // A comparison of perturbed operands can flip; the boolean
                // carries error 1 so any control sink downstream refuses.
                let err = if va.err > 0.0 || vb.err > 0.0 {
                    1.0
                } else {
                    0.0
                };
                Aval::new(VRange::new(0.0, 1.0), err)
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(cond);
                let (t, f) = (self.eval(if_true), self.eval(if_false));
                let hull = t.range.join(f.range);
                if c.err > 0.0 {
                    // The select may pick the wrong arm: the result can land
                    // anywhere in the dilated hull of both arms.
                    let w = hull.dilate(t.err.max(f.err)).width();
                    Aval::new(hull, t.err.max(f.err).max(w))
                } else {
                    Aval::new(hull, t.err.max(f.err))
                }
            }
            Expr::Cast(ty, a) => {
                let v = self.eval(a);
                match ty {
                    // Integer truncation moves a perturbed value by at most
                    // one extra unit.
                    Ty::I32 | Ty::U32 => Aval::new(
                        v.range.dilate(1.0),
                        if v.err > 0.0 { v.err + 1.0 } else { 0.0 },
                    ),
                    Ty::F32 => v,
                    Ty::Bool => {
                        Aval::new(VRange::new(0.0, 1.0), if v.err > 0.0 { 1.0 } else { 0.0 })
                    }
                }
            }
            Expr::Load { mem, index } => {
                let idx = self.eval(index);
                self.check_sink(&idx, "a load address");
                let mut v = self.mem.get(mem).copied().unwrap_or_else(Aval::top);
                for inj in self.injections {
                    if let Injection::Load {
                        kernel,
                        mem: imem,
                        mag,
                    } = inj
                    {
                        if *kernel == self.id && imem == mem {
                            v.err += mag.resolve(v.range);
                        }
                    }
                }
                Aval::new(v.range, v.err)
            }
            Expr::Call { func, args } => {
                let vals: Vec<Aval> = args.iter().map(|a| self.eval(a)).collect();
                let mut v = self.eval_func(*func, vals);
                for inj in self.injections {
                    if let Injection::Call { func: ifunc, abs } = inj {
                        if ifunc == func {
                            v.err += abs.max(0.0);
                        }
                    }
                }
                Aval::new(v.range, v.err)
            }
        }
    }

    /// Abstractly interpret a device function body under argument values.
    fn eval_func(&mut self, func: FuncId, args: Vec<Aval>) -> Aval {
        self.steps += 1;
        if self.exhausted {
            return Aval::new(VRange::top(), f64::INFINITY);
        }
        let body = self.program.func(func).body.clone();
        let saved_env = std::mem::take(&mut self.env);
        let saved_fargs = self.fargs.replace(args);
        let saved_ret = self.ret.take();
        self.walk(&body);
        let ret = self
            .ret
            .take()
            .unwrap_or_else(|| Aval::new(VRange::top(), f64::INFINITY));
        self.env = saved_env;
        self.fargs = saved_fargs;
        self.ret = saved_ret;
        ret
    }

    fn store_join(&mut self, mem: MemRef, v: Aval) {
        let entry = self.mem.entry(mem).or_insert(Aval {
            range: v.range,
            err: 0.0,
        });
        *entry = Aval::new(entry.range.join(v.range), entry.err.max(v.err));
    }

    /// Total thread count of the launch (for atomic error accumulation).
    fn thread_count(&self) -> f64 {
        let t = f64::from(self.ctx.grid.0)
            * f64::from(self.ctx.grid.1)
            * f64::from(self.ctx.block.0)
            * f64::from(self.ctx.block.1);
        t.max(1.0)
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.steps += 1;
            if self.steps > STEP_BUDGET {
                self.exhausted = true;
                return;
            }
            self.path.push(i);
            self.step(stmt);
            self.path.pop();
        }
    }

    fn step(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let v = self.eval(init);
                self.env.insert(*var, v);
            }
            Stmt::Store { mem, index, value } => {
                let idx = self.eval(index);
                self.check_sink(&idx, "a store address");
                let v = self.eval(value);
                self.store_join(*mem, v);
            }
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => {
                let idx = self.eval(index);
                self.check_sink(&idx, "an atomic address");
                let v = self.eval(value);
                let t = self.thread_count();
                let entry = self.mem.get(mem).copied().unwrap_or_else(Aval::top);
                let merged = match op {
                    // Up to T threads each contribute their own error.
                    AtomicOp::Add | AtomicOp::Inc => Aval::new(
                        entry.range + v.range * VRange::new(0.0, t),
                        entry.err + t * v.err,
                    ),
                    // Min/max select one contribution; error does not
                    // accumulate across threads.
                    AtomicOp::Min => Aval::new(entry.range.min_r(v.range), entry.err.max(v.err)),
                    AtomicOp::Max => Aval::new(entry.range.max_r(v.range), entry.err.max(v.err)),
                    // A single flipped bit in a bitwise combine is not
                    // interval-boundable.
                    AtomicOp::And | AtomicOp::Or | AtomicOp::Xor => Aval::new(
                        VRange::top(),
                        if v.err > 0.0 || entry.err > 0.0 {
                            f64::INFINITY
                        } else {
                            0.0
                        },
                    ),
                };
                self.mem.insert(*mem, merged);
            }
            Stmt::Sync => {}
            Stmt::Return(e) => {
                let v = self.eval(e);
                self.ret = Some(match self.ret {
                    Some(prev) => prev.join(v),
                    None => v,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond);
                self.check_sink(&c, "a branch condition");
                let pre_env = self.env.clone();
                let pre_mem = self.mem.clone();
                self.walk(then_body);
                let then_env = std::mem::replace(&mut self.env, pre_env);
                let then_mem = std::mem::replace(&mut self.mem, pre_mem);
                self.walk(else_body);
                join_maps(&mut self.env, &then_env);
                join_maps(&mut self.mem, &then_mem);
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let iv = self.eval(init);
                let bv = self.eval(cond.bound());
                let sv = self.eval(step.amount());
                for (v, what) in [
                    (&iv, "a loop start"),
                    (&bv, "a loop bound"),
                    (&sv, "a loop step"),
                ] {
                    self.check_sink(v, what);
                }
                match trip_values(&iv, &bv, &sv, cond, step) {
                    Some(values) => {
                        for v in values {
                            self.env.insert(*var, Aval::exact(v));
                            self.walk(body);
                            if self.exhausted {
                                return;
                            }
                        }
                    }
                    None => self.widen_loop(*var, body),
                }
                // Exit value of the loop variable: whatever failed the
                // condition; keep it unknown but error-free.
                self.env.insert(*var, Aval::top());
                self.apply_loop_scale(body);
            }
        }
    }

    /// Unknown trip count: join-iterate the body to a fixpoint, widening
    /// still-unstable entries to ⊤/∞ after [`WIDEN_ROUNDS`].
    fn widen_loop(&mut self, var: VarId, body: &[Stmt]) {
        self.env.insert(var, Aval::top());
        for _ in 0..WIDEN_ROUNDS {
            let pre_env = self.env.clone();
            let pre_mem = self.mem.clone();
            self.walk(body);
            if self.exhausted {
                return;
            }
            join_maps(&mut self.env, &pre_env);
            join_maps(&mut self.mem, &pre_mem);
            if self.env == pre_env && self.mem == pre_mem {
                return;
            }
        }
        // Not stable: widen everything the body writes.
        let mut vars = Vec::new();
        let mut mems = Vec::new();
        paraprox_ir::for_each_stmt(body, &mut |s| match s {
            Stmt::Let { var, .. } | Stmt::Assign { var, .. } => vars.push(*var),
            Stmt::Store { mem, .. } | Stmt::Atomic { mem, .. } => mems.push(*mem),
            _ => {}
        });
        for v in vars {
            let had_err = self.env.get(&v).is_some_and(|a| a.err > 0.0);
            self.env.insert(
                v,
                Aval::new(VRange::top(), if had_err { f64::INFINITY } else { 0.0 }),
            );
        }
        for m in mems {
            let had_err = self.mem.get(&m).is_some_and(|a| a.err > 0.0);
            self.mem.insert(
                m,
                Aval::new(VRange::top(), if had_err { f64::INFINITY } else { 0.0 }),
            );
        }
        // One more pass over the widened state so sink refusals under the
        // widened values are still surfaced.
        self.walk(body);
    }

    /// Apply any [`Injection::LoopScale`] matching the loop that just
    /// closed at `self.path`: every accumulator the body carries gains a
    /// relative error of its own magnitude.
    fn apply_loop_scale(&mut self, body: &[Stmt]) {
        let rels: Vec<f64> = self
            .injections
            .iter()
            .filter_map(|inj| match inj {
                Injection::LoopScale { kernel, path, rel } if *kernel == self.id => {
                    (path == &self.path).then_some(*rel)
                }
                _ => None,
            })
            .collect();
        if rels.is_empty() {
            return;
        }
        let rel: f64 = rels.iter().copied().sum();
        let mut vars = Vec::new();
        let mut mems = Vec::new();
        paraprox_ir::for_each_stmt(body, &mut |s| match s {
            Stmt::Assign { var, .. } => vars.push(*var),
            Stmt::Store { mem, .. } | Stmt::Atomic { mem, .. } => mems.push(*mem),
            _ => {}
        });
        for v in vars {
            if let Some(a) = self.env.get(&v).copied() {
                self.env
                    .insert(v, Aval::new(a.range, a.err + rel * a.range.max_abs()));
            }
        }
        for m in mems {
            if let Some(a) = self.mem.get(&m).copied() {
                self.mem
                    .insert(m, Aval::new(a.range, a.err + rel * a.range.max_abs()));
            }
        }
    }
}

fn join_maps<K: Ord + Copy>(into: &mut BTreeMap<K, Aval>, other: &BTreeMap<K, Aval>) {
    for (k, v) in other {
        match into.get(k) {
            Some(cur) => {
                let j = cur.join(*v);
                into.insert(*k, j);
            }
            None => {
                into.insert(*k, *v);
            }
        }
    }
}

/// Concrete loop-variable values when init/bound/step are all exact and
/// the loop terminates within [`UNROLL_CAP`] iterations.
fn trip_values(
    init: &Aval,
    bound: &Aval,
    step: &Aval,
    cond: &LoopCond,
    step_kind: &LoopStep,
) -> Option<Vec<f64>> {
    let exact_of = |a: &Aval| {
        (a.err == 0.0 && a.range.is_finite() && a.range.width() == 0.0).then_some(a.range.lo)
    };
    let (i0, b, s) = (exact_of(init)?, exact_of(bound)?, exact_of(step)?);
    let holds = |v: f64| match cond {
        LoopCond::Lt(_) => v < b,
        LoopCond::Le(_) => v <= b,
        LoopCond::Gt(_) => v > b,
        LoopCond::Ge(_) => v >= b,
    };
    let next = |v: f64| match step_kind {
        LoopStep::Add(_) => v + s,
        LoopStep::Sub(_) => v - s,
        LoopStep::Mul(_) => v * s,
        LoopStep::Shl(_) => v * s.exp2(),
        LoopStep::Shr(_) => ((v as i64) >> (s as i64).clamp(0, 63)) as f64,
    };
    let mut v = i0;
    let mut out = Vec::new();
    while holds(v) {
        out.push(v);
        if out.len() > UNROLL_CAP {
            return None;
        }
        let n = next(v);
        if n == v || !n.is_finite() {
            return None;
        }
        v = n;
    }
    Some(out)
}

fn unary(op: UnOp, v: Aval) -> Aval {
    let r = v.range;
    let d = r.dilate(v.err);
    match op {
        UnOp::Neg => Aval::new(-r, v.err),
        UnOp::Abs => Aval::new(VRange::new(r.min_abs(), r.max_abs()), v.err),
        UnOp::Not => Aval::new(VRange::top(), if v.err > 0.0 { f64::INFINITY } else { 0.0 }),
        UnOp::Exp => {
            let range = VRange::new(r.lo.exp(), r.hi.exp());
            // Lipschitz constant on the dilated input range.
            let err = if v.err == 0.0 {
                0.0
            } else {
                d.hi.exp() * v.err
            };
            Aval::new(range, err)
        }
        UnOp::Log => {
            let range = if r.lo > 0.0 {
                VRange::new(r.lo.ln(), r.hi.ln())
            } else {
                VRange::top()
            };
            let err = if v.err == 0.0 {
                0.0
            } else if d.lo > 0.0 {
                v.err / d.lo
            } else {
                f64::INFINITY
            };
            Aval::new(range, err)
        }
        UnOp::Sqrt => {
            let range = if r.lo >= 0.0 {
                VRange::new(r.lo.sqrt(), r.hi.sqrt())
            } else {
                VRange::top()
            };
            // |√x − √y| ≤ √|x − y| for x, y ≥ 0; tighter 1/(2√lo) when the
            // dilated range stays away from zero.
            let err = if v.err == 0.0 {
                0.0
            } else if d.lo > 0.0 {
                (v.err / (2.0 * d.lo.sqrt())).min(v.err.sqrt())
            } else if d.lo >= 0.0 {
                v.err.sqrt()
            } else {
                f64::INFINITY
            };
            Aval::new(range, err)
        }
        UnOp::Rsqrt => {
            let range = if r.lo > 0.0 {
                VRange::new(1.0 / r.hi.sqrt(), 1.0 / r.lo.sqrt())
            } else {
                VRange::top()
            };
            let err = if v.err == 0.0 {
                0.0
            } else if d.lo > 0.0 {
                0.5 * d.lo.powf(-1.5) * v.err
            } else {
                f64::INFINITY
            };
            Aval::new(range, err)
        }
        UnOp::Sin | UnOp::Cos => {
            // 1-Lipschitz, range within [-1, 1].
            Aval::new(VRange::new(-1.0, 1.0), v.err)
        }
        UnOp::Floor => Aval::new(r.dilate(1.0), if v.err > 0.0 { v.err + 1.0 } else { 0.0 }),
    }
}

fn binary(op: BinOp, a: Aval, b: Aval) -> Aval {
    match op {
        BinOp::Add => Aval::new(a.range + b.range, a.err + b.err),
        BinOp::Sub => Aval::new(a.range - b.range, a.err + b.err),
        BinOp::Mul => {
            // |ab − a'b'| ≤ |a|·eb + |b'|·ea with |b'| ≤ |b| + eb. Guard
            // each term so an unbounded magnitude paired with a zero error
            // contributes 0, not NaN.
            let term = |mag: f64, e: f64| if e == 0.0 { 0.0 } else { mag * e };
            let err = term(a.range.max_abs(), b.err) + term(b.range.max_abs() + b.err, a.err);
            Aval::new(a.range * b.range, err)
        }
        BinOp::Div => {
            let err = if a.err == 0.0 && b.err == 0.0 {
                0.0
            } else {
                let bd = b.range.dilate(b.err);
                let (blo, bdlo) = (b.range.min_abs(), bd.min_abs());
                if blo > 0.0 && bdlo > 0.0 {
                    let term = |mag: f64, e: f64| if e == 0.0 { 0.0 } else { mag * e };
                    (term(a.range.max_abs(), b.err) + term(b.range.max_abs(), a.err)) / (blo * bdlo)
                } else {
                    f64::INFINITY
                }
            };
            Aval::new(a.range / b.range, err)
        }
        BinOp::Rem => {
            // A perturbed operand can wrap the modulus to the other rim.
            let err = if a.err == 0.0 && b.err == 0.0 {
                0.0
            } else if b.range.is_finite() {
                b.range.max_abs()
            } else {
                f64::INFINITY
            };
            let range = if b.range.is_finite() {
                VRange::new(-b.range.max_abs(), b.range.max_abs())
            } else {
                VRange::top()
            };
            Aval::new(range, err)
        }
        BinOp::Min => Aval::new(a.range.min_r(b.range), a.err.max(b.err)),
        BinOp::Max => Aval::new(a.range.max_r(b.range), a.err.max(b.err)),
        BinOp::Pow => {
            let range = if a.range.lo > 0.0 && a.range.is_finite() && b.range.is_finite() {
                VRange::corner_pow(a.range, b.range)
            } else {
                VRange::top()
            };
            let err = if a.err == 0.0 && b.err == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            Aval::new(range, err)
        }
        // Bitwise operators: value ranges are not usefully trackable, and
        // a perturbed operand flips arbitrary bits.
        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => Aval::new(
            VRange::top(),
            if a.err > 0.0 || b.err > 0.0 {
                f64::INFINITY
            } else {
                0.0
            },
        ),
    }
}

impl VRange {
    /// Corner evaluation of `a^b` for a strictly positive finite base.
    fn corner_pow(a: VRange, b: VRange) -> VRange {
        let cs = [
            a.lo.powf(b.lo),
            a.lo.powf(b.hi),
            a.hi.powf(b.lo),
            a.hi.powf(b.hi),
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cs {
            if c.is_nan() {
                return VRange::top();
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        VRange::new(lo, hi)
    }
}

/// Interpret one kernel launch: seed each buffer parameter from `params`
/// (indexed by parameter position; `None` = unknown), walk the body, and
/// return the per-parameter post-states plus any refusal diagnostics.
pub fn propagate_kernel(
    program: &Program,
    kernel: KernelId,
    ctx: &LaunchContext,
    params: &[Option<SlotState>],
    injections: &[Injection],
) -> (Vec<SlotState>, Vec<Diagnostic>) {
    let k = program.kernel(kernel);
    let mut prop = Prop {
        program,
        kernel: k,
        id: kernel,
        ctx,
        injections,
        env: BTreeMap::new(),
        mem: BTreeMap::new(),
        fargs: None,
        ret: None,
        path: Vec::new(),
        steps: 0,
        exhausted: false,
        out: Vec::new(),
    };
    for (p, state) in params.iter().enumerate() {
        if let Some(s) = state {
            prop.mem.insert(MemRef::Param(p), Aval::new(s.range, s.err));
        }
    }
    prop.walk(&k.body);
    let exhausted = prop.exhausted;
    let mut states = Vec::with_capacity(k.params.len());
    for p in 0..k.params.len() {
        let a = prop
            .mem
            .get(&MemRef::Param(p))
            .copied()
            .unwrap_or_else(Aval::top);
        states.push(SlotState {
            range: a.range,
            err: if exhausted { f64::INFINITY } else { a.err },
        });
    }
    let mut out = prop.out;
    if exhausted {
        push_unique(
            &mut out,
            Diagnostic::new(
                Severity::Warning,
                kernel,
                &k.name,
                &[],
                "errorprop",
                format!(
                    "interpretation budget ({STEP_BUDGET} statement visits) exhausted; \
                     error bounds widened to +inf"
                ),
            ),
        );
    }
    (states, out)
}

/// Propagate injected error through an entire pipeline.
///
/// `launches` are the pipeline's kernel launches in execution order;
/// `slots` carries each pipeline buffer's value range and accumulated
/// error and is updated in place (written-back only for parameters the
/// kernel's effect summary shows it writes). After each launch, any
/// buffer carrying error that the criticality partition classifies as
/// Critical produces a refusal citing the partition's witness chain.
///
/// Returns every diagnostic; a [`Severity::Error`] entry means the
/// injected configuration must be *refused* (treated as unbounded), not
/// merely bounded.
pub fn propagate(
    program: &Program,
    launches: &[LaunchModel],
    slots: &mut [SlotState],
    injections: &[Injection],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut partitions: BTreeMap<KernelId, KernelPartition> = BTreeMap::new();
    for launch in launches {
        let k = program.kernel(launch.kernel);
        let params: Vec<Option<SlotState>> = (0..k.params.len())
            .map(|p| {
                launch
                    .args
                    .get(p)
                    .copied()
                    .flatten()
                    .and_then(|s| slots.get(s).copied())
            })
            .collect();
        let (post, diags) =
            propagate_kernel(program, launch.kernel, &launch.ctx, &params, injections);
        for d in diags {
            push_unique(&mut out, d);
        }
        let summary = crate::effects::summarize_kernel(program, launch.kernel);
        let partition = partitions
            .entry(launch.kernel)
            .or_insert_with(|| partition_kernel(program, launch.kernel));
        for (p, state) in post.iter().enumerate() {
            let mem = MemRef::Param(p);
            let written = summary.writes.contains(&mem) || summary.atomic_targets.contains(&mem);
            if state.err > 0.0 {
                if let Some(v) = partition.verdict(mem) {
                    if v.criticality == Criticality::Critical {
                        push_unique(
                            &mut out,
                            Diagnostic::new(
                                Severity::Error,
                                launch.kernel,
                                &k.name,
                                &[],
                                "errorprop",
                                format!(
                                    "approximation error (±{:.3e}) reaches Critical buffer \
                                     `{}` (taint: {}) — refusing to bound this rung",
                                    state.err,
                                    v.name,
                                    v.witness_string()
                                ),
                            ),
                        );
                    }
                }
            }
            if written {
                if let Some(slot) = launch.args.get(p).copied().flatten() {
                    if let Some(s) = slots.get_mut(slot) {
                        s.range = s.range.join(state.range);
                        s.err = s.err.max(state.err);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, KernelBuilder, MemSpace, Ty};

    fn ctx_1d(n: usize) -> LaunchContext {
        let mut ctx = LaunchContext::with_dims((1, 1), (n as u32, 1));
        ctx.buffer_len = vec![Some(n), Some(n)];
        ctx.scalar = vec![None, None];
        ctx
    }

    /// out[i] = in[i] * 2 + 1 — error on `in` scales by 2.
    fn scale_kernel() -> (Program, KernelId) {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("scale");
        let src = kb.buffer("in", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.load(src, gid.clone());
        kb.store(dst, gid, v * Expr::f32(2.0) + Expr::f32(1.0));
        let id = p.add_kernel(kb.finish());
        (p, id)
    }

    #[test]
    fn linear_kernel_scales_injected_error() {
        let (p, k) = scale_kernel();
        let ctx = ctx_1d(8);
        let params = vec![
            Some(SlotState::exact(VRange::new(0.0, 1.0))),
            Some(SlotState::exact(VRange::exact(0.0))),
        ];
        let inj = vec![Injection::Load {
            kernel: k,
            mem: MemRef::Param(0),
            mag: ErrMag::Abs(0.25),
        }];
        let (post, diags) = propagate_kernel(&p, k, &ctx, &params, &inj);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
        // err(in) = 0.25, out = in*2+1 → err(out) = 0.5.
        assert!((post[1].err - 0.5).abs() < 1e-12, "{:?}", post[1]);
        // Output range contains [1, 3].
        assert!(post[1].range.lo <= 1.0 && post[1].range.hi >= 3.0);
        // No injection → no error at all.
        let (post0, _) = propagate_kernel(&p, k, &ctx, &params, &[]);
        assert_eq!(post0[1].err, 0.0);
    }

    #[test]
    fn branch_on_injected_error_is_refused() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("gate");
        let src = kb.buffer("in", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.load(src, gid.clone());
        kb.if_(v.clone().gt(Expr::f32(0.5)), |kb| {
            kb.store(dst, gid.clone(), Expr::f32(1.0));
        });
        let k = p.add_kernel(kb.finish());
        let ctx = ctx_1d(8);
        let params = vec![
            Some(SlotState::exact(VRange::new(0.0, 1.0))),
            Some(SlotState::exact(VRange::exact(0.0))),
        ];
        let inj = vec![Injection::Load {
            kernel: k,
            mem: MemRef::Param(0),
            mag: ErrMag::Abs(0.1),
        }];
        let (_, diags) = propagate_kernel(&p, k, &ctx, &params, &inj);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Error && d.message.contains("branch")),
            "{diags:?}"
        );
        // Without the injection the same kernel is clean.
        let (_, clean) = propagate_kernel(&p, k, &ctx, &params, &[]);
        assert!(clean.iter().all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn counted_loop_accumulates_error_linearly() {
        // acc = Σ_{i<16} in[i]; err(in) = e → err(acc) ≤ 16 e.
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("sum");
        let src = kb.buffer("in", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("out", Ty::F32, MemSpace::Global);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(16), Expr::i32(1), |kb, i| {
            let v = kb.load(src, i);
            kb.assign(acc, Expr::from(acc) + v);
        });
        kb.store(dst, Expr::i32(0), Expr::from(acc));
        let k = p.add_kernel(kb.finish());
        let ctx = ctx_1d(16);
        let params = vec![
            Some(SlotState::exact(VRange::new(-1.0, 1.0))),
            Some(SlotState::exact(VRange::exact(0.0))),
        ];
        let inj = vec![Injection::Load {
            kernel: k,
            mem: MemRef::Param(0),
            mag: ErrMag::Abs(0.01),
        }];
        let (post, diags) = propagate_kernel(&p, k, &ctx, &params, &inj);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
        assert!((post[1].err - 0.16).abs() < 1e-9, "{:?}", post[1]);
        // Range of the sum is contained in [-16, 16] hull (plus the store
        // join with the initial slot range).
        assert!(post[1].range.lo >= -17.0 && post[1].range.hi <= 17.0);
    }

    #[test]
    fn loop_scale_injection_applies_relative_error() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("red");
        let src = kb.buffer("in", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("out", Ty::F32, MemSpace::Global);
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        kb.for_up("i", Expr::i32(0), Expr::i32(8), Expr::i32(1), |kb, i| {
            let v = kb.load(src, i);
            kb.assign(acc, Expr::from(acc) + v);
        });
        kb.store(dst, Expr::i32(0), Expr::from(acc));
        let k = p.add_kernel(kb.finish());
        let ctx = ctx_1d(8);
        let params = vec![
            Some(SlotState::exact(VRange::new(0.0, 1.0))),
            Some(SlotState::exact(VRange::exact(0.0))),
        ];
        // The accumulator loop is statement 1 (after the acc let).
        let inj = vec![Injection::LoopScale {
            kernel: k,
            path: vec![1],
            rel: 0.5,
        }];
        let (post, diags) = propagate_kernel(&p, k, &ctx, &params, &inj);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
        // acc range after 8 adds of [0,1] is [0,8]; rel 0.5 → err 4.
        assert!((post[1].err - 4.0).abs() < 1e-9, "{:?}", post[1]);
    }

    #[test]
    fn pipeline_propagates_across_launches() {
        let (p, k) = scale_kernel();
        let launches = vec![
            LaunchModel {
                kernel: k,
                ctx: ctx_1d(8),
                args: vec![Some(0), Some(1)],
            },
            LaunchModel {
                kernel: k,
                ctx: ctx_1d(8),
                args: vec![Some(1), Some(2)],
            },
        ];
        let mut slots = vec![
            SlotState::exact(VRange::new(0.0, 1.0)),
            SlotState::exact(VRange::exact(0.0)),
            SlotState::exact(VRange::exact(0.0)),
        ];
        let inj = vec![Injection::Load {
            kernel: k,
            mem: MemRef::Param(0),
            mag: ErrMag::Abs(0.25),
        }];
        let diags = propagate(&p, &launches, &mut slots, &inj);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
        // Launch 1: err 0.5 into slot 1. Launch 2 re-injects 0.25 on its
        // param-0 load (slot 1, err 0.75) and doubles: err 1.5 into slot 2.
        assert!((slots[1].err - 0.5).abs() < 1e-12, "{:?}", slots[1]);
        assert!((slots[2].err - 1.5).abs() < 1e-12, "{:?}", slots[2]);
        // The unwritten input slot is untouched.
        assert_eq!(slots[0].err, 0.0);
    }
}
