//! Out-of-bounds access lint from affine index ranges.
//!
//! Every index expression is evaluated over a three-valued interval domain:
//! `Known(lo, hi)` (inclusive, in `i64` with saturating arithmetic) or
//! unknown (`None`). Thread/block specials take their ranges from the
//! [`LaunchContext`]; `if` guards of the common `index < n` shape refine
//! variable intervals inside the guarded arm; counted loops bound their
//! loop variable from the init/bound/step clauses.
//!
//! Guards whose operands are not plain variables still help: each enclosing
//! `Cmp` is kept as a *relational fact*, and a subtraction `a - b` under a
//! fact `a >= b` has its lower bound clamped to zero (the scan kernels'
//! `s[tid - d]` under `if (tid >= d)` needs exactly this).
//!
//! A `Load`/`Store`/`Atomic` whose index interval lies entirely outside the
//! target extent is an error (a concrete witness exists for every thread);
//! a partially-outside interval is a warning. An *unknown* interval is
//! deliberately silent — data-dependent gather indices would otherwise
//! drown the report in false positives. That under-approximation is the
//! lint's documented escape hatch; the executor still bounds-checks at
//! runtime.

use std::collections::BTreeMap;

use paraprox_ir::{BinOp, CmpOp, Expr, Kernel, KernelId, MemRef, Scalar, Special, Stmt, Ty, VarId};

use crate::context::LaunchContext;
use crate::diag::{push_unique, Diagnostic, Severity};
use crate::interval::{add, exact, meet, mul, shl, sub, union, Interval};

struct Bounds<'a> {
    kernel: &'a Kernel,
    id: KernelId,
    ctx: &'a LaunchContext,
    env: BTreeMap<VarId, Interval>,
    /// Comparisons known to hold here (enclosing `if` guards), for
    /// relational clamping of differences.
    facts: Vec<(Expr, CmpOp, Expr)>,
    path: Vec<usize>,
}

impl Bounds<'_> {
    fn eval(&self, e: &Expr) -> Interval {
        match e {
            Expr::Const(Scalar::I32(v)) => exact(i64::from(*v)),
            Expr::Const(Scalar::U32(v)) => exact(i64::from(*v)),
            Expr::Const(_) => None,
            Expr::Var(v) => self.env.get(v).copied().flatten(),
            Expr::Param(i) => self.ctx.scalar_int(*i).and_then(exact),
            Expr::Special(s) => {
                let (gx, gy) = (i64::from(self.ctx.grid.0), i64::from(self.ctx.grid.1));
                let (bx, by) = (i64::from(self.ctx.block.0), i64::from(self.ctx.block.1));
                match s {
                    Special::ThreadIdX => (bx > 0).then_some((0, bx - 1)),
                    Special::ThreadIdY => (by > 0).then_some((0, by - 1)),
                    Special::BlockIdX => (gx > 0).then_some((0, gx - 1)),
                    Special::BlockIdY => (gy > 0).then_some((0, gy - 1)),
                    Special::BlockDimX => (bx > 0).then_some((bx, bx)),
                    Special::BlockDimY => (by > 0).then_some((by, by)),
                    Special::GridDimX => (gx > 0).then_some((gx, gx)),
                    Special::GridDimY => (gy > 0).then_some((gy, gy)),
                }
            }
            Expr::Unary(paraprox_ir::UnOp::Neg, a) => sub(exact(0), self.eval(a)),
            Expr::Unary(..) => None,
            Expr::Cast(Ty::I32 | Ty::U32, a) => {
                // Integer-to-integer casts preserve small non-negative
                // ranges; anything that could wrap is unknown.
                let r = self.eval(a)?;
                (r.0 >= 0 && r.1 <= i64::from(u32::MAX)).then_some(r)
            }
            Expr::Cast(..) => None,
            Expr::Cmp(..) => None,
            Expr::Binary(op, a, b) => {
                let (ra, rb) = (self.eval(a), self.eval(b));
                match op {
                    BinOp::Add => add(ra, rb),
                    BinOp::Sub => self.clamp_difference(a, b, sub(ra, rb)),
                    BinOp::Mul => mul(ra, rb),
                    BinOp::Min => {
                        let (a, b) = (ra?, rb?);
                        Some((a.0.min(b.0), a.1.min(b.1)))
                    }
                    BinOp::Max => {
                        let (a, b) = (ra?, rb?);
                        Some((a.0.max(b.0), a.1.max(b.1)))
                    }
                    BinOp::Div => {
                        // Only division by a positive constant keeps a
                        // usable range.
                        let (a, b) = (ra?, rb?);
                        (b.0 == b.1 && b.0 > 0 && a.0 >= 0).then(|| (a.0 / b.0, a.1 / b.0))
                    }
                    BinOp::Rem => {
                        let (a, b) = (ra?, rb?);
                        (b.0 == b.1 && b.0 > 0 && a.0 >= 0).then(|| (0, (b.0 - 1).min(a.1)))
                    }
                    BinOp::Shl => {
                        let (a, b) = (ra?, rb?);
                        // Saturating shift via the shared domain: a known
                        // huge operand pins at i64::MAX instead of wrapping
                        // into a spuriously small (in-bounds) range.
                        (b.0 == b.1 && (0..=31).contains(&b.0) && a.0 >= 0)
                            .then(|| shl(a, b.0 as u32))
                    }
                    BinOp::Shr => {
                        let (a, b) = (ra?, rb?);
                        (b.0 == b.1 && (0..=31).contains(&b.0) && a.0 >= 0)
                            .then(|| (a.0 >> b.0, a.1 >> b.0))
                    }
                    _ => None,
                }
            }
            Expr::Select {
                if_true, if_false, ..
            } => union(self.eval(if_true), self.eval(if_false)),
            Expr::Load { .. } | Expr::Call { .. } => None,
        }
    }

    /// Refine `env` with the constraints implied by `cond` holding.
    /// Handles `var CMP expr`, `expr CMP var`, and `&&` conjunctions; every
    /// comparison is additionally recorded as a relational fact.
    fn refine(&mut self, cond: &Expr) {
        match cond {
            Expr::Binary(BinOp::And, a, b) => {
                self.refine(a);
                self.refine(b);
            }
            Expr::Cmp(op, a, b) => {
                if let Expr::Var(v) = &**a {
                    if let Some(r) = self.eval(b) {
                        self.constrain(*v, *op, r);
                    }
                } else if let Expr::Var(v) = &**b {
                    if let Some(r) = self.eval(a) {
                        self.constrain(*v, flip(*op), r);
                    }
                }
                self.facts.push(((**a).clone(), *op, (**b).clone()));
            }
            _ => {}
        }
    }

    /// Tighten the interval of `a - b` using recorded relational facts
    /// (`a >= b` implies `a - b >= 0`, and so on).
    fn clamp_difference(&self, a: &Expr, b: &Expr, r: Interval) -> Interval {
        let (mut lo, mut hi) = r?;
        for (x, op, y) in &self.facts {
            let rel = if x == a && y == b {
                Some(*op)
            } else if x == b && y == a {
                Some(flip(*op))
            } else {
                None
            };
            match rel {
                Some(CmpOp::Ge) => lo = lo.max(0),
                Some(CmpOp::Gt) => lo = lo.max(1),
                Some(CmpOp::Le) => hi = hi.min(0),
                Some(CmpOp::Lt) => hi = hi.min(-1),
                Some(CmpOp::Eq) => (lo, hi) = (lo.max(0), hi.min(0)),
                Some(CmpOp::Ne) | None => {}
            }
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// Drop facts mentioning `var` — its value just changed.
    fn invalidate_facts(&mut self, var: VarId) {
        self.facts.retain(|(a, _, b)| {
            let mut found = false;
            for e in [a, b] {
                paraprox_ir::for_each_expr(e, &mut |n| {
                    if matches!(n, Expr::Var(v) if *v == var) {
                        found = true;
                    }
                });
            }
            !found
        });
    }

    /// Apply `v OP (lo..=hi)` to the interval of `v`.
    fn constrain(&mut self, v: VarId, op: CmpOp, (lo, hi): (i64, i64)) {
        let current = self.env.get(&v).copied().flatten();
        let bound = match op {
            CmpOp::Lt => (i64::MIN, hi.saturating_sub(1)),
            CmpOp::Le => (i64::MIN, hi),
            CmpOp::Gt => (lo.saturating_add(1), i64::MAX),
            CmpOp::Ge => (lo, i64::MAX),
            CmpOp::Eq => (lo, hi),
            CmpOp::Ne => return,
        };
        let refined = match current {
            // Empty meet (disjoint guard) means the path is infeasible; we
            // conservatively keep the current interval rather than refining.
            Some(c) => meet(c, bound),
            None => (bound.0 != i64::MIN && bound.1 != i64::MAX).then_some(bound),
        };
        if let Some(r) = refined {
            self.env.insert(v, Some(r));
        }
    }

    fn extent_of(&self, mem: MemRef) -> Option<i64> {
        match mem {
            MemRef::Shared(s) => self.kernel.shared.get(s.index()).map(|d| d.len as i64),
            MemRef::Param(i) => self
                .ctx
                .buffer_len
                .get(i)
                .copied()
                .flatten()
                .map(|l| l as i64),
        }
    }

    fn mem_name(&self, mem: MemRef) -> String {
        match mem {
            MemRef::Shared(s) => self
                .kernel
                .shared
                .get(s.index())
                .map(|d| format!("shared `{}`", d.name))
                .unwrap_or_else(|| format!("shared #{}", s.0)),
            MemRef::Param(i) => self
                .kernel
                .params
                .get(i)
                .map(|p| format!("buffer `{}`", p.name()))
                .unwrap_or_else(|| format!("buffer #{i}")),
        }
    }

    fn check_access(&mut self, mem: MemRef, index: &Expr, out: &mut Vec<Diagnostic>) {
        let Some(extent) = self.extent_of(mem) else {
            return;
        };
        let Some((lo, hi)) = self.eval(index) else {
            // Unknown range: deliberately silent (see module docs).
            return;
        };
        if lo >= extent || hi < 0 {
            push_unique(
                out,
                Diagnostic::new(
                    Severity::Error,
                    self.id,
                    &self.kernel.name,
                    &self.path,
                    "oob",
                    format!(
                        "index range [{lo}, {hi}] of {} lies entirely outside its extent {extent}",
                        self.mem_name(mem)
                    ),
                ),
            );
        } else if lo < 0 || hi >= extent {
            push_unique(
                out,
                Diagnostic::new(
                    Severity::Warning,
                    self.id,
                    &self.kernel.name,
                    &self.path,
                    "oob",
                    format!(
                        "index range [{lo}, {hi}] of {} may exceed its extent {extent}",
                        self.mem_name(mem)
                    ),
                ),
            );
        }
    }

    /// Check every load in `e` (loads can nest inside other indices).
    fn check_expr(&mut self, e: &Expr, out: &mut Vec<Diagnostic>) {
        paraprox_ir::for_each_expr(e, &mut |n| {
            if let Expr::Load { mem, index } = n {
                self.check_access(*mem, index, out);
            }
        });
    }

    fn walk(&mut self, stmts: &[Stmt], offset: usize, out: &mut Vec<Diagnostic>) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.path.push(offset + i);
            match stmt {
                Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                    self.check_expr(init, out);
                    let r = self.eval(init);
                    self.env.insert(*var, r);
                    self.invalidate_facts(*var);
                }
                Stmt::Store { mem, index, value } => {
                    self.check_expr(index, out);
                    self.check_expr(value, out);
                    self.check_access(*mem, index, out);
                }
                Stmt::Atomic {
                    mem, index, value, ..
                } => {
                    self.check_expr(index, out);
                    self.check_expr(value, out);
                    self.check_access(*mem, index, out);
                }
                Stmt::Sync => {}
                Stmt::Return(e) => self.check_expr(e, out),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.check_expr(cond, out);
                    let outer = self.env.clone();
                    let outer_facts = self.facts.len();
                    self.refine(cond);
                    self.walk(then_body, 0, out);
                    self.env = outer.clone();
                    self.facts.truncate(outer_facts);
                    if let Expr::Cmp(op, a, b) = cond {
                        // A single comparison has a usable negation.
                        let negated = Expr::Cmp(negate(*op), a.clone(), b.clone());
                        self.refine(&negated);
                    }
                    self.walk(else_body, then_body.len(), out);
                    // Values assigned under a condition are only union-known
                    // afterwards; drop to the conservative pre-state.
                    self.env = outer;
                    self.facts.truncate(outer_facts);
                }
                Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                } => {
                    self.check_expr(init, out);
                    self.check_expr(cond.bound(), out);
                    self.check_expr(step.amount(), out);
                    let outer = self.env.clone();
                    let outer_facts = self.facts.len();
                    self.env.insert(*var, self.loop_var_range(init, cond, step));
                    self.invalidate_facts(*var);
                    // Widen loop-carried variables before judging the body:
                    // anything assigned inside may hold a different value on
                    // later iterations.
                    let mut carried = Vec::new();
                    paraprox_ir::for_each_stmt(body, &mut |s| {
                        if let Stmt::Assign { var, .. } = s {
                            carried.push(*var);
                        }
                    });
                    for v in carried {
                        self.env.insert(v, None);
                        self.invalidate_facts(v);
                    }
                    self.walk(body, 0, out);
                    self.env = outer;
                    self.facts.truncate(outer_facts);
                    // The loop variable's final value is whatever failed the
                    // condition; keep it unknown after the loop.
                    self.env.insert(*var, None);
                }
            }
            self.path.pop();
        }
    }

    /// The interval of the loop variable *inside* the body, when the
    /// init/bound are known and the step direction is monotonic.
    fn loop_var_range(
        &self,
        init: &Expr,
        cond: &paraprox_ir::LoopCond,
        step: &paraprox_ir::LoopStep,
    ) -> Interval {
        use paraprox_ir::{LoopCond, LoopStep};
        let init_r = self.eval(init)?;
        let bound_r = self.eval(cond.bound())?;
        let amount_r = self.eval(step.amount())?;
        let increasing = match step {
            LoopStep::Add(_) => amount_r.0 > 0,
            LoopStep::Mul(_) => amount_r.0 > 1 && init_r.0 > 0,
            LoopStep::Shl(_) => amount_r.0 > 0 && init_r.0 > 0,
            LoopStep::Sub(_) | LoopStep::Shr(_) => false,
        };
        match (cond, increasing) {
            (LoopCond::Lt(_), true) => Some((init_r.0, bound_r.1.saturating_sub(1))),
            (LoopCond::Le(_), true) => Some((init_r.0, bound_r.1)),
            (LoopCond::Gt(_), false) if matches!(step, LoopStep::Sub(_)) && amount_r.0 > 0 => {
                Some((bound_r.0.saturating_add(1), init_r.1))
            }
            (LoopCond::Ge(_), false) if matches!(step, LoopStep::Sub(_)) && amount_r.0 > 0 => {
                Some((bound_r.0, init_r.1))
            }
            _ => None,
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
    }
}

/// Run the bounds lint on one kernel under a concrete launch context.
pub fn check_bounds(kernel: &Kernel, id: KernelId, ctx: &LaunchContext, out: &mut Vec<Diagnostic>) {
    // A zero launch dimension launches no work at all: every special
    // becomes unknown (see `eval`), silently disabling the whole lint.
    // Surface that as a finding instead of analyzing blind.
    for (dim, val) in [
        ("grid.x", ctx.grid.0),
        ("grid.y", ctx.grid.1),
        ("block.x", ctx.block.0),
        ("block.y", ctx.block.1),
    ] {
        if val == 0 {
            push_unique(
                out,
                Diagnostic::new(
                    Severity::Warning,
                    id,
                    &kernel.name,
                    &[],
                    "launch",
                    format!(
                        "degenerate launch: {dim} is 0, no threads run and bounds \
                         analysis is vacuous"
                    ),
                ),
            );
        }
    }
    let mut b = Bounds {
        kernel,
        id,
        ctx,
        env: BTreeMap::new(),
        facts: Vec::new(),
        path: Vec::new(),
    };
    b.walk(&kernel.body, 0, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{KernelBuilder, MemSpace, Program};

    /// Render every bounds finding for a 1×1-grid, 32×1-block launch over
    /// 32-element buffers, as the exact `Display` lines users see.
    fn golden(build: impl FnOnce(&mut KernelBuilder)) -> Vec<String> {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("golden");
        build(&mut kb);
        let kid = program.add_kernel(kb.finish());
        let k = program.kernel(kid);
        let mut ctx = LaunchContext::with_dims((1, 1), (32, 1));
        for _ in &k.params {
            ctx.buffer_len.push(Some(32));
            ctx.scalar.push(None);
        }
        let mut out = Vec::new();
        check_bounds(k, kid, &ctx, &mut out);
        out.iter().map(|d| d.to_string()).collect()
    }

    /// The migration onto the shared `interval` domain must not move a
    /// single byte of the rendered diagnostics: the definite-error and
    /// may-exceed messages are pinned here verbatim.
    #[test]
    fn rendered_diagnostics_are_byte_stable() {
        let definite = golden(|kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            kb.store(out, gid + Expr::i32(32), Expr::i32(1));
        });
        assert_eq!(
            definite,
            vec![
                "error[oob]: golden @ stmt 1: index range [32, 63] of buffer `out` \
                 lies entirely outside its extent 32"
                    .to_string()
            ]
        );

        let partial = golden(|kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            kb.store(out, gid + Expr::i32(1), Expr::i32(1));
        });
        assert_eq!(
            partial,
            vec![
                "warning[oob]: golden @ stmt 1: index range [1, 32] of buffer `out` \
                 may exceed its extent 32"
                    .to_string()
            ]
        );
    }

    /// A shift whose result exceeds `i64` must pin at `i64::MAX` (the
    /// shared domain saturates) rather than wrapping into a spuriously
    /// small, silently in-bounds range — and the saturated bound itself
    /// is part of the pinned message.
    #[test]
    fn saturating_shift_renders_the_pinned_maximum() {
        let diags = golden(|kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            let x = kb.let_("x", gid * Expr::i32(2_000_000_000));
            let idx = Expr::Binary(BinOp::Shl, Box::new(x), Box::new(Expr::i32(31)));
            kb.store(out, idx, Expr::i32(1));
        });
        assert_eq!(
            diags,
            vec![
                "warning[oob]: golden @ stmt 2: index range [0, 9223372036854775807] \
                 of buffer `out` may exceed its extent 32"
                    .to_string()
            ]
        );
    }

    /// An infeasible guard (`gid < 0` for a non-negative `gid`) used to
    /// produce an empty meet; the refinement now conservatively keeps the
    /// current interval, so the guarded access still reports against the
    /// unrefined range — pinned here including the negative lower bound.
    #[test]
    fn infeasible_guard_keeps_the_outer_interval() {
        let diags = golden(|kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            kb.if_(gid.clone().lt(Expr::i32(0)), |kb| {
                kb.store(out, gid.clone() - Expr::i32(1), Expr::i32(1));
            });
        });
        assert_eq!(
            diags,
            vec![
                "warning[oob]: golden @ stmt 1.0: index range [-1, 30] of buffer \
                 `out` may exceed its extent 32"
                    .to_string()
            ]
        );
    }
}
