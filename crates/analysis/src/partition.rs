//! Buffer-criticality partitioning: which buffers may live in
//! approximate memory.
//!
//! Approximate memory (cheaper, occasionally bit-flipping DRAM) is only
//! sound for *payload* data — pixels, samples, weights — whose corruption
//! degrades output quality gracefully. Data that *addresses* memory,
//! *steers* control flow, or *synchronizes* threads must stay exact: one
//! flipped index is an out-of-bounds access, one flipped predicate a
//! divergent barrier. Following Akiyama (arXiv 2004.01637), this pass
//! partitions every kernel parameter and shared allocation into
//! [`Criticality::Critical`] or [`Criticality::Tolerant`] so the runtime
//! can auto-place only tolerant buffers in `MemSpace::Approx`.
//!
//! # The lattice
//!
//! The analysis is a taint fixpoint over a two-point lattice per buffer
//! (`Tolerant ⊑ Critical`) with value-taint sets over memory *origins*
//! (buffer parameters and shared arrays) as the transfer medium:
//!
//! * **Seeds.** A loaded value's taint is the object it was loaded from.
//! * **Sinks.** Taint reaching an address computation (load/store/atomic
//!   index), a branch or select condition, a loop init/bound/step, or an
//!   atomic target promotes every origin in the taint set to Critical.
//!   Atomic targets themselves are Critical outright: a read-modify-write
//!   cycle must observe exact cell contents.
//! * **Copies.** Let/assign propagate taint through locals; a monotone
//!   fixpoint covers loop-carried taint.
//! * **Memory-mediated flow.** Storing a value tainted by `B` into `C`
//!   records a flow edge `B → C`; the backward closure then makes `B`
//!   Critical whenever `C` is — data that lands in an index store is
//!   index data at its source too.
//! * **Calls.** Device functions get interprocedural summaries: which
//!   scalar parameters flow to the return value, which reach a
//!   control/address sink inside, which objects the function loads,
//!   stores, or atomically updates (memory references inside functions
//!   resolve against the *kernel's* objects, so summaries speak the same
//!   origin language). A memory-effectful callee is handled
//!   conservatively: every argument taint and every loaded origin is
//!   assumed to reach every stored target.
//!
//! # Soundness argument
//!
//! The claim is one-directional: a buffer classified Tolerant never
//! influences an address, a control decision, or an atomic cell. Every
//! IR construct that consumes a value either (a) is a sink listed above,
//! (b) forwards taint (arithmetic, casts, copies, returns, stores), or
//! (c) ignores it. Sinks promote; forwarders propagate (through locals
//! by the fixpoint, through memory by the flow-edge closure, through
//! calls by the summaries, conservatively on cycles); so any path from a
//! load of `B` to a sink marks `B` Critical. The inverse direction is
//! deliberately not claimed — Critical is an over-approximation, and a
//! spurious Critical only costs speedup, never correctness. The
//! differential harness in `tests/approxmem_suite.rs` drives the
//! executor's fault injector at force-placed Critical buffers to witness
//! the divergence this pass statically predicts.
//!
//! Each Critical verdict carries a *witness chain*: the sink that
//! promoted it, prefixed by the flow edges that led there.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use paraprox_ir::{Expr, FuncId, Kernel, KernelId, MemRef, MemSpace, Param, Program, Stmt};

use crate::diag::{Diagnostic, Severity};

/// Verdict for one memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criticality {
    /// Bit errors in this buffer can corrupt addresses, control flow, or
    /// synchronization — it must stay in exact memory.
    Critical,
    /// Only payload values flow out of this buffer; bit errors degrade
    /// quality, not safety.
    Tolerant,
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Criticality::Critical => "critical",
            Criticality::Tolerant => "tolerant",
        })
    }
}

/// The partition verdict for one kernel parameter or shared allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferVerdict {
    /// The object (buffer parameter index or shared array).
    pub mem: MemRef,
    /// Debug name from the declaration.
    pub name: String,
    /// Declared memory space (`Shared` for shared allocations).
    pub declared: MemSpace,
    /// The verdict.
    pub criticality: Criticality,
    /// For Critical verdicts: the chain of flows ending at the sink that
    /// promoted this object (first entry is closest to the object).
    /// Empty for Tolerant verdicts.
    pub witness: Vec<String>,
}

impl BufferVerdict {
    /// The witness chain as one ` -> `-joined string (empty for
    /// Tolerant).
    pub fn witness_string(&self) -> String {
        self.witness.join(" -> ")
    }
}

/// The partition of one kernel's memory objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPartition {
    /// The kernel.
    pub kernel: KernelId,
    /// Its name.
    pub kernel_name: String,
    /// One verdict per buffer parameter and shared allocation, in
    /// declaration order (parameters first).
    pub verdicts: Vec<BufferVerdict>,
}

impl KernelPartition {
    /// The verdict for `mem`, if it is a buffer parameter or shared
    /// allocation of this kernel.
    pub fn verdict(&self, mem: MemRef) -> Option<&BufferVerdict> {
        self.verdicts.iter().find(|v| v.mem == mem)
    }

    /// Buffer parameter indices that are declared `Global` and classified
    /// Tolerant — exactly the set the auto-placer may move to approximate
    /// memory.
    pub fn tolerant_global_params(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .filter_map(|v| match v.mem {
                MemRef::Param(i)
                    if v.declared == MemSpace::Global && v.criticality == Criticality::Tolerant =>
                {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }
}

/// Interprocedural summary of one device function, in kernel-origin
/// terms (memory references inside functions resolve against the
/// enclosing kernel's parameter/shared tables).
#[derive(Debug, Clone, Default)]
struct FuncInfo {
    /// Scalar parameter indices whose values flow to the return value.
    ret_params: BTreeSet<usize>,
    /// Memory objects whose loaded values flow to the return value.
    ret_mems: BTreeSet<MemRef>,
    /// Parameter indices that reach a control or address sink inside.
    control_params: BTreeSet<usize>,
    /// Memory objects whose loaded values reach a sink inside.
    sink_mems: BTreeSet<MemRef>,
    /// Objects loaded anywhere inside (transitively).
    loads: BTreeSet<MemRef>,
    /// Objects stored to by plain stores inside (transitively).
    store_targets: BTreeSet<MemRef>,
    /// Objects atomically updated inside (transitively).
    atomic_targets: BTreeSet<MemRef>,
}

impl FuncInfo {
    fn has_memory_effects(&self) -> bool {
        !self.store_targets.is_empty() || !self.atomic_targets.is_empty()
    }
}

/// Taint of a value inside a device function: the function's own scalar
/// parameters plus kernel memory origins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FuncTaint {
    params: BTreeSet<usize>,
    mems: BTreeSet<MemRef>,
}

impl FuncTaint {
    fn union(&mut self, other: &FuncTaint) {
        self.params.extend(other.params.iter().copied());
        self.mems.extend(other.mems.iter().copied());
    }
}

/// Memoized per-function summaries with cycle protection.
struct FuncSummarizer<'a> {
    program: &'a Program,
    memo: Vec<Option<FuncInfo>>,
    visiting: Vec<bool>,
}

impl<'a> FuncSummarizer<'a> {
    fn new(program: &'a Program) -> FuncSummarizer<'a> {
        let n = program.func_count();
        FuncSummarizer {
            program,
            memo: vec![None; n],
            visiting: vec![false; n],
        }
    }

    fn info(&mut self, id: FuncId) -> FuncInfo {
        let idx = id.0;
        if idx >= self.memo.len() || self.visiting[idx] {
            // Unknown or cyclic callee: assume every parameter reaches a
            // sink (the executor cannot finish such a call anyway).
            let params = match self.program.funcs().nth(idx) {
                Some((_, f)) => (0..f.params.len()).collect(),
                None => BTreeSet::new(),
            };
            return FuncInfo {
                control_params: params,
                ..FuncInfo::default()
            };
        }
        if let Some(info) = &self.memo[idx] {
            return info.clone();
        }
        self.visiting[idx] = true;
        let f = self.program.func(id);
        let mut state = FuncState {
            var_taint: vec![FuncTaint::default(); f.locals.len()],
            info: FuncInfo::default(),
        };
        // Fixpoint over loop-carried locals: taints only grow.
        loop {
            let before = state.var_taint.clone();
            state.info = FuncInfo::default();
            self.func_stmts(&f.body, &mut state);
            if state.var_taint == before {
                break;
            }
        }
        self.visiting[idx] = false;
        self.memo[idx] = Some(state.info.clone());
        state.info
    }

    fn func_stmts(&mut self, stmts: &[Stmt], state: &mut FuncState) {
        for stmt in stmts {
            match stmt {
                Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                    let t = self.func_expr(init, state);
                    // Weak update: a strong update could oscillate under
                    // the fixpoint; union keeps it monotone.
                    state.var_taint[var.index()].union(&t);
                }
                Stmt::Store { mem, index, value } => {
                    let ti = self.func_expr(index, state);
                    state.sink(&ti);
                    let tv = self.func_expr(value, state);
                    // Conservative: stored values inside functions are
                    // folded into the blanket store summary.
                    state.info.store_targets.insert(*mem);
                    state.info.control_params.extend(tv.params);
                    state.info.sink_mems.extend(tv.mems);
                }
                Stmt::Atomic {
                    mem, index, value, ..
                } => {
                    let ti = self.func_expr(index, state);
                    state.sink(&ti);
                    let tv = self.func_expr(value, state);
                    state.info.atomic_targets.insert(*mem);
                    state.info.control_params.extend(tv.params);
                    state.info.sink_mems.extend(tv.mems);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let t = self.func_expr(cond, state);
                    state.sink(&t);
                    self.func_stmts(then_body, state);
                    self.func_stmts(else_body, state);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    var,
                } => {
                    for e in [init, cond.bound(), step.amount()] {
                        let t = self.func_expr(e, state);
                        state.sink(&t);
                    }
                    state.var_taint[var.index()] = FuncTaint::default();
                    self.func_stmts(body, state);
                }
                Stmt::Sync => {}
                Stmt::Return(e) => {
                    let t = self.func_expr(e, state);
                    state.info.ret_params.extend(t.params);
                    state.info.ret_mems.extend(t.mems);
                }
            }
        }
    }

    fn func_expr(&mut self, e: &Expr, state: &mut FuncState) -> FuncTaint {
        match e {
            Expr::Const(_) | Expr::Special(_) => FuncTaint::default(),
            Expr::Var(v) => state.var_taint[v.index()].clone(),
            Expr::Param(i) => FuncTaint {
                params: BTreeSet::from([*i]),
                mems: BTreeSet::new(),
            },
            Expr::Unary(_, a) | Expr::Cast(_, a) => self.func_expr(a, state),
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
                let mut t = self.func_expr(a, state);
                t.union(&self.func_expr(b, state));
                t
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let tc = self.func_expr(cond, state);
                state.sink(&tc);
                let mut t = self.func_expr(if_true, state);
                t.union(&self.func_expr(if_false, state));
                t
            }
            Expr::Load { mem, index } => {
                let ti = self.func_expr(index, state);
                state.sink(&ti);
                state.info.loads.insert(*mem);
                FuncTaint {
                    params: BTreeSet::new(),
                    mems: BTreeSet::from([*mem]),
                }
            }
            Expr::Call { func, args } => {
                let callee = self.info(*func);
                let arg_taints: Vec<FuncTaint> =
                    args.iter().map(|a| self.func_expr(a, state)).collect();
                let mut out = FuncTaint::default();
                for (i, t) in arg_taints.iter().enumerate() {
                    if callee.control_params.contains(&i)
                        || (callee.has_memory_effects() && !callee.store_targets.is_empty())
                    {
                        state.sink(t);
                    }
                    if callee.ret_params.contains(&i) {
                        out.union(t);
                    }
                }
                out.mems.extend(callee.ret_mems.iter().copied());
                state.info.loads.extend(callee.loads.iter().copied());
                state
                    .info
                    .sink_mems
                    .extend(callee.sink_mems.iter().copied());
                state
                    .info
                    .store_targets
                    .extend(callee.store_targets.iter().copied());
                state
                    .info
                    .atomic_targets
                    .extend(callee.atomic_targets.iter().copied());
                out
            }
        }
    }
}

struct FuncState {
    var_taint: Vec<FuncTaint>,
    info: FuncInfo,
}

impl FuncState {
    fn sink(&mut self, t: &FuncTaint) {
        self.info.control_params.extend(t.params.iter().copied());
        self.info.sink_mems.extend(t.mems.iter().copied());
    }
}

type Taint = BTreeSet<MemRef>;

/// The kernel-level walker: taint fixpoint + sink collection.
struct KernelPass<'a> {
    program: &'a Program,
    kernel: &'a Kernel,
    funcs: FuncSummarizer<'a>,
    var_taint: Vec<Taint>,
    /// Origin → the sink reason that promoted it (first wins).
    critical: BTreeMap<MemRef, Vec<String>>,
    /// Memory-mediated flow: (source origin, destination object,
    /// description), collected in program order.
    edges: Vec<(MemRef, MemRef, String)>,
    path: Vec<usize>,
}

impl<'a> KernelPass<'a> {
    fn mem_name(&self, mem: MemRef) -> String {
        match mem {
            MemRef::Param(i) => self
                .kernel
                .params
                .get(i)
                .map(|p| p.name().to_string())
                .unwrap_or_else(|| format!("p{i}")),
            MemRef::Shared(s) => self
                .kernel
                .shared
                .get(s.index())
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("s{}", s.0)),
        }
    }

    fn path_string(&self) -> String {
        if self.path.is_empty() {
            "<kernel>".to_string()
        } else {
            self.path
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(".")
        }
    }

    fn mark_critical(&mut self, taint: &Taint, reason: impl Fn(&Self) -> String) {
        if taint.is_empty() {
            return;
        }
        let msg = reason(self);
        for mem in taint {
            self.critical
                .entry(*mem)
                .or_insert_with(|| vec![msg.clone()]);
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.path.push(i);
            self.stmt(stmt);
            self.path.pop();
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let t = self.expr(init);
                // Weak update (union) keeps the fixpoint monotone.
                self.var_taint[var.index()].extend(t);
            }
            Stmt::Store { mem, index, value } => {
                let ti = self.expr(index);
                let dst = self.mem_name(*mem);
                self.mark_critical(&ti, |s| {
                    format!(
                        "forms the index of a store to `{dst}` at stmt {}",
                        s.path_string()
                    )
                });
                let tv = self.expr(value);
                for src in tv {
                    let desc = format!(
                        "its value is stored into `{dst}` at stmt {}",
                        self.path_string()
                    );
                    self.edges.push((src, *mem, desc));
                }
            }
            Stmt::Atomic {
                mem, index, value, ..
            } => {
                let ti = self.expr(index);
                let dst = self.mem_name(*mem);
                self.mark_critical(&ti, |s| {
                    format!(
                        "forms the index of an atomic update of `{dst}` at stmt {}",
                        s.path_string()
                    )
                });
                // The target itself must read exactly for its RMW cycle.
                self.mark_critical(&BTreeSet::from([*mem]), |s| {
                    format!(
                        "is the target of an atomic update at stmt {}",
                        s.path_string()
                    )
                });
                let tv = self.expr(value);
                for src in tv {
                    let desc = format!(
                        "its value feeds an atomic update of `{dst}` at stmt {}",
                        self.path_string()
                    );
                    self.edges.push((src, *mem, desc));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.expr(cond);
                self.mark_critical(&t, |s| {
                    format!("guards the branch at stmt {}", s.path_string())
                });
                self.stmts(then_body);
                self.stmts(else_body);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                var,
            } => {
                for (e, what) in [
                    (init, "initializes"),
                    (cond.bound(), "bounds"),
                    (step.amount(), "steps"),
                ] {
                    let t = self.expr(e);
                    self.mark_critical(&t, |s| {
                        format!("{what} the loop at stmt {}", s.path_string())
                    });
                }
                // The induction variable is launch-derived, not
                // buffer-tainted (its feeding expressions were just
                // sunk above).
                self.var_taint[var.index()].clear();
                self.stmts(body);
            }
            Stmt::Sync => {}
            Stmt::Return(e) => {
                let _ = self.expr(e);
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Taint {
        match e {
            Expr::Const(_) | Expr::Special(_) | Expr::Param(_) => Taint::new(),
            Expr::Var(v) => self.var_taint[v.index()].clone(),
            Expr::Unary(_, a) | Expr::Cast(_, a) => self.expr(a),
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
                let mut t = self.expr(a);
                t.extend(self.expr(b));
                t
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let tc = self.expr(cond);
                self.mark_critical(&tc, |s| {
                    format!("decides the select at stmt {}", s.path_string())
                });
                let mut t = self.expr(if_true);
                t.extend(self.expr(if_false));
                t
            }
            Expr::Load { mem, index } => {
                let ti = self.expr(index);
                let src = self.mem_name(*mem);
                self.mark_critical(&ti, |s| {
                    format!(
                        "forms the index of a load from `{src}` at stmt {}",
                        s.path_string()
                    )
                });
                Taint::from([*mem])
            }
            Expr::Call { func, args } => {
                let callee = self.funcs.info(*func);
                let fname = self
                    .program
                    .funcs()
                    .nth(func.0)
                    .map(|(_, f)| f.name.clone())
                    .unwrap_or_else(|| format!("fn#{}", func.0));
                let arg_taints: Vec<Taint> = args.iter().map(|a| self.expr(a)).collect();
                let mut out = Taint::new();
                for (i, t) in arg_taints.iter().enumerate() {
                    if callee.control_params.contains(&i) {
                        self.mark_critical(t, |s| {
                            format!(
                                "reaches a control or address use inside `{fname}` called at stmt {}",
                                s.path_string()
                            )
                        });
                    }
                    if callee.ret_params.contains(&i) {
                        out.extend(t.iter().copied());
                    }
                }
                // Objects whose loads reach sinks inside the callee are
                // Critical regardless of the call context.
                let sink_mems: Taint = callee.sink_mems.iter().copied().collect();
                self.mark_critical(&sink_mems, |s| {
                    format!(
                        "its loaded value reaches a control or address use inside `{fname}` called at stmt {}",
                        s.path_string()
                    )
                });
                // Atomic targets inside the callee are Critical.
                let atomics: Taint = callee.atomic_targets.iter().copied().collect();
                self.mark_critical(&atomics, |s| {
                    format!(
                        "is atomically updated inside `{fname}` called at stmt {}",
                        s.path_string()
                    )
                });
                // A memory-effectful callee conservatively routes every
                // argument taint and every loaded origin into every
                // stored target.
                if callee.has_memory_effects() {
                    let mut sources: Taint = callee.loads.iter().copied().collect();
                    for t in &arg_taints {
                        sources.extend(t.iter().copied());
                    }
                    for dst in &callee.store_targets {
                        for src in &sources {
                            let desc = format!(
                                "its value may be stored into `{}` inside `{fname}` called at stmt {}",
                                self.mem_name(*dst),
                                self.path_string()
                            );
                            self.edges.push((*src, *dst, desc));
                        }
                    }
                }
                out.extend(callee.ret_mems.iter().copied());
                out
            }
        }
    }
}

/// Maximum witness-chain length kept per buffer — long memory-mediated
/// chains are truncated with an ellipsis entry.
const MAX_WITNESS: usize = 8;

/// Partition one kernel's buffer parameters and shared allocations.
pub fn partition_kernel(program: &Program, kernel: KernelId) -> KernelPartition {
    let k = program.kernel(kernel);
    let mut pass = KernelPass {
        program,
        kernel: k,
        funcs: FuncSummarizer::new(program),
        var_taint: vec![Taint::new(); k.locals.len()],
        critical: BTreeMap::new(),
        edges: Vec::new(),
        path: Vec::new(),
    };
    // Taint fixpoint: rerun the walk until loop-carried taints stabilize;
    // the last iteration's sink/edge collection sees the full taints.
    loop {
        let before = pass.var_taint.clone();
        pass.critical.clear();
        pass.edges.clear();
        pass.stmts(&k.body);
        if pass.var_taint == before {
            break;
        }
    }
    // Backward closure over memory-mediated flow: if `dst` is Critical
    // and `src`'s data flows into it, `src` is Critical with the edge
    // prepended to `dst`'s witness chain.
    loop {
        let mut changed = false;
        for (src, dst, desc) in &pass.edges {
            if pass.critical.contains_key(dst) && !pass.critical.contains_key(src) {
                let mut chain = vec![desc.clone()];
                let tail = &pass.critical[dst];
                if chain.len() + tail.len() > MAX_WITNESS {
                    chain.extend(tail.iter().take(MAX_WITNESS - 1).cloned());
                    chain.push("…".to_string());
                } else {
                    chain.extend(tail.iter().cloned());
                }
                pass.critical.insert(*src, chain);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let critical = pass.critical;
    let mut verdicts = Vec::new();
    for (i, p) in k.params.iter().enumerate() {
        if let Param::Buffer { name, space, .. } = p {
            let mem = MemRef::Param(i);
            let witness = critical.get(&mem).cloned();
            verdicts.push(BufferVerdict {
                mem,
                name: name.clone(),
                declared: *space,
                criticality: if witness.is_some() {
                    Criticality::Critical
                } else {
                    Criticality::Tolerant
                },
                witness: witness.unwrap_or_default(),
            });
        }
    }
    for (si, decl) in k.shared.iter().enumerate() {
        let mem = MemRef::Shared(paraprox_ir::SharedId(si as u32));
        let witness = critical.get(&mem).cloned();
        verdicts.push(BufferVerdict {
            mem,
            name: decl.name.clone(),
            declared: MemSpace::Shared,
            criticality: if witness.is_some() {
                Criticality::Critical
            } else {
                Criticality::Tolerant
            },
            witness: witness.unwrap_or_default(),
        });
    }
    KernelPartition {
        kernel,
        kernel_name: k.name.clone(),
        verdicts,
    }
}

/// Partition every kernel of a program, in kernel order.
pub fn partition_program(program: &Program) -> Vec<KernelPartition> {
    program
        .kernels()
        .map(|(id, _)| partition_kernel(program, id))
        .collect()
}

/// Statically refuse approximate placements of Critical (or structurally
/// unplaceable) buffers. `placements` lists `(kernel, buffer parameter
/// index)` pairs a plan wants to serve from approximate memory; every
/// unsound pair yields an [`Severity::Error`] diagnostic with code
/// `approx-placement` carrying the witness chain.
pub fn check_placements(
    program: &Program,
    placements: &[(KernelId, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let mut partitions: BTreeMap<usize, KernelPartition> = BTreeMap::new();
    for (kid, pi) in placements {
        let k = program.kernel(*kid);
        let part = partitions
            .entry(kid.0)
            .or_insert_with(|| partition_kernel(program, *kid));
        let Some(param) = k.params.get(*pi) else {
            crate::diag::push_unique(
                out,
                Diagnostic::new(
                    Severity::Error,
                    *kid,
                    &k.name,
                    &[],
                    "approx-placement",
                    format!("parameter index {pi} out of range for approximate placement"),
                ),
            );
            continue;
        };
        match param {
            Param::Scalar { name, .. } => {
                crate::diag::push_unique(
                    out,
                    Diagnostic::new(
                        Severity::Error,
                        *kid,
                        &k.name,
                        &[],
                        "approx-placement",
                        format!("scalar parameter `{name}` cannot be placed in approximate memory"),
                    ),
                );
            }
            Param::Buffer { name, space, .. } => {
                if *space != MemSpace::Global {
                    crate::diag::push_unique(
                        out,
                        Diagnostic::new(
                            Severity::Error,
                            *kid,
                            &k.name,
                            &[],
                            "approx-placement",
                            format!(
                                "buffer `{name}` is declared {space}; only global buffers can move to approximate memory"
                            ),
                        ),
                    );
                    continue;
                }
                let verdict = part
                    .verdict(MemRef::Param(*pi))
                    .expect("buffer param has a verdict");
                if verdict.criticality == Criticality::Critical {
                    crate::diag::push_unique(
                        out,
                        Diagnostic::new(
                            Severity::Error,
                            *kid,
                            &k.name,
                            &[],
                            "approx-placement",
                            format!(
                                "buffer `{name}` is Critical and must stay in exact memory: {}",
                                verdict.witness_string()
                            ),
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, FuncBuilder, KernelBuilder, LoopStep, Ty};

    fn verdict_of(part: &KernelPartition, name: &str) -> Criticality {
        part.verdicts
            .iter()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("no verdict for {name}"))
            .criticality
    }

    #[test]
    fn payload_buffer_is_tolerant() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("copy");
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(src, gid.clone()));
        kb.store(dst, gid, v * Expr::f32(2.0));
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "src"), Criticality::Tolerant);
        assert_eq!(verdict_of(&part, "dst"), Criticality::Tolerant);
    }

    #[test]
    fn index_buffer_is_critical_with_witness() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("gather");
        let idx = kb.buffer("idx", Ty::I32, MemSpace::Global);
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let i = kb.let_("i", kb.load(idx, gid.clone()));
        let v = kb.let_("v", kb.load(src, i));
        kb.store(dst, gid, v);
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "idx"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "src"), Criticality::Tolerant);
        assert_eq!(verdict_of(&part, "dst"), Criticality::Tolerant);
        let w = part.verdict(MemRef::Param(0)).unwrap();
        assert!(
            w.witness_string().contains("index of a load from `src`"),
            "witness: {}",
            w.witness_string()
        );
    }

    #[test]
    fn predicate_buffer_is_critical() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("mask");
        let pred = kb.buffer("pred", Ty::Bool, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let c = kb.let_("c", kb.load(pred, gid.clone()));
        kb.if_(c, |kb| {
            kb.store(dst, gid.clone(), Expr::f32(1.0));
        });
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "pred"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "dst"), Criticality::Tolerant);
    }

    #[test]
    fn loop_bound_buffer_is_critical() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("bounded");
        let counts = kb.buffer("counts", Ty::I32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let n = kb.let_("n", kb.load(counts, gid.clone()));
        kb.for_up("j", Expr::i32(0), n, Expr::i32(1), |kb, _j| {
            kb.store(dst, gid.clone(), Expr::f32(1.0));
        });
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "counts"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "dst"), Criticality::Tolerant);
    }

    #[test]
    fn atomic_target_is_critical() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("hist");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let hist = kb.buffer("hist", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let _v = kb.let_("v", kb.load(data, gid));
        kb.atomic(
            paraprox_ir::AtomicOp::Add,
            hist,
            Expr::i32(0),
            Expr::f32(1.0),
        );
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "hist"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "data"), Criticality::Tolerant);
    }

    #[test]
    fn memory_mediated_flow_closes_backward() {
        // src's values land in `stage`, and `stage`'s values index `lut`:
        // both stage AND src must be Critical.
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("staged");
        let src = kb.buffer("src", Ty::I32, MemSpace::Global);
        let stage = kb.buffer("stage", Ty::I32, MemSpace::Global);
        let lut = kb.buffer("lut", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(src, gid.clone()));
        kb.store(stage, gid.clone(), v);
        let i = kb.let_("i", kb.load(stage, gid.clone()));
        let w = kb.let_("w", kb.load(lut, i));
        kb.store(dst, gid, w);
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "stage"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "src"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "lut"), Criticality::Tolerant);
        assert_eq!(verdict_of(&part, "dst"), Criticality::Tolerant);
        // src's chain goes through the store into stage.
        let w = part.verdict(MemRef::Param(0)).unwrap();
        assert!(w.witness.len() >= 2, "chain: {:?}", w.witness);
        assert!(w.witness[0].contains("stored into `stage`"));
    }

    #[test]
    fn taint_propagates_through_called_function() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("clampi", Ty::I32);
        let x = fb.scalar("x", Ty::I32);
        let hi = fb.scalar("hi", Ty::I32);
        fb.ret(x.clone().lt(hi.clone()).select(x, hi));
        let clampi = p.add_func(fb.finish());
        let mut kb = KernelBuilder::new("gather_clamped");
        let idx = kb.buffer("idx", Ty::I32, MemSpace::Global);
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let raw = kb.let_("raw", kb.load(idx, gid.clone()));
        let i = kb.let_(
            "i",
            Expr::Call {
                func: clampi,
                args: vec![raw, Expr::i32(31)],
            },
        );
        let v = kb.let_("v", kb.load(src, i));
        kb.store(dst, gid, v);
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        // idx flows through clampi's select *and* return into the load
        // index — Critical either way.
        assert_eq!(verdict_of(&part, "idx"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "src"), Criticality::Tolerant);
    }

    #[test]
    fn loop_carried_taint_reaches_fixpoint() {
        // acc starts untainted, picks up taint from `src` inside the
        // loop, and is stored to `stage` whose values index `lut`; the
        // fixpoint must see the loop-carried taint.
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("carried");
        let src = kb.buffer("src", Ty::I32, MemSpace::Global);
        let stage = kb.buffer("stage", Ty::I32, MemSpace::Global);
        let lut = kb.buffer("lut", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let acc = kb.let_mut("acc", Ty::I32, Expr::i32(0));
        kb.for_up("j", Expr::i32(0), Expr::i32(4), Expr::i32(1), |kb, j| {
            let v = kb.let_("v", kb.load(src, j));
            kb.assign(acc, Expr::Var(acc) + v);
        });
        kb.store(stage, gid.clone(), Expr::Var(acc));
        let i = kb.let_("i", kb.load(stage, gid.clone()));
        let w = kb.let_("w", kb.load(lut, i));
        kb.store(dst, gid, w);
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "src"), Criticality::Critical);
        assert_eq!(verdict_of(&part, "stage"), Criticality::Critical);
    }

    #[test]
    fn shared_allocations_get_verdicts() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("tile");
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let tile = kb.shared_array("tile", Ty::F32, 32);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        kb.store(tile, tx.clone(), kb.load(src, tx.clone()));
        kb.sync();
        kb.store(dst, tx.clone(), kb.load(tile, tx));
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "tile"), Criticality::Tolerant);
        assert_eq!(part.tolerant_global_params(), vec![0, 1]);
    }

    #[test]
    fn check_placements_refuses_critical_and_allows_tolerant() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("gather");
        let idx = kb.buffer("idx", Ty::I32, MemSpace::Global);
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let i = kb.let_("i", kb.load(idx, gid.clone()));
        let v = kb.let_("v", kb.load(src, i));
        kb.store(dst, gid, v);
        let _n = kb.scalar("n", Ty::I32);
        let kid = p.add_kernel(kb.finish());

        let mut out = Vec::new();
        check_placements(&p, &[(kid, 1), (kid, 2)], &mut out);
        assert!(out.is_empty(), "tolerant placements refused: {out:?}");

        check_placements(&p, &[(kid, 0)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "approx-placement");
        assert_eq!(out[0].severity, Severity::Error);
        assert!(out[0].message.contains("Critical"));

        let mut out2 = Vec::new();
        check_placements(&p, &[(kid, 3)], &mut out2); // scalar param
        assert_eq!(out2.len(), 1);
        check_placements(&p, &[(kid, 9)], &mut out2); // out of range
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn constant_declared_buffer_cannot_be_placed() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("k");
        let c = kb.buffer("lut", Ty::F32, MemSpace::Constant);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.store(dst, gid.clone(), kb.load(c, gid));
        let kid = p.add_kernel(kb.finish());
        let mut out = Vec::new();
        check_placements(&p, &[(kid, 0)], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("declared constant"));
    }

    #[test]
    fn unused_loop_step_of_shr_kind_still_walks() {
        // Exercise LoopStep variants through the partition walker.
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("k");
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.for_loop(
            "s",
            Expr::i32(16),
            paraprox_ir::LoopCond::Gt(Expr::i32(0)),
            LoopStep::Shr(Expr::i32(1)),
            |kb, _s| {
                kb.store(dst, gid.clone(), Expr::f32(0.0));
            },
        );
        let kid = p.add_kernel(kb.finish());
        let part = partition_kernel(&p, kid);
        assert_eq!(verdict_of(&part, "dst"), Criticality::Tolerant);
    }
}
