//! Launch-time facts the lints can exploit.
//!
//! The IR itself does not know grid/block shapes, buffer lengths, or scalar
//! argument values — those live in the launch plan. Callers that have a
//! concrete launch (the compile pipeline, the CLI) build a [`LaunchContext`]
//! per launch so the bounds lint can compare affine index ranges against
//! real extents and the race detector can enumerate the threads of a block.
//! Without a context the analyses fall back to purely structural checks.

use paraprox_ir::Scalar;

/// Concrete launch facts for one kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchContext {
    /// Grid dimensions `(grid_x, grid_y)` in blocks.
    pub grid: (u32, u32),
    /// Block dimensions `(block_x, block_y)` in threads.
    pub block: (u32, u32),
    /// Element count of each buffer parameter, indexed by parameter
    /// position (`None` for scalar parameters or unknown lengths).
    pub buffer_len: Vec<Option<usize>>,
    /// Value of each scalar parameter, indexed by parameter position
    /// (`None` for buffer parameters or unknown values).
    pub scalar: Vec<Option<Scalar>>,
}

impl LaunchContext {
    /// A context carrying only grid/block shape.
    pub fn with_dims(grid: (u32, u32), block: (u32, u32)) -> LaunchContext {
        LaunchContext {
            grid,
            block,
            ..LaunchContext::default()
        }
    }

    /// The scalar argument at parameter position `i` as an `i64`, when it
    /// is a known integer.
    pub fn scalar_int(&self, i: usize) -> Option<i64> {
        match self.scalar.get(i).copied().flatten() {
            Some(Scalar::I32(v)) => Some(i64::from(v)),
            Some(Scalar::U32(v)) => Some(i64::from(v)),
            _ => None,
        }
    }
}
