//! Static analysis framework for the Paraprox kernel IR.
//!
//! Paraprox only applies an approximation when the transform is provably
//! safe (paper §3.1.2, §5). This crate centralizes the reasoning that used
//! to be scattered across ad-hoc walks: a small dataflow core over the
//! structured IR (definite assignment, liveness, per-statement effect
//! summaries, single-definition substitution) with four analyses on top:
//!
//! 1. **Race detection** ([`race`]) — barrier-phase-aware symbolic access
//!    sets for shared memory, with a concrete two-thread witness search
//!    over affine indices.
//! 2. **Bounds checking** ([`bounds`]) — affine index ranges vs declared
//!    buffer/shared extents under a concrete [`LaunchContext`].
//! 3. **Uninitialized locals and dead stores** ([`dataflow`]).
//! 4. **Effect summaries and type inference** ([`effects`]) — the
//!    replacement for the bespoke purity walk in `paraprox-patterns` and
//!    the guessing type inference in `paraprox-approx`.
//! 5. **Buffer-criticality partitioning** ([`partition`]) — interprocedural
//!    taint analysis classifying each buffer as Critical (addresses,
//!    predicates, sync) or Tolerant (payload), gating placement in the
//!    approximate memory space.
//!
//! The affine index decomposition ([`affine`]) lives here too, shared by
//! the stencil detector (re-exported from `paraprox-patterns`) and the
//! race detector.
//!
//! Findings are [`Diagnostic`]s with rustc-style rendering; [`Severity::Error`]
//! means a concrete witness exists, [`Severity::Warning`] means the
//! analysis could not prove safety.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod bounds;
mod context;
pub mod dataflow;
mod diag;
pub mod effects;
pub mod errorprop;
pub mod interval;
pub mod partition;
pub mod race;

pub use context::LaunchContext;
pub use diag::{error_lint_codes, Diagnostic, Severity};
pub use effects::{
    infer_expr_ty, summarize_func, summarize_kernel, summarize_stmts, EffectSummary, TyScope,
    TypeError,
};
pub use errorprop::{propagate, propagate_kernel, ErrMag, Injection, LaunchModel, SlotState};
pub use interval::VRange;
pub use partition::{
    check_placements, partition_kernel, partition_program, BufferVerdict, Criticality,
    KernelPartition,
};
pub use race::{check_races, shared_access_set, shared_reads_covered, SharedAccessSet};

use paraprox_ir::{KernelId, Program};

/// Run every lint on one kernel.
///
/// The [`LaunchContext`] supplies block/grid shape, buffer extents, and
/// scalar argument values; without it the bounds lint and the pairwise
/// race search are skipped (only structural checks run).
pub fn analyze_kernel(
    program: &Program,
    kernel: KernelId,
    ctx: Option<&LaunchContext>,
) -> Vec<Diagnostic> {
    let k = program.kernel(kernel);
    let mut out = Vec::new();
    dataflow::check_dataflow(k, kernel, &mut out);
    if let Some(ctx) = ctx {
        bounds::check_bounds(k, kernel, ctx, &mut out);
    }
    race::check_races(k, kernel, ctx, &mut out);
    sort_diagnostics(&mut out);
    out
}

/// Run every lint on every kernel of a program.
///
/// `contexts` maps kernels to the launches they are invoked with; a kernel
/// may appear several times (one entry per distinct launch) or not at all
/// (analyzed without launch facts).
pub fn analyze_program(
    program: &Program,
    contexts: &[(KernelId, LaunchContext)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, _) in program.kernels() {
        let launches: Vec<&LaunchContext> = contexts
            .iter()
            .filter(|(k, _)| *k == id)
            .map(|(_, c)| c)
            .collect();
        if launches.is_empty() {
            for d in analyze_kernel(program, id, None) {
                if !out.contains(&d) {
                    out.push(d);
                }
            }
        } else {
            for ctx in launches {
                for d in analyze_kernel(program, id, Some(ctx)) {
                    if !out.contains(&d) {
                        out.push(d);
                    }
                }
            }
        }
    }
    sort_diagnostics(&mut out);
    out
}

fn sort_diagnostics(out: &mut [Diagnostic]) {
    out.sort_by(|a, b| {
        (a.kernel.0, &a.path, a.code, &a.message).cmp(&(b.kernel.0, &b.path, b.code, &b.message))
    });
}
