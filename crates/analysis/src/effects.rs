//! Per-item side-effect summaries and expression type inference.
//!
//! [`EffectSummary`] is the reusable replacement for the bespoke purity
//! walk that used to live in `paraprox-patterns` and for the ad-hoc type
//! guesses in `paraprox-approx`: it counts every effectful construct in a
//! statement list (transitively through device-function calls), records
//! which memory objects are read, written, or atomically updated, and
//! remembers the *first* impure construct in the exact pre-order the old
//! purity analysis used — so `Purity::Impure` payloads stay byte-identical.
//!
//! Type inference ([`infer_expr_ty`]) resolves the scalar type of an
//! expression against a [`TyScope`] (the declared locals, parameters, and
//! shared arrays of the enclosing kernel or function). Unlike the old
//! `safety.rs` helper it never guesses: an out-of-range local, parameter,
//! shared array, or callee is reported as a [`TypeError`].

use std::fmt;

use paraprox_ir::{
    Expr, Func, FuncId, Kernel, KernelId, LocalDecl, MemRef, Param, Program, SharedDecl, Stmt, Ty,
};

/// Side effects of a statement list, transitive through calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Number of `Load` expressions (including those inside callees).
    pub loads: usize,
    /// Number of `Store` statements.
    pub stores: usize,
    /// Number of `Atomic` statements.
    pub atomics: usize,
    /// Number of `Sync` barriers.
    pub barriers: usize,
    /// Number of thread/block special reads.
    pub specials: usize,
    /// Number of call sites.
    pub calls: usize,
    /// Memory objects read by this item's own body (deduplicated,
    /// first-seen order; callee targets are not translated across the call
    /// boundary, only counted).
    pub reads: Vec<MemRef>,
    /// Memory objects written by plain stores in this item's own body.
    pub writes: Vec<MemRef>,
    /// Memory objects updated atomically in this item's own body.
    pub atomic_targets: Vec<MemRef>,
    /// The first impure construct in the legacy purity traversal order,
    /// or `None` when the item is pure.
    pub first_impurity: Option<&'static str>,
}

impl EffectSummary {
    /// True when the item has no side effects at all.
    pub fn is_pure(&self) -> bool {
        self.first_impurity.is_none()
    }

    fn impure(&mut self, reason: &'static str) {
        if self.first_impurity.is_none() {
            self.first_impurity = Some(reason);
        }
    }

    fn touch(list: &mut Vec<MemRef>, mem: MemRef) {
        if !list.contains(&mem) {
            list.push(mem);
        }
    }
}

impl fmt::Display for EffectSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            return f.write_str("pure");
        }
        write!(
            f,
            "{} loads, {} stores, {} atomics, {} barriers, {} thread-id reads, {} calls; first impurity: {}",
            self.loads,
            self.stores,
            self.atomics,
            self.barriers,
            self.specials,
            self.calls,
            self.first_impurity.unwrap_or("none"),
        )
    }
}

/// Recursion state: memoized callee summaries plus a visiting set for
/// cycle detection.
struct Summarizer<'a> {
    program: &'a Program,
    memo: Vec<Option<EffectSummary>>,
    visiting: Vec<bool>,
}

impl<'a> Summarizer<'a> {
    fn new(program: &'a Program) -> Summarizer<'a> {
        let n = program.func_count();
        Summarizer {
            program,
            memo: vec![None; n],
            visiting: vec![false; n],
        }
    }

    /// Summary of the callee, or `None` for an unknown/cyclic callee
    /// (reported exactly like the legacy purity walk: "call to unknown
    /// function").
    fn callee(&mut self, func: FuncId) -> Option<EffectSummary> {
        let idx = func.0;
        if idx >= self.memo.len() || self.visiting[idx] {
            return None;
        }
        if let Some(s) = &self.memo[idx] {
            return Some(s.clone());
        }
        self.visiting[idx] = true;
        let body = &self.program.func(func).body;
        let mut s = EffectSummary::default();
        self.stmts(body, &mut s);
        self.visiting[idx] = false;
        self.memo[idx] = Some(s.clone());
        Some(s)
    }

    fn expr(&mut self, e: &Expr, s: &mut EffectSummary) {
        match e {
            Expr::Const(_) | Expr::Var(_) | Expr::Param(_) => {}
            Expr::Special(_) => {
                s.specials += 1;
                s.impure("thread/block special");
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) => self.expr(a, s),
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
                self.expr(a, s);
                self.expr(b, s);
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.expr(cond, s);
                self.expr(if_true, s);
                self.expr(if_false, s);
            }
            Expr::Load { mem, index } => {
                s.loads += 1;
                // The legacy purity walk reports the load before looking at
                // its index, so record the reason first.
                s.impure("memory load");
                EffectSummary::touch(&mut s.reads, *mem);
                self.expr(index, s);
            }
            Expr::Call { func, args } => {
                s.calls += 1;
                for a in args {
                    self.expr(a, s);
                }
                match self.callee(*func) {
                    Some(callee) => {
                        s.loads += callee.loads;
                        s.stores += callee.stores;
                        s.atomics += callee.atomics;
                        s.barriers += callee.barriers;
                        s.specials += callee.specials;
                        s.calls += callee.calls;
                        if let Some(r) = callee.first_impurity {
                            s.impure(r);
                        }
                    }
                    None => s.impure("call to unknown function"),
                }
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], s: &mut EffectSummary) {
        for stmt in stmts {
            match stmt {
                Stmt::Let { init, .. } => self.expr(init, s),
                Stmt::Assign { value, .. } => self.expr(value, s),
                Stmt::Store { mem, index, value } => {
                    s.stores += 1;
                    s.impure("memory store");
                    EffectSummary::touch(&mut s.writes, *mem);
                    self.expr(index, s);
                    self.expr(value, s);
                }
                Stmt::Atomic {
                    mem, index, value, ..
                } => {
                    s.atomics += 1;
                    s.impure("atomic operation");
                    EffectSummary::touch(&mut s.atomic_targets, *mem);
                    self.expr(index, s);
                    self.expr(value, s);
                }
                Stmt::Sync => {
                    s.barriers += 1;
                    s.impure("barrier");
                }
                Stmt::Return(e) => self.expr(e, s),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.expr(cond, s);
                    self.stmts(then_body, s);
                    self.stmts(else_body, s);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    self.expr(init, s);
                    self.expr(cond.bound(), s);
                    self.expr(step.amount(), s);
                    self.stmts(body, s);
                }
            }
        }
    }
}

/// Summarize the side effects of an arbitrary statement list.
pub fn summarize_stmts(program: &Program, stmts: &[Stmt]) -> EffectSummary {
    let mut s = EffectSummary::default();
    Summarizer::new(program).stmts(stmts, &mut s);
    s
}

/// Summarize device function `id`.
///
/// # Panics
///
/// Panics if `id` does not belong to `program`.
pub fn summarize_func(program: &Program, id: FuncId) -> EffectSummary {
    summarize_stmts(program, &program.func(id).body)
}

/// Summarize kernel `id`.
///
/// # Panics
///
/// Panics if `id` does not belong to `program`.
pub fn summarize_kernel(program: &Program, id: KernelId) -> EffectSummary {
    summarize_stmts(program, &program.kernel(id).body)
}

/// A type-inference failure: the expression refers to something the
/// enclosing scope does not declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeError {
    /// A `Var` with no matching local declaration.
    UnknownLocal(u32),
    /// A `Param` index past the parameter list.
    UnknownParam(usize),
    /// A `Shared` reference past the shared-array list.
    UnknownShared(u32),
    /// A `Call` to a function the program does not contain.
    UnknownCallee(usize),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownLocal(v) => write!(f, "undeclared local v{v}"),
            TypeError::UnknownParam(i) => write!(f, "parameter index {i} out of range"),
            TypeError::UnknownShared(s) => write!(f, "shared array index {s} out of range"),
            TypeError::UnknownCallee(i) => write!(f, "call to unknown function {i}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// The declarations an expression is typed against.
#[derive(Debug, Clone, Copy)]
pub struct TyScope<'a> {
    /// Parameter declarations.
    pub params: &'a [Param],
    /// Local-variable declarations.
    pub locals: &'a [LocalDecl],
    /// Shared-array declarations (empty for device functions).
    pub shared: &'a [SharedDecl],
}

impl<'a> TyScope<'a> {
    /// Scope of a kernel.
    pub fn of_kernel(k: &'a Kernel) -> TyScope<'a> {
        TyScope {
            params: &k.params,
            locals: &k.locals,
            shared: &k.shared,
        }
    }

    /// Scope of a device function.
    pub fn of_func(f: &'a Func) -> TyScope<'a> {
        TyScope {
            params: &f.params,
            locals: &f.locals,
            shared: &[],
        }
    }
}

/// Infer the scalar type of `e` against `scope`, consulting `program` for
/// callee return types. Never guesses: unknown references are errors.
pub fn infer_expr_ty(program: &Program, scope: &TyScope<'_>, e: &Expr) -> Result<Ty, TypeError> {
    match e {
        Expr::Const(s) => Ok(s.ty()),
        Expr::Var(v) => scope
            .locals
            .get(v.index())
            .map(|d| d.ty)
            .ok_or(TypeError::UnknownLocal(v.0)),
        Expr::Param(i) => scope
            .params
            .get(*i)
            .map(|p| p.ty())
            .ok_or(TypeError::UnknownParam(*i)),
        Expr::Special(_) => Ok(Ty::I32),
        Expr::Cast(ty, _) => Ok(*ty),
        Expr::Cmp(..) => Ok(Ty::Bool),
        Expr::Unary(_, a) => infer_expr_ty(program, scope, a),
        Expr::Binary(_, a, _) => infer_expr_ty(program, scope, a),
        Expr::Select { if_true, .. } => infer_expr_ty(program, scope, if_true),
        Expr::Load { mem, .. } => match mem {
            MemRef::Param(i) => scope
                .params
                .get(*i)
                .map(|p| p.ty())
                .ok_or(TypeError::UnknownParam(*i)),
            MemRef::Shared(s) => scope
                .shared
                .get(s.index())
                .map(|d| d.ty)
                .ok_or(TypeError::UnknownShared(s.0)),
        },
        Expr::Call { func, .. } => program
            .funcs()
            .nth(func.0)
            .map(|(_, f)| f.ret)
            .ok_or(TypeError::UnknownCallee(func.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{FuncBuilder, KernelBuilder, MemSpace, Special, VarId};

    #[test]
    fn pure_function_summary_is_pure() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("poly", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x.clone() * x + Expr::f32(1.0));
        let id = p.add_func(fb.finish());
        let s = summarize_func(&p, id);
        assert!(s.is_pure());
        assert_eq!(s.to_string(), "pure");
    }

    #[test]
    fn kernel_summary_counts_and_targets() {
        let mut p = Program::new();
        let mut kb = KernelBuilder::new("k");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let out = kb.buffer("out", Ty::F32, MemSpace::Global);
        let s_arr = kb.shared_array("s", Ty::F32, 8);
        let tx = kb.let_("tx", KernelBuilder::thread_id_x());
        kb.store(s_arr, tx.clone(), kb.load(input, tx.clone()));
        kb.sync();
        kb.store(out, tx.clone(), kb.load(s_arr, tx.clone()));
        kb.atomic(
            paraprox_ir::AtomicOp::Add,
            out,
            Expr::i32(0),
            Expr::f32(1.0),
        );
        let kid = p.add_kernel(kb.finish());
        let s = summarize_kernel(&p, kid);
        assert_eq!((s.loads, s.stores, s.atomics, s.barriers), (2, 2, 1, 1));
        assert_eq!(s.specials, 1);
        assert_eq!(s.reads, vec![input, s_arr]);
        assert_eq!(s.writes, vec![s_arr, out]);
        assert_eq!(s.atomic_targets, vec![out]);
        // The first effectful construct in pre-order is the thread special
        // inside the let initializer.
        assert_eq!(s.first_impurity, Some("thread/block special"));
    }

    #[test]
    fn transitive_call_effects_are_counted() {
        let mut p = Program::new();
        let f = paraprox_ir::Func {
            name: "reads".into(),
            params: vec![Param::Buffer {
                name: "b".into(),
                ty: Ty::F32,
                space: MemSpace::Global,
            }],
            ret: Ty::F32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Load {
                mem: MemRef::Param(0),
                index: Box::new(Expr::i32(0)),
            })],
        };
        let fid = p.add_func(f);
        let mut outer = FuncBuilder::new("outer", Ty::F32);
        outer.ret(Expr::Call {
            func: fid,
            args: vec![],
        });
        let oid = p.add_func(outer.finish());
        let s = summarize_func(&p, oid);
        assert_eq!(s.loads, 1);
        assert_eq!(s.calls, 1);
        assert_eq!(s.first_impurity, Some("memory load"));
        // The load happened inside the callee, not in `outer`'s own body.
        assert!(s.reads.is_empty());
    }

    #[test]
    fn recursive_call_reported_as_unknown() {
        let mut p = Program::new();
        // A function calling itself: constructible only by hand, but the
        // summarizer must not loop on it.
        let f = paraprox_ir::Func {
            name: "rec".into(),
            params: vec![],
            ret: Ty::I32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Call {
                func: FuncId(0),
                args: vec![],
            })],
        };
        let id = p.add_func(f);
        let s = summarize_func(&p, id);
        assert_eq!(s.first_impurity, Some("call to unknown function"));
    }

    #[test]
    fn infer_resolves_declared_types() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("f", Ty::I32);
        fb.ret(Expr::i32(1));
        let fid = p.add_func(fb.finish());
        let mut kb = KernelBuilder::new("k");
        let buf = kb.buffer("b", Ty::U32, MemSpace::Global);
        let s_arr = kb.shared_array("s", Ty::F32, 4);
        let v = kb.let_typed("v", Ty::I32, Expr::i32(0));
        kb.store(buf, v.clone(), Expr::u32(0));
        let kid = p.add_kernel(kb.finish());
        let k = p.kernel(kid);
        let scope = TyScope::of_kernel(k);
        assert_eq!(infer_expr_ty(&p, &scope, &v), Ok(Ty::I32));
        assert_eq!(
            infer_expr_ty(
                &p,
                &scope,
                &Expr::Load {
                    mem: buf,
                    index: Box::new(Expr::i32(0))
                }
            ),
            Ok(Ty::U32)
        );
        assert_eq!(
            infer_expr_ty(
                &p,
                &scope,
                &Expr::Load {
                    mem: s_arr,
                    index: Box::new(Expr::i32(0))
                }
            ),
            Ok(Ty::F32)
        );
        assert_eq!(
            infer_expr_ty(
                &p,
                &scope,
                &Expr::Call {
                    func: fid,
                    args: vec![]
                }
            ),
            Ok(Ty::I32)
        );
    }

    #[test]
    fn infer_reports_unknowns_instead_of_guessing() {
        let p = Program::new();
        let scope = TyScope {
            params: &[],
            locals: &[],
            shared: &[],
        };
        assert_eq!(
            infer_expr_ty(&p, &scope, &Expr::Var(VarId(7))),
            Err(TypeError::UnknownLocal(7))
        );
        assert_eq!(
            infer_expr_ty(&p, &scope, &Expr::Param(3)),
            Err(TypeError::UnknownParam(3))
        );
        assert_eq!(
            infer_expr_ty(
                &p,
                &scope,
                &Expr::Call {
                    func: FuncId(9),
                    args: vec![]
                }
            ),
            Err(TypeError::UnknownCallee(9))
        );
        assert_eq!(
            infer_expr_ty(&p, &scope, &Expr::Special(Special::ThreadIdX)),
            Ok(Ty::I32)
        );
    }
}
