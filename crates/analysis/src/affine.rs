//! Linear decomposition of index expressions.
//!
//! Stencil detection needs to recognize accesses of the form
//! `(f + i) * w + g + j` (paper §3.2.2). We decompose an index expression
//! into a *linear combination* `Σ cᵢ·Tᵢ + k`, where each `Tᵢ` is an opaque
//! sub-expression (compared structurally) and `k` is an integer constant.
//! Two accesses to the same buffer belong to one tile when their
//! combinations differ only in coefficients — e.g. `y*w + x` vs
//! `y*w + w + x + 1` differ by one `w` (a row) and one `1` (a column).

use paraprox_ir::{BinOp, Expr, Scalar};

/// A linear combination of opaque sub-expressions with integer coefficients
/// plus an integer constant.
#[derive(Debug, Clone, PartialEq)]
pub struct LinComb {
    /// Terms `(expression, coefficient)`, coefficient ≠ 0, deduplicated by
    /// structural equality and kept in first-seen order.
    pub terms: Vec<(Expr, i64)>,
    /// The constant part.
    pub constant: i64,
}

impl LinComb {
    /// The zero combination.
    pub fn zero() -> LinComb {
        LinComb {
            terms: Vec::new(),
            constant: 0,
        }
    }

    /// A pure constant.
    pub fn constant(k: i64) -> LinComb {
        LinComb {
            terms: Vec::new(),
            constant: k,
        }
    }

    /// A single opaque term with coefficient 1.
    pub fn term(e: Expr) -> LinComb {
        LinComb {
            terms: vec![(e, 1)],
            constant: 0,
        }
    }

    /// Coefficient of a structurally-equal term (0 when absent).
    pub fn coeff_of(&self, e: &Expr) -> i64 {
        self.terms
            .iter()
            .find(|(t, _)| t == e)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// True when the combination is a bare constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    fn add_term(&mut self, e: Expr, c: i64) {
        if c == 0 {
            return;
        }
        if let Some(slot) = self.terms.iter_mut().find(|(t, _)| *t == e) {
            slot.1 += c;
            if slot.1 == 0 {
                self.terms.retain(|(_, c)| *c != 0);
            }
        } else {
            self.terms.push((e, c));
        }
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, other: LinComb) -> LinComb {
        self.constant += other.constant;
        for (t, c) in other.terms {
            self.add_term(t, c);
        }
        self
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: LinComb) -> LinComb {
        self.add(other.scale(-1))
    }

    /// `self * k`.
    pub fn scale(mut self, k: i64) -> LinComb {
        if k == 0 {
            return LinComb::zero();
        }
        self.constant *= k;
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self
    }

    /// Rebuild an `i32` expression computing this combination.
    ///
    /// Terms are emitted in a canonical (debug-representation) order, so
    /// two equal-as-sets combinations produce *structurally identical*
    /// expressions — which is what lets common-subexpression elimination
    /// merge accesses that were snapped to the same tile element.
    pub fn to_expr(&self) -> Expr {
        let mut sorted: Vec<&(Expr, i64)> = self.terms.iter().collect();
        sorted.sort_by_key(|(t, _)| format!("{t:?}"));
        let mut acc: Option<Expr> = None;
        for (t, c) in sorted {
            let piece = if *c == 1 {
                t.clone()
            } else {
                t.clone() * Expr::i32(*c as i32)
            };
            acc = Some(match acc {
                None => piece,
                Some(a) => a + piece,
            });
        }
        match acc {
            None => Expr::i32(self.constant as i32),
            Some(a) => {
                if self.constant == 0 {
                    a
                } else {
                    a + Expr::i32(self.constant as i32)
                }
            }
        }
    }
}

/// `comb * factor`, where `factor` is a single opaque expression: each term
/// becomes `term * factor` (opaque), the constant becomes `k · factor`.
fn distribute(comb: LinComb, factor: &Expr) -> LinComb {
    let mut out = LinComb::zero();
    for (t, c) in comb.terms {
        out.add_term(t * factor.clone(), c);
    }
    out.add_term(factor.clone(), comb.constant);
    out
}

fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Scalar::I32(v)) => Some(i64::from(*v)),
        Expr::Const(Scalar::U32(v)) => Some(i64::from(*v)),
        _ => None,
    }
}

/// Decompose an integer index expression into a [`LinComb`].
///
/// Unrecognized operations become opaque single terms, so decomposition
/// never fails; it only loses granularity.
pub fn decompose(e: &Expr) -> LinComb {
    if let Some(k) = const_of(e) {
        return LinComb::constant(k);
    }
    match e {
        Expr::Binary(BinOp::Add, a, b) => decompose(a).add(decompose(b)),
        Expr::Binary(BinOp::Sub, a, b) => decompose(a).sub(decompose(b)),
        Expr::Binary(BinOp::Mul, a, b) => {
            let da = decompose(a);
            let db = decompose(b);
            if db.is_constant() {
                da.scale(db.constant)
            } else if da.is_constant() {
                db.scale(da.constant)
            } else if db.terms.len() == 1 && db.constant == 0 && db.terms[0].1 == 1 {
                // Distribute a linear combination over an opaque factor:
                // (Σ cᵢ·Tᵢ + k)·w  =  Σ cᵢ·(Tᵢ·w) + k·w.
                // This is what turns `(y + 1) * w` into `y·w + 1·w`, letting
                // two stencil accesses one row apart differ by exactly `w`.
                distribute(da, b)
            } else if da.terms.len() == 1 && da.constant == 0 && da.terms[0].1 == 1 {
                distribute(db, a)
            } else {
                LinComb::term(e.clone())
            }
        }
        Expr::Binary(BinOp::Shl, a, b) => {
            if let Some(k) = const_of(b) {
                if (0..31).contains(&k) {
                    return decompose(a).scale(1 << k);
                }
            }
            LinComb::term(e.clone())
        }
        _ => LinComb::term(e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::VarId;

    fn v(n: u32) -> Expr {
        Expr::Var(VarId(n))
    }

    #[test]
    fn constants_fold() {
        let c = decompose(&(Expr::i32(3) + Expr::i32(4)));
        assert!(c.is_constant());
        assert_eq!(c.constant, 7);
    }

    #[test]
    fn stencil_index_shape() {
        // (y + 1) * w + x + 2 where w is a scalar param.
        let w = Expr::Param(0);
        let idx = (v(0) + Expr::i32(1)) * w.clone() + v(1) + Expr::i32(2);
        let c = decompose(&idx);
        // Terms: (y*w opaque? No: (y+1)*w = y*w + w; y*w is opaque product.)
        assert_eq!(c.constant, 2);
        assert_eq!(c.coeff_of(&w), 1);
        assert_eq!(c.coeff_of(&(v(0) * w.clone())), 1);
        assert_eq!(c.coeff_of(&v(1)), 1);
    }

    #[test]
    fn differences_between_neighbors() {
        let w = Expr::Param(0);
        let base = v(0) * w.clone() + v(1);
        let north = v(0) * w.clone() + v(1) - w.clone();
        let east = v(0) * w.clone() + v(1) + Expr::i32(1);
        let d_north = decompose(&north).sub(decompose(&base));
        assert_eq!(d_north.coeff_of(&w), -1);
        assert_eq!(d_north.constant, 0);
        let d_east = decompose(&east).sub(decompose(&base));
        assert!(d_east.is_constant());
        assert_eq!(d_east.constant, 1);
    }

    #[test]
    fn scaling_and_shift() {
        let c = decompose(&(v(0) << Expr::i32(3)));
        assert_eq!(c.coeff_of(&v(0)), 8);
        let c = decompose(&(v(0) * Expr::i32(4) + v(0)));
        assert_eq!(c.coeff_of(&v(0)), 5);
    }

    #[test]
    fn cancelling_terms_disappear() {
        let c = decompose(&(v(0) - v(0) + Expr::i32(1)));
        assert!(c.is_constant());
        assert_eq!(c.constant, 1);
    }

    #[test]
    fn to_expr_roundtrips_through_decompose() {
        let w = Expr::Param(0);
        let original = v(0) * w.clone() + w.clone() * Expr::i32(2) + Expr::i32(5);
        let c = decompose(&original);
        let rebuilt = c.to_expr();
        let c2 = decompose(&rebuilt);
        assert_eq!(c, c2);
    }

    #[test]
    fn opaque_products_stay_opaque() {
        let c = decompose(&(v(0) * v(1)));
        assert_eq!(c.terms.len(), 1);
        assert_eq!(c.coeff_of(&(v(0) * v(1))), 1);
    }

    #[test]
    fn zero_scale_clears() {
        let c = decompose(&(v(0) * Expr::i32(0)));
        assert!(c.is_constant());
        assert_eq!(c.constant, 0);
    }
}
