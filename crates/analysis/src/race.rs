//! Barrier-aware shared-memory race detector.
//!
//! The detector builds a *symbolic per-thread access set* for every
//! `MemRef::Shared` load, store, and atomic in a kernel. Accesses are
//! partitioned into **barrier phases**: a counter that advances at every
//! `Sync`, so two accesses can only race when they fall into the same
//! phase. Loops whose bodies contain a barrier are walked **twice** with
//! the phase counter running on — that models the back edge (the last
//! phase of iteration *i* is adjacent to the first phase of iteration
//! *i + 1*) without merging unrelated phases.
//!
//! Each index expression is normalized by substituting single-definition
//! locals and decomposing into a linear combination (the same
//! [`crate::affine`] form the stencil detector uses). Terms are classified
//! as thread-ID contributions (`ThreadIdX`/`ThreadIdY` with constant
//! coefficients), enclosing-loop variables with known constant ranges,
//! block-uniform expressions (block IDs, dimensions, parameters — equal
//! for every thread of a block, so they cancel between two accesses when
//! they match), or **opaque**. Opaque indices are conservatively flagged.
//!
//! For a pair of same-phase accesses (not both reads, not both atomics)
//! the detector searches for a concrete witness: two *distinct* threads
//! `(tx1, ty1) ≠ (tx2, ty2)` of one block, plus loop-variable values in
//! range, that make the two indices collide. A found witness is an
//! `error[race]` (it names the threads and the index); an index the
//! detector cannot reason about produces a conservative `warning[race]`.
//!
//! The detector also reports `barrier-divergence`: a `Sync` under
//! thread-dependent control flow, which the SIMT model cannot execute
//! meaningfully.
//!
//! Known over-approximations (documented in DESIGN.md): `if` guards on
//! accesses are ignored (a guarded access is treated as always executed),
//! and distinct loop iterations are enumerated independently, so a
//! reported witness may pair iterations that never coexist. Both err
//! toward *flagging*, preserving soundness of a clean report.

use std::collections::{BTreeMap, BTreeSet};

use paraprox_ir::{
    for_each_expr, rewrite_expr, Expr, Kernel, KernelId, MemRef, Scalar, SharedId, Special, Stmt,
    VarId,
};

use crate::affine::decompose;
use crate::context::LaunchContext;
use crate::diag::{push_unique, Diagnostic, Severity};

/// Budget for the witness search (thread pairs × loop-value combinations).
const SEARCH_BUDGET: u64 = 4_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Read,
    Write,
    Atomic,
}

impl AccessKind {
    fn name(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        }
    }
}

/// One loop-variable term of an affine index: coefficient plus the
/// variable's inclusive value range.
#[derive(Debug, Clone)]
struct LoopTerm {
    coeff: i64,
    lo: i64,
    hi: i64,
}

/// An index in solved form.
#[derive(Debug, Clone)]
enum IndexForm {
    Affine(AffineIndex),
    /// The reason the index resisted normalization.
    Opaque(&'static str),
}

#[derive(Debug, Clone, Default)]
struct AffineIndex {
    tx: i64,
    ty: i64,
    loops: Vec<LoopTerm>,
    /// Block-uniform residue, keyed by the term's debug rendering.
    uniforms: BTreeMap<String, i64>,
    constant: i64,
}

/// One symbolic shared-memory access.
#[derive(Debug, Clone)]
pub(crate) struct SharedAccess {
    shared: SharedId,
    kind: AccessKind,
    phase: u32,
    path: Vec<usize>,
    /// True for accesses recorded during the second walk of a
    /// barrier-carrying loop body (back-edge modeling).
    ghost: bool,
    index: IndexForm,
}

/// The shared accesses of one kernel, in collection order. Public so the
/// approximation passes can compare read sets before and after a rewrite
/// (see [`shared_reads_covered`]).
#[derive(Debug, Clone)]
pub struct SharedAccessSet {
    accesses: Vec<SharedAccess>,
}

impl SharedAccessSet {
    /// Number of collected accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the kernel touches no shared memory.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

struct Collector<'a> {
    ctx: Option<&'a LaunchContext>,
    /// Fully substituted initializers of single-definition locals.
    subst: BTreeMap<VarId, Expr>,
    /// Locals with more than one definition (any `Assign`, or a loop var).
    multi_def: BTreeSet<VarId>,
    /// Enclosing loops: variable and (when computable) inclusive range.
    loops: Vec<(VarId, Option<(i64, i64)>)>,
    /// How many enclosing control constructs are thread-variant.
    variant_depth: usize,
    phase: u32,
    ghost: bool,
    path: Vec<usize>,
    accesses: Vec<SharedAccess>,
    /// `(path, message)` for barrier-divergence findings.
    divergent_syncs: Vec<(Vec<usize>, String)>,
}

impl<'a> Collector<'a> {
    fn new(kernel: &'a Kernel, ctx: Option<&'a LaunchContext>) -> Self {
        let mut multi_def = BTreeSet::new();
        paraprox_ir::for_each_stmt(&kernel.body, &mut |s| match s {
            Stmt::Assign { var, .. } => {
                multi_def.insert(*var);
            }
            Stmt::For { var, .. } => {
                multi_def.insert(*var);
            }
            _ => {}
        });
        Collector {
            ctx,
            subst: BTreeMap::new(),
            multi_def,
            loops: Vec::new(),
            variant_depth: 0,
            phase: 0,
            ghost: false,
            path: Vec::new(),
            accesses: Vec::new(),
            divergent_syncs: Vec::new(),
        }
    }

    /// Substitute single-definition locals into `e`.
    fn substitute(&self, e: &Expr) -> Expr {
        rewrite_expr(e.clone(), &mut |n| match &n {
            Expr::Var(v) => match self.subst.get(v) {
                Some(def) => def.clone(),
                None => n,
            },
            _ => n,
        })
    }

    /// Exact integer value of a substituted expression, using launch facts.
    fn const_eval(&self, e: &Expr) -> Option<i64> {
        match e {
            Expr::Const(Scalar::I32(v)) => Some(i64::from(*v)),
            Expr::Const(Scalar::U32(v)) => Some(i64::from(*v)),
            Expr::Param(i) => self.ctx.and_then(|c| c.scalar_int(*i)),
            Expr::Special(Special::BlockDimX) => self.ctx.map(|c| i64::from(c.block.0)),
            Expr::Special(Special::BlockDimY) => self.ctx.map(|c| i64::from(c.block.1)),
            Expr::Special(Special::GridDimX) => self.ctx.map(|c| i64::from(c.grid.0)),
            Expr::Special(Special::GridDimY) => self.ctx.map(|c| i64::from(c.grid.1)),
            Expr::Unary(paraprox_ir::UnOp::Neg, a) => self.const_eval(a).map(|v| -v),
            Expr::Cast(paraprox_ir::Ty::I32 | paraprox_ir::Ty::U32, a) => self.const_eval(a),
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.const_eval(a)?, self.const_eval(b)?);
                use paraprox_ir::BinOp;
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => (b != 0).then(|| a / b),
                    BinOp::Rem => (b != 0).then(|| a % b),
                    BinOp::Min => Some(a.min(b)),
                    BinOp::Max => Some(a.max(b)),
                    BinOp::Shl => (0..=31).contains(&b).then(|| a << b),
                    BinOp::Shr => (0..=31).contains(&b).then(|| a >> b),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Is the (substituted) expression possibly thread-dependent?
    fn thread_variant(&self, e: &Expr) -> bool {
        let mut variant = false;
        for_each_expr(e, &mut |n| match n {
            Expr::Special(Special::ThreadIdX | Special::ThreadIdY) => variant = true,
            Expr::Load { .. } | Expr::Call { .. } => variant = true,
            // Remaining variables are loop vars (uniform only when the
            // loop bounds are, which enclosing-scope checks handle) or
            // multi-definition locals (unknown). Loop variables are
            // block-uniform per iteration; everything else is not
            // provably uniform.
            Expr::Var(v) if !self.loops.iter().any(|(lv, _)| lv == v) => {
                variant = true;
            }
            _ => {}
        });
        variant
    }

    /// Is the term block-uniform (identical for every thread of a block)?
    fn uniform(&self, e: &Expr) -> bool {
        let mut uniform = true;
        for_each_expr(e, &mut |n| match n {
            Expr::Special(Special::ThreadIdX | Special::ThreadIdY) => uniform = false,
            Expr::Load { .. } | Expr::Call { .. } | Expr::Var(_) => uniform = false,
            _ => {}
        });
        uniform
    }

    /// Normalize a substituted index expression.
    fn classify(&self, index: &Expr) -> IndexForm {
        let comb = decompose(index);
        let mut out = AffineIndex {
            constant: comb.constant,
            ..AffineIndex::default()
        };
        for (term, coeff) in &comb.terms {
            match term {
                Expr::Special(Special::ThreadIdX) => out.tx += coeff,
                Expr::Special(Special::ThreadIdY) => out.ty += coeff,
                Expr::Var(v) => {
                    let Some((_, range)) = self.loops.iter().rev().find(|(lv, _)| lv == v) else {
                        return IndexForm::Opaque("index depends on a mutated local");
                    };
                    let Some((lo, hi)) = range else {
                        return IndexForm::Opaque("enclosing loop has an unknown range");
                    };
                    out.loops.push(LoopTerm {
                        coeff: *coeff,
                        lo: *lo,
                        hi: *hi,
                    });
                }
                other if self.uniform(other) => {
                    *out.uniforms.entry(format!("{other:?}")).or_insert(0) += coeff;
                }
                _ => return IndexForm::Opaque("non-affine index"),
            }
        }
        out.uniforms.retain(|_, c| *c != 0);
        IndexForm::Affine(out)
    }

    fn record(&mut self, shared: SharedId, kind: AccessKind, index: &Expr) {
        let substituted = self.substitute(index);
        let index = self.classify(&substituted);
        self.accesses.push(SharedAccess {
            shared,
            kind,
            phase: self.phase,
            path: self.path.clone(),
            ghost: self.ghost,
            index,
        });
    }

    /// Record every shared load inside `e` (walking the *original*
    /// expression so each load is seen once, at its execution site).
    fn record_loads(&mut self, e: &Expr) {
        let mut loads = Vec::new();
        for_each_expr(e, &mut |n| {
            if let Expr::Load {
                mem: MemRef::Shared(s),
                index,
            } = n
            {
                loads.push((*s, (**index).clone()));
            }
        });
        for (s, index) in loads {
            self.record(s, AccessKind::Read, &index);
        }
    }

    fn body_has_sync(body: &[Stmt]) -> bool {
        let mut found = false;
        paraprox_ir::for_each_stmt(body, &mut |s| {
            if matches!(s, Stmt::Sync) {
                found = true;
            }
        });
        found
    }

    fn walk(&mut self, stmts: &[Stmt], offset: usize) {
        for (i, stmt) in stmts.iter().enumerate() {
            self.path.push(offset + i);
            match stmt {
                Stmt::Let { var, init } => {
                    self.record_loads(init);
                    if !self.multi_def.contains(var) {
                        let def = self.substitute(init);
                        self.subst.insert(*var, def);
                    }
                }
                Stmt::Assign { value, .. } => self.record_loads(value),
                Stmt::Store { mem, index, value } => {
                    self.record_loads(index);
                    self.record_loads(value);
                    if let MemRef::Shared(s) = mem {
                        self.record(*s, AccessKind::Write, index);
                    }
                }
                Stmt::Atomic {
                    mem, index, value, ..
                } => {
                    self.record_loads(index);
                    self.record_loads(value);
                    if let MemRef::Shared(s) = mem {
                        self.record(*s, AccessKind::Atomic, index);
                    }
                }
                Stmt::Sync => {
                    if self.variant_depth > 0 {
                        self.divergent_syncs.push((
                            self.path.clone(),
                            "barrier under thread-dependent control flow: threads of a block may \
                             not all reach it"
                                .to_string(),
                        ));
                    }
                    self.phase += 1;
                }
                Stmt::Return(e) => self.record_loads(e),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.record_loads(cond);
                    let variant = self.thread_variant(&self.substitute(cond));
                    if variant {
                        self.variant_depth += 1;
                    }
                    let entry_phase = self.phase;
                    self.walk(then_body, 0);
                    let after_then = self.phase;
                    self.phase = entry_phase;
                    self.walk(else_body, then_body.len());
                    // A barrier inside only one arm means the arms disagree
                    // on phase; keep the smaller count so accesses that may
                    // run barrier-free stay comparable (conservative).
                    self.phase = self.phase.min(after_then);
                    if variant {
                        self.variant_depth -= 1;
                    }
                }
                Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                } => {
                    self.record_loads(init);
                    self.record_loads(cond.bound());
                    self.record_loads(step.amount());
                    let bounds_variant = [init, cond.bound(), step.amount()]
                        .into_iter()
                        .any(|e| self.thread_variant(&self.substitute(e)));
                    if bounds_variant {
                        self.variant_depth += 1;
                    }
                    let range = self.loop_range(init, cond, step);
                    self.loops.push((*var, range));
                    self.walk(body, 0);
                    if Self::body_has_sync(body) {
                        // Second pass: models the loop back edge. The phase
                        // counter keeps running, so the last phase of
                        // iteration i sits next to the first phase of
                        // iteration i+1 instead of wrapping around.
                        self.ghost = true;
                        self.walk(body, 0);
                        self.ghost = false;
                    }
                    self.loops.pop();
                    if bounds_variant {
                        self.variant_depth -= 1;
                    }
                }
            }
            self.path.pop();
        }
    }

    /// Inclusive value range of a loop variable inside its body.
    fn loop_range(
        &self,
        init: &Expr,
        cond: &paraprox_ir::LoopCond,
        step: &paraprox_ir::LoopStep,
    ) -> Option<(i64, i64)> {
        use paraprox_ir::{LoopCond, LoopStep};
        let init_v = self.const_eval(&self.substitute(init))?;
        let bound_v = self.const_eval(&self.substitute(cond.bound()))?;
        let amount_v = self.const_eval(&self.substitute(step.amount()))?;
        match (cond, step) {
            (LoopCond::Lt(_), LoopStep::Add(_)) if amount_v > 0 => Some((init_v, bound_v - 1)),
            (LoopCond::Le(_), LoopStep::Add(_)) if amount_v > 0 => Some((init_v, bound_v)),
            (LoopCond::Gt(_), LoopStep::Sub(_)) if amount_v > 0 => Some((bound_v + 1, init_v)),
            (LoopCond::Ge(_), LoopStep::Sub(_)) if amount_v > 0 => Some((bound_v, init_v)),
            // Multiplicative/shift loops visit a sparse subset; the dense
            // hull is still a sound over-approximation of the values.
            (LoopCond::Lt(_), LoopStep::Mul(_) | LoopStep::Shl(_))
                if amount_v > 0 && init_v >= 0 =>
            {
                Some((init_v, bound_v - 1))
            }
            (LoopCond::Le(_), LoopStep::Mul(_) | LoopStep::Shl(_))
                if amount_v > 0 && init_v >= 0 =>
            {
                Some((init_v, bound_v))
            }
            _ => None,
        }
    }
}

/// Collect the symbolic shared accesses of `kernel`.
pub fn shared_access_set(kernel: &Kernel, ctx: Option<&LaunchContext>) -> SharedAccessSet {
    let mut c = Collector::new(kernel, ctx);
    c.walk(&kernel.body, 0);
    SharedAccessSet {
        accesses: c.accesses,
    }
}

/// A concrete two-thread collision.
struct Witness {
    t1: (i64, i64),
    t2: (i64, i64),
    value: i64,
}

/// Search for two distinct threads whose indices collide. `Err(())` means
/// the search space exceeded the budget.
fn find_witness(a: &AffineIndex, b: &AffineIndex, bx: i64, by: i64) -> Result<Option<Witness>, ()> {
    // Uniform residues must cancel for the equation to be decidable.
    debug_assert!(a.uniforms == b.uniforms);
    let delta_mode = a.tx == b.tx && a.ty == b.ty;
    let mut dims: Vec<(i64, i64)> = Vec::new();
    if delta_mode {
        dims.push((-(bx - 1), bx - 1)); // dx
        dims.push((-(by - 1), by - 1)); // dy
    } else {
        dims.push((0, bx - 1)); // tx1
        dims.push((0, by - 1)); // ty1
        dims.push((0, bx - 1)); // tx2
        dims.push((0, by - 1)); // ty2
    }
    let thread_dims = dims.len();
    for t in a.loops.iter().chain(b.loops.iter()) {
        if t.lo > t.hi {
            return Ok(None); // empty loop: the access never executes
        }
        dims.push((t.lo, t.hi));
    }
    let mut combos: u64 = 1;
    for (lo, hi) in &dims {
        combos = combos.saturating_mul((hi - lo + 1) as u64);
        if combos > SEARCH_BUDGET {
            return Err(());
        }
    }
    let mut vals: Vec<i64> = dims.iter().map(|d| d.0).collect();
    loop {
        // Evaluate the collision equation at this assignment.
        let (lhs_threads, t1, t2, distinct) = if delta_mode {
            let (dx, dy) = (vals[0], vals[1]);
            let tx1 = dx.max(0);
            let ty1 = dy.max(0);
            let t1 = (tx1, ty1);
            let t2 = (tx1 - dx, ty1 - dy);
            (a.tx * dx + a.ty * dy, t1, t2, (dx, dy) != (0, 0))
        } else {
            let (tx1, ty1, tx2, ty2) = (vals[0], vals[1], vals[2], vals[3]);
            (
                a.tx * tx1 + a.ty * ty1 - (b.tx * tx2 + b.ty * ty2),
                (tx1, ty1),
                (tx2, ty2),
                (tx1, ty1) != (tx2, ty2),
            )
        };
        if distinct {
            let mut lhs = lhs_threads + a.constant - b.constant;
            let mut k = thread_dims;
            for t in &a.loops {
                lhs += t.coeff * vals[k];
                k += 1;
            }
            for t in &b.loops {
                lhs -= t.coeff * vals[k];
                k += 1;
            }
            if lhs == 0 {
                // Reconstruct the index value for the report.
                let mut value = a.tx * t1.0 + a.ty * t1.1 + a.constant;
                for (t, v) in a.loops.iter().zip(&vals[thread_dims..]) {
                    value += t.coeff * v;
                }
                return Ok(Some(Witness { t1, t2, value }));
            }
        }
        // Odometer step.
        let mut i = vals.len();
        loop {
            if i == 0 {
                return Ok(None);
            }
            i -= 1;
            if vals[i] < dims[i].1 {
                vals[i] += 1;
                break;
            }
            vals[i] = dims[i].0;
        }
    }
}

fn shared_name(kernel: &Kernel, s: SharedId) -> String {
    kernel
        .shared
        .get(s.index())
        .map(|d| d.name.clone())
        .unwrap_or_else(|| format!("#{}", s.0))
}

fn path_string(path: &[usize]) -> String {
    if path.is_empty() {
        "<kernel>".to_string()
    } else {
        path.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// Run the race detector on one kernel.
///
/// Without a [`LaunchContext`] (no block shape) only the structural
/// barrier-divergence check runs — the pairwise search needs thread
/// ranges to enumerate.
pub fn check_races(
    kernel: &Kernel,
    id: KernelId,
    ctx: Option<&LaunchContext>,
    out: &mut Vec<Diagnostic>,
) {
    let mut c = Collector::new(kernel, ctx);
    c.walk(&kernel.body, 0);
    for (path, msg) in &c.divergent_syncs {
        push_unique(
            out,
            Diagnostic::new(
                Severity::Warning,
                id,
                &kernel.name,
                path,
                "barrier-divergence",
                msg.clone(),
            ),
        );
    }
    let Some(ctx) = ctx else {
        return;
    };
    let (bx, by) = (i64::from(ctx.block.0), i64::from(ctx.block.1));
    if bx * by < 2 {
        return; // single-thread blocks cannot race
    }
    let accesses = &c.accesses;
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.shared != b.shared || a.phase != b.phase {
                continue;
            }
            if a.ghost && b.ghost {
                continue; // duplicate of the first-walk pair
            }
            if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                continue;
            }
            if a.kind == AccessKind::Atomic && b.kind == AccessKind::Atomic {
                continue; // atomics serialize against each other
            }
            let name = shared_name(kernel, a.shared);
            let stmts = format!(
                "stmts {} and {}",
                path_string(&a.path),
                path_string(&b.path)
            );
            let pair = format!("{}-{}", a.kind.name(), b.kind.name());
            match (&a.index, &b.index) {
                (IndexForm::Opaque(reason), _) | (_, IndexForm::Opaque(reason)) => {
                    push_unique(
                        out,
                        Diagnostic::new(
                            Severity::Warning,
                            id,
                            &kernel.name,
                            &a.path,
                            "race",
                            format!(
                                "possible {pair} race on shared `{name}` ({stmts}): {reason}, \
                                 so distinct threads cannot be proven apart"
                            ),
                        ),
                    );
                }
                (IndexForm::Affine(fa), IndexForm::Affine(fb)) => {
                    if fa.uniforms != fb.uniforms {
                        push_unique(
                            out,
                            Diagnostic::new(
                                Severity::Warning,
                                id,
                                &kernel.name,
                                &a.path,
                                "race",
                                format!(
                                    "possible {pair} race on shared `{name}` ({stmts}): indices \
                                     differ by a block-uniform term the analysis cannot cancel"
                                ),
                            ),
                        );
                        continue;
                    }
                    match find_witness(fa, fb, bx, by) {
                        Ok(None) => {}
                        Ok(Some(w)) => {
                            push_unique(
                                out,
                                Diagnostic::new(
                                    Severity::Error,
                                    id,
                                    &kernel.name,
                                    &a.path,
                                    "race",
                                    format!(
                                        "{pair} race on shared `{name}` ({stmts}): threads \
                                         ({}, {}) and ({}, {}) can both touch index {} in the \
                                         same barrier phase",
                                        w.t1.0, w.t1.1, w.t2.0, w.t2.1, w.value
                                    ),
                                ),
                            );
                        }
                        Err(()) => {
                            push_unique(
                                out,
                                Diagnostic::new(
                                    Severity::Warning,
                                    id,
                                    &kernel.name,
                                    &a.path,
                                    "race",
                                    format!(
                                        "possible {pair} race on shared `{name}` ({stmts}): \
                                         search space too large to verify statically"
                                    ),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Is every shared **read** of `rewritten` covered by a same-phase read of
/// the same array in `original`, for every thread?
///
/// Used by the tile-replication gate: a rewrite may redirect a shared read
/// only to locations the original kernel already read in that barrier
/// phase (otherwise replication widens the access across a phase and can
/// observe values a barrier was supposed to order).
pub fn shared_reads_covered(original: &SharedAccessSet, rewritten: &SharedAccessSet) -> bool {
    let orig_reads: Vec<&SharedAccess> = original
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Read)
        .collect();
    for access in &rewritten.accesses {
        if access.kind != AccessKind::Read {
            continue;
        }
        let IndexForm::Affine(fa) = &access.index else {
            return false; // cannot reason about an opaque rewritten read
        };
        let covered = orig_reads.iter().any(|orig| {
            orig.shared == access.shared
                && orig.phase == access.phase
                && match &orig.index {
                    IndexForm::Affine(fo) => covers(fo, fa),
                    IndexForm::Opaque(_) => false,
                }
        });
        if !covered {
            return false;
        }
    }
    true
}

/// Does the value set of `orig` contain the value set of `new_idx` for
/// every thread? Requires matching thread coefficients and uniform
/// residues; then every assignment of `new_idx`'s loop variables must be
/// matched by some assignment of `orig`'s.
fn covers(orig: &AffineIndex, new_idx: &AffineIndex) -> bool {
    if orig.tx != new_idx.tx || orig.ty != new_idx.ty || orig.uniforms != new_idx.uniforms {
        return false;
    }
    // ∀ new loop values ∃ orig loop values: Σo + ko = Σn + kn.
    let mut new_combos: u64 = 1;
    for t in &new_idx.loops {
        if t.lo > t.hi {
            return true; // the rewritten access never executes
        }
        new_combos = new_combos.saturating_mul((t.hi - t.lo + 1) as u64);
    }
    let mut orig_combos: u64 = 1;
    for t in &orig.loops {
        if t.lo > t.hi {
            return false;
        }
        orig_combos = orig_combos.saturating_mul((t.hi - t.lo + 1) as u64);
    }
    if new_combos.saturating_mul(orig_combos) > SEARCH_BUDGET {
        return false;
    }
    let mut new_vals: Vec<i64> = new_idx.loops.iter().map(|t| t.lo).collect();
    loop {
        let target: i64 = new_idx.constant
            + new_idx
                .loops
                .iter()
                .zip(&new_vals)
                .map(|(t, v)| t.coeff * v)
                .sum::<i64>();
        // Search orig's loop space for the target.
        let mut orig_vals: Vec<i64> = orig.loops.iter().map(|t| t.lo).collect();
        let mut found = false;
        loop {
            let v: i64 = orig.constant
                + orig
                    .loops
                    .iter()
                    .zip(&orig_vals)
                    .map(|(t, v)| t.coeff * v)
                    .sum::<i64>();
            if v == target {
                found = true;
                break;
            }
            let mut i = orig_vals.len();
            let mut done = true;
            while i > 0 {
                i -= 1;
                if orig_vals[i] < orig.loops[i].hi {
                    orig_vals[i] += 1;
                    done = false;
                    break;
                }
                orig_vals[i] = orig.loops[i].lo;
            }
            if done {
                break;
            }
        }
        if !found {
            return false;
        }
        // Next assignment of the rewritten access's loop variables.
        let mut i = new_vals.len();
        let mut done = true;
        while i > 0 {
            i -= 1;
            if new_vals[i] < new_idx.loops[i].hi {
                new_vals[i] += 1;
                done = false;
                break;
            }
            new_vals[i] = new_idx.loops[i].lo;
        }
        if done {
            return true;
        }
    }
}
