//! The iterative job runner: one device, one pooled worker scope, many
//! launches.

use paraprox_approx::StencilScheme;
use paraprox_ir::{Program, Scalar};
use paraprox_quality::{QualityStream, Toq};
use paraprox_runtime::{Approximable, EngineDiagnostics, RunOutcome, RuntimeError};
use paraprox_vgpu::{ArgValue, Device, Dim2, LaunchStats};

use crate::gate::{gate_schedule, sampled_count};
use crate::model::{sample_params, IterModel, RESIDUAL_BLOCK};
use crate::schedule::{ConvergenceSpec, IterSchedule};
use crate::IterError;

/// Produces a fresh initial field (row-major `width * height` values)
/// from a seed. `Send` so an [`IterativeApp`] can be owned by a serving
/// worker thread.
pub type FieldGen = Box<dyn FnMut(u64) -> Vec<f32> + Send>;

/// What happened on the most recent convergence loop.
#[derive(Debug, Clone, PartialEq)]
pub struct IterRun {
    /// Label of the schedule that ran.
    pub schedule: String,
    /// Stencil iterations executed.
    pub iterations: u32,
    /// Residual checks executed.
    pub checks: u32,
    /// Last measured residual (mean |next - cur| over the checked
    /// sample).
    pub residual: f64,
    /// True when the loop stopped on tolerance (measured or predicted)
    /// rather than the iteration cap.
    pub converged: bool,
    /// True when the residual-trend predictor, not a measured residual,
    /// ended the loop.
    pub predicted: bool,
}

/// An [`IterModel`] bound to a device, with a ladder of gated
/// approximation schedules exposed through
/// [`paraprox_runtime::Approximable`] — rung 0 upward are the non-exact
/// schedules; the exact loop is the reference the tuner runs separately.
///
/// Every launch of every iteration of every run goes through the same
/// [`Device`], so one worker pool and one set of per-worker buffer
/// images serve the whole job. The ping-pong output buffer and the
/// residual partials buffer are declared input-overwritten on each
/// launch, which lets pooled images skip their refresh copies (the
/// `launch_overwriting` contract re-verifies this statically every
/// launch — the gate is not trusted at run time).
pub struct IterativeApp {
    device: Device,
    model: IterModel,
    spec: ConvergenceSpec,
    schedules: Vec<IterSchedule>,
    /// Stage-program cache: `None` is the base (exact) program; one
    /// entry per distinct `(scheme, reach)` any admitted schedule uses.
    programs: Vec<(Option<(StencilScheme, u32)>, Program)>,
    gen: FieldGen,
    total: LaunchStats,
    last_run: Option<IterRun>,
}

impl std::fmt::Debug for IterativeApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterativeApp")
            .field("model", &self.model)
            .field("schedules", &self.schedules.len())
            .finish_non_exhaustive()
    }
}

impl IterativeApp {
    /// Bind a model to a device. The exact schedule is gated immediately:
    /// a model whose base program fails the analyses is refused outright.
    pub fn new(
        device: Device,
        model: IterModel,
        spec: ConvergenceSpec,
        gen: FieldGen,
    ) -> Result<IterativeApp, IterError> {
        gate_schedule(&model, &IterSchedule::exact())?;
        let programs = vec![(None, model.program.clone())];
        Ok(IterativeApp {
            device,
            model,
            spec,
            schedules: Vec::new(),
            programs,
            gen,
            total: LaunchStats::default(),
            last_run: None,
        })
    }

    /// Admit one schedule as a rung, after [`gate_schedule`] vets it.
    /// Stage programs are cached keyed by `(scheme, reach)`, so
    /// schedules sharing a stage share the program.
    pub fn add_schedule(&mut self, schedule: IterSchedule) -> Result<(), IterError> {
        let stages = gate_schedule(&self.model, &schedule)?;
        // gate_schedule returns [exact, approx...] in distinct_approxes
        // order; cache the approx stages we have not seen yet.
        for (approx, program) in schedule
            .distinct_approxes()
            .into_iter()
            .zip(stages.into_iter().skip(1))
        {
            if !self.programs.iter().any(|(k, _)| *k == Some(approx)) {
                self.programs.push((Some(approx), program));
            }
        }
        self.schedules.push(schedule);
        Ok(())
    }

    /// Admit every preset rung ([`IterSchedule::presets`], minus the
    /// exact reference). Fails if any preset is refused — the presets
    /// are safe by construction for any model that passes the exact
    /// gate.
    pub fn with_presets(mut self) -> Result<IterativeApp, IterError> {
        for schedule in IterSchedule::presets(self.spec.max_iters) {
            if !schedule.is_exact() {
                self.add_schedule(schedule)?;
            }
        }
        Ok(self)
    }

    /// The bound model.
    pub fn model(&self) -> &IterModel {
        &self.model
    }

    /// The convergence criteria every schedule runs under.
    pub fn spec(&self) -> &ConvergenceSpec {
        &self.spec
    }

    /// The admitted schedule ladder (rung order).
    pub fn schedules(&self) -> &[IterSchedule] {
        &self.schedules
    }

    /// Access the underlying device (worker pool, refresh counters,
    /// schedule-seed control).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Loop accounting for the most recent run.
    pub fn last_run(&self) -> Option<&IterRun> {
        self.last_run.as_ref()
    }

    /// Total launch counters accumulated over every run so far.
    pub fn total_stats(&self) -> &LaunchStats {
        &self.total
    }

    /// Run one convergence loop under `schedule` on the field generated
    /// from `seed`; returns the converged field and the summed cycle
    /// cost of every launch the loop issued.
    pub fn run_schedule(
        &mut self,
        schedule: &IterSchedule,
        seed: u64,
    ) -> Result<RunOutcome, RuntimeError> {
        let n = self.model.elems();
        let field = (self.gen)(seed);
        if field.len() != n {
            return Err(RuntimeError(format!(
                "field generator produced {} elements for a {n}-element field",
                field.len()
            )));
        }
        // Fresh arena per run (reclaimed below); the worker pool and its
        // images persist across runs, and because the arena layout is
        // identical run to run, pooled images keep their refresh skips.
        let mark = self.device.buffer_mark();
        let result = self.run_loop(schedule, &field);
        self.device.reclaim_buffers(mark);
        result
    }

    fn run_loop(
        &mut self,
        schedule: &IterSchedule,
        field: &[f32],
    ) -> Result<RunOutcome, RuntimeError> {
        let launch_err = |e: paraprox_vgpu::LaunchError| RuntimeError(e.to_string());
        let n = self.model.elems();
        let mut cur = self.device.alloc_f32(paraprox_ir::MemSpace::Global, field);
        let mut next = self
            .device
            .alloc_f32(paraprox_ir::MemSpace::Global, &vec![0.0f32; n]);
        let partials = self.device.alloc_f32(
            paraprox_ir::MemSpace::Global,
            &vec![0.0f32; self.model.partials_len()],
        );

        let mut stats = LaunchStats::default();
        let mut run = IterRun {
            schedule: schedule.label.clone(),
            iterations: 0,
            checks: 0,
            residual: f64::INFINITY,
            converged: false,
            predicted: false,
        };
        let mut prev_res: Option<f64> = None;
        let mut trend = schedule
            .predictor
            .as_ref()
            .map(|p| QualityStream::new(Toq::new(0.0).expect("0 is a valid TOQ"), p.alpha));

        // Baseline: one *exact* step from the initial field, measured on
        // the full grid and then discarded (`next` is rewritten by the
        // first real iteration). Anchoring `tol_rel` here means every
        // schedule — whatever its stages or check stride — chases the
        // identical target; anchoring to a schedule's own first check
        // would hand reach-ramped stages a smaller baseline (their step
        // moves the field less) and so a covertly stricter tolerance.
        if self.spec.max_iters > 0 {
            let mut args = vec![ArgValue::Buffer(cur), ArgValue::Buffer(next)];
            args.extend(
                self.model
                    .stencil_scalars
                    .iter()
                    .map(|&s| ArgValue::Scalar(s)),
            );
            let st = self
                .device
                .launch_overwriting(
                    &self.programs[0].1,
                    self.model.stencil,
                    self.model.grid,
                    self.model.block,
                    &args,
                    &[1],
                )
                .map_err(launch_err)?;
            stats.accumulate(&st);
            let (rs, res) = self
                .residual_launch(cur, next, partials, 1, 0, n)
                .map_err(launch_err)?;
            stats.accumulate(&rs);
            run.checks += 1;
            run.residual = res;
        }
        let tol = self.spec.tolerance(run.residual);

        for iter in 0..self.spec.max_iters {
            let approx = schedule.approx_at(iter);
            let program = &self
                .programs
                .iter()
                .find(|(k, _)| *k == approx)
                .ok_or_else(|| {
                    RuntimeError(format!(
                        "schedule `{}` was not admitted via add_schedule",
                        schedule.label
                    ))
                })?
                .1;
            let mut args = vec![ArgValue::Buffer(cur), ArgValue::Buffer(next)];
            args.extend(
                self.model
                    .stencil_scalars
                    .iter()
                    .map(|&s| ArgValue::Scalar(s)),
            );
            let st = self
                .device
                .launch_overwriting(
                    program,
                    self.model.stencil,
                    self.model.grid,
                    self.model.block,
                    &args,
                    &[1],
                )
                .map_err(launch_err)?;
            stats.accumulate(&st);
            run.iterations = iter + 1;

            let mut stop = false;
            // The final iteration always checks so a capped run still
            // reports a residual.
            if schedule.checks_after(iter) || iter + 1 == self.spec.max_iters {
                let count = sampled_count(n, schedule.sample_log2);
                let (mul, off) = if schedule.sample_log2 == 0 {
                    (1, 0)
                } else {
                    sample_params(schedule.seed, iter, n)
                };
                let (rs, res) = self
                    .residual_launch(cur, next, partials, mul, off, count)
                    .map_err(launch_err)?;
                stats.accumulate(&rs);
                run.checks += 1;
                run.residual = res;
                // A residual measured under an approximate stage tracks
                // the *approximate* map's fixed point (a degenerate
                // rewrite could sit at its own fixed point instantly),
                // so only exact stages may declare convergence or fire
                // the predictor; approximate-stage checks still feed the
                // baseline and the trend.
                let exact_stage = approx.is_none();
                if let (Some(trend), Some(prev)) = (trend.as_mut(), prev_res) {
                    if prev > 0.0 && run.residual.is_finite() {
                        trend.observe(run.residual / prev);
                    }
                }
                if exact_stage && run.residual <= tol {
                    run.converged = true;
                    stop = true;
                } else if let (true, Some(p), Some(trend)) =
                    (exact_stage, schedule.predictor.as_ref(), trend.as_ref())
                {
                    if trend.count() >= p.min_checks {
                        if let Some(ratio) = trend.ewma() {
                            if ratio < 1.0 && run.residual * ratio.powi(p.horizon as i32) <= tol {
                                run.converged = true;
                                run.predicted = true;
                                stop = true;
                            }
                        }
                    }
                }
                prev_res = Some(run.residual);
            }

            std::mem::swap(&mut cur, &mut next);
            if stop {
                break;
            }
        }

        let out = self.device.read_f32(cur).map_err(launch_err)?;
        self.total.accumulate(&stats);
        self.last_run = Some(run);
        Ok(RunOutcome {
            output: out.into_iter().map(f64::from).collect(),
            cycles: stats.total_cycles(),
        })
    }

    /// Launch the residual kernel over `count` sampled lanes and fold
    /// the block partials in ascending order (worker-invariant).
    /// Returns the launch stats and the mean `|next - cur|` over the
    /// sample. The residual always runs from the base program: the
    /// kernel is identical in every stage program, and a single program
    /// keeps the device's compile cache warm.
    fn residual_launch(
        &mut self,
        cur: paraprox_vgpu::BufferId,
        next: paraprox_vgpu::BufferId,
        partials: paraprox_vgpu::BufferId,
        mul: i32,
        off: i32,
        count: usize,
    ) -> Result<(LaunchStats, f64), paraprox_vgpu::LaunchError> {
        let n = self.model.elems();
        let blocks = count / RESIDUAL_BLOCK;
        let stats = self.device.launch_overwriting(
            &self.programs[0].1,
            self.model.residual,
            Dim2::linear(blocks),
            Dim2::linear(RESIDUAL_BLOCK),
            &[
                ArgValue::Buffer(cur),
                ArgValue::Buffer(next),
                ArgValue::Buffer(partials),
                ArgValue::Scalar(Scalar::I32(mul)),
                ArgValue::Scalar(Scalar::I32(off)),
                ArgValue::Scalar(Scalar::I32(n as i32 - 1)),
                ArgValue::Scalar(Scalar::I32(count as i32)),
            ],
            &[2],
        )?;
        let sums = self.device.read_f32(partials)?;
        let total: f64 = sums[..blocks].iter().map(|&v| f64::from(v)).sum();
        Ok((stats, total / count as f64))
    }
}

impl Approximable for IterativeApp {
    fn variant_count(&self) -> usize {
        self.schedules.len()
    }

    fn variant_label(&self, index: usize) -> String {
        self.schedules[index].label.clone()
    }

    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError> {
        self.run_schedule(&IterSchedule::exact(), seed)
    }

    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
        let schedule = self.schedules[index].clone();
        self.run_schedule(&schedule, seed)
    }

    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64 {
        self.model.metric.quality(exact, approx)
    }

    fn engine_diagnostics(&self) -> EngineDiagnostics {
        EngineDiagnostics {
            ops_dispatched: self.total.ops_dispatched,
            fusions_hit: self.total.fusions_hit,
            approx_loads: self.total.approx_loads,
            bit_flips: self.total.bit_flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{diffusion_field, diffusion_model, diffusion_spec};
    use paraprox_vgpu::DeviceProfile;

    fn app(workers: usize) -> IterativeApp {
        let device = Device::new(DeviceProfile::gtx560().with_parallelism(workers));
        IterativeApp::new(
            device,
            diffusion_model(),
            diffusion_spec(),
            Box::new(diffusion_field),
        )
        .unwrap()
        .with_presets()
        .unwrap()
    }

    #[test]
    fn exact_loop_converges_and_is_deterministic() {
        let mut a = app(1);
        let r1 = a.run_exact(7).unwrap();
        let info = a.last_run().unwrap().clone();
        assert!(info.converged, "{info:?}");
        assert!(!info.predicted);
        assert!(info.iterations < a.spec().max_iters, "{info:?}");
        assert_eq!(
            info.checks,
            info.iterations + 1,
            "exact checks every iteration, plus the baseline"
        );
        let r2 = a.run_exact(7).unwrap();
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.cycles, r2.cycles);
    }

    #[test]
    fn pooled_images_skip_ping_pong_refreshes() {
        let mut a = app(3);
        a.run_exact(7).unwrap();
        // Every launch after the first declares exactly one of the
        // three arena buffers (ping-pong output or residual partials)
        // input-overwritten, so each worker image skips one copy per
        // launch; the first launch clones the whole arena.
        let info = a.last_run().unwrap();
        // checks already counts the baseline residual; +1 for the
        // baseline's discarded stencil step.
        let launches = u64::from(info.iterations + info.checks + 1);
        let d = a.device_mut();
        assert!(d.pooled_images() > 0);
        assert_eq!(d.image_refresh_skips(), 3 * (launches - 1));
        assert_eq!(d.image_refresh_copies(), 3 * (3 + 2 * (launches - 1)));
    }

    #[test]
    fn schedules_trade_cost_for_quality_within_reason() {
        let mut a = app(2);
        let exact = a.run_exact(3).unwrap();
        for i in 0..a.variant_count() {
            let label = a.variant_label(i);
            let out = a.run_variant(i, 3).unwrap();
            let q = a.quality(&exact.output, &out.output);
            assert!(q > 80.0, "schedule {label} quality {q:.2}% too low");
            let info = a.last_run().unwrap();
            assert!(
                info.converged,
                "schedule {label} did not converge: {info:?}"
            );
        }
    }

    #[test]
    fn sampled_checks_cost_less_than_exact() {
        let mut a = app(1);
        let exact = a.run_exact(11).unwrap();
        let idx = (0..a.variant_count())
            .find(|&i| a.variant_label(i) == "sampled-check")
            .unwrap();
        let sampled = a.run_variant(idx, 11).unwrap();
        let info = a.last_run().unwrap();
        assert!(info.checks < info.iterations, "{info:?}");
        assert!(
            sampled.cycles < exact.cycles,
            "sampled {} !< exact {}",
            sampled.cycles,
            exact.cycles
        );
    }

    #[test]
    fn predictor_can_end_the_loop_early() {
        let mut a = app(1);
        let idx = (0..a.variant_count())
            .find(|&i| a.variant_label(i) == "trend-exit")
            .unwrap();
        a.run_variant(idx, 5).unwrap();
        let trend = a.last_run().unwrap().clone();
        a.run_exact(5).unwrap();
        let exact = a.last_run().unwrap().clone();
        assert!(trend.converged);
        // The trend exit may not fire on every field, but it must never
        // run *longer* than the measured exact loop.
        assert!(
            trend.iterations <= exact.iterations,
            "trend {trend:?} vs exact {exact:?}"
        );
    }

    #[test]
    fn unadmitted_schedule_is_reported() {
        let device = Device::new(DeviceProfile::gtx560().with_parallelism(1));
        let mut a = IterativeApp::new(
            device,
            diffusion_model(),
            diffusion_spec(),
            Box::new(diffusion_field),
        )
        .unwrap();
        let rogue = IterSchedule::named("reach-ramp", a.spec().max_iters).unwrap();
        let err = a.run_schedule(&rogue, 0).unwrap_err();
        assert!(err.0.contains("not admitted"), "{err:?}");
    }

    #[test]
    fn bad_field_generator_is_reported() {
        let device = Device::new(DeviceProfile::gtx560().with_parallelism(1));
        let mut a = IterativeApp::new(
            device,
            diffusion_model(),
            diffusion_spec(),
            Box::new(|_| vec![0.0; 3]),
        )
        .unwrap();
        assert!(a.run_exact(0).is_err());
    }
}
