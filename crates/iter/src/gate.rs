//! Static safety gate for approximation schedules.
//!
//! A schedule is only admitted as a tuner rung after every stage program
//! it can run passes the workspace's safety analyses under the loop's
//! actual launch contexts. The gate covers the parts of the loop a
//! single-launch lint would miss:
//!
//! - **Both parities of the loop-carried swap.** The ping-pong alternates
//!   which buffer is `cur` and which is `next`; the effect summary must
//!   show the stencil never reads param 1 or writes param 0, otherwise
//!   the swap (and the input-overwritten refresh skip it enables) is
//!   unsound.
//! - **Every distinct stage program**, not just the base kernel — a
//!   reach rewrite that introduced a race or an out-of-bounds index is a
//!   concrete witness and refuses the whole schedule.
//! - **Full and sampled residual launches**: the residual kernel is
//!   checked under the full-grid context and under a representative
//!   sampled context (fewer blocks, affine permutation scalars).

use paraprox_analysis::{
    analyze_program, propagate, summarize_kernel, ErrMag, Injection, LaunchContext, LaunchModel,
    Severity, SlotState, VRange,
};
use paraprox_ir::{KernelId, MemRef, Program, Scalar};

use crate::model::{sample_params, IterModel, RESIDUAL_BLOCK};
use crate::schedule::IterSchedule;
use crate::IterError;

/// The launch contexts one iteration of the loop produces for a stage
/// program: the stencil launch (buffer lengths cover both swap parities —
/// the two field params always have identical extents) plus the full
/// residual check and, when `sample_log2 > 0`, a representative sampled
/// check.
pub fn iter_launch_contexts(
    model: &IterModel,
    schedule: &IterSchedule,
) -> Vec<(KernelId, LaunchContext)> {
    let n = model.elems();
    let mut stencil_ctx = LaunchContext::with_dims(
        (model.grid.x as u32, model.grid.y as u32),
        (model.block.x as u32, model.block.y as u32),
    );
    stencil_ctx.buffer_len = vec![Some(n), Some(n)];
    stencil_ctx.scalar = vec![None, None];
    for s in &model.stencil_scalars {
        stencil_ctx.buffer_len.push(None);
        stencil_ctx.scalar.push(Some(*s));
    }
    let mut out = vec![(model.stencil, stencil_ctx)];
    out.push((model.residual, residual_context(model, n, 1, 0)));
    if schedule.sample_log2 > 0 {
        let count = sampled_count(n, schedule.sample_log2);
        let (mul, off) = sample_params(schedule.seed, 0, n);
        out.push((model.residual, residual_context(model, count, mul, off)));
    }
    out
}

fn residual_context(model: &IterModel, count: usize, mul: i32, off: i32) -> LaunchContext {
    let n = model.elems();
    let mut ctx = LaunchContext::with_dims(
        ((count / RESIDUAL_BLOCK) as u32, 1),
        (RESIDUAL_BLOCK as u32, 1),
    );
    ctx.buffer_len = vec![
        Some(n),
        Some(n),
        Some(model.partials_len()),
        None,
        None,
        None,
        None,
    ];
    ctx.scalar = vec![
        None,
        None,
        None,
        Some(Scalar::I32(mul)),
        Some(Scalar::I32(off)),
        Some(Scalar::I32(n as i32 - 1)),
        Some(Scalar::I32(count as i32)),
    ];
    ctx
}

/// Residual lane count for a sampled check: `n >> sample_log2`, clamped
/// so at least one full reduction block runs.
pub(crate) fn sampled_count(n: usize, sample_log2: u32) -> usize {
    (n >> sample_log2.min(32)).max(RESIDUAL_BLOCK)
}

/// Vet one schedule against the model.
///
/// Builds every distinct stage program the schedule can run, checks the
/// ping-pong effect contract on each, and runs the full analysis suite
/// under the loop's launch contexts. Returns the stage programs in
/// [`IterSchedule::distinct_approxes`] order on success (callers cache
/// them keyed by the approx pair).
///
/// # Errors
///
/// [`IterError::Refused`] listing every violated contract and every
/// [`Severity::Error`] diagnostic; [`IterError::Model`] /
/// [`IterError::Approx`] when a stage program cannot be built at all.
pub fn gate_schedule(
    model: &IterModel,
    schedule: &IterSchedule,
) -> Result<Vec<Program>, IterError> {
    let mut reasons = Vec::new();
    let contexts = iter_launch_contexts(model, schedule);

    let mut stages: Vec<(String, Program, Option<u32>)> =
        vec![("exact".to_string(), model.program.clone(), None)];
    for (scheme, reach) in schedule.distinct_approxes() {
        let program = model.variant(scheme, reach)?;
        stages.push((
            format!("{}:r{}", scheme.label(), reach),
            program,
            Some(reach),
        ));
    }

    for (stage_label, program, reach) in &stages {
        // Ping-pong effect contract on the (possibly rewritten) stencil.
        let eff = summarize_kernel(program, model.stencil);
        let touches = |set: &[MemRef], p: usize| set.contains(&MemRef::Param(p));
        if !touches(&eff.writes, 1) {
            reasons.push(format!(
                "stage {stage_label}: stencil never writes the next field"
            ));
        }
        if touches(&eff.reads, 1) || touches(&eff.atomic_targets, 1) {
            reasons.push(format!(
                "stage {stage_label}: stencil reads the next field — the loop-carried swap \
                 and the refresh skip would be unsound"
            ));
        }
        if touches(&eff.writes, 0) || touches(&eff.atomic_targets, 0) {
            reasons.push(format!(
                "stage {stage_label}: stencil writes the current field in place"
            ));
        }
        // Residual must never write either field.
        let reff = summarize_kernel(program, model.residual);
        for p in [0usize, 1] {
            if touches(&reff.writes, p) || touches(&reff.atomic_targets, p) {
                reasons.push(format!(
                    "stage {stage_label}: residual writes field param {p}"
                ));
            }
        }
        // Full lint suite under the loop's launch contexts.
        for d in analyze_program(program, &contexts) {
            if d.severity == Severity::Error {
                reasons.push(format!(
                    "stage {stage_label}: [{}] {}",
                    d.kernel_name, d.message
                ));
            }
        }
        // Error-propagation verdict, per launch context: inject the
        // stage's tile-replication error at the stencil's field load and
        // propagate it through the stencil launch and both residual
        // checks. A refusal (injected error reaching an address, branch,
        // loop bound, or Critical buffer) refuses the schedule exactly
        // like any other error-severity lint; the exact stage carries no
        // injection and cannot refuse here.
        if let Some(reach) = reach {
            let frac = f64::from(*reach) / (f64::from(*reach) + 1.0);
            let injections = [Injection::Load {
                kernel: model.stencil,
                mem: MemRef::Param(0),
                mag: ErrMag::RangeFrac(frac),
            }];
            // Pipeline slots [cur, next, partials]; a nominal unit value
            // range — the verdict is about *where* the error flows, not
            // its magnitude.
            let mut slots: Vec<SlotState> = (0..3)
                .map(|_| SlotState::exact(VRange::new(0.0, 1.0)))
                .collect();
            let launches: Vec<LaunchModel> = contexts
                .iter()
                .map(|(kernel, ctx)| LaunchModel {
                    kernel: *kernel,
                    ctx: ctx.clone(),
                    args: ctx
                        .buffer_len
                        .iter()
                        .enumerate()
                        .map(|(slot, len)| len.map(|_| slot))
                        .collect(),
                })
                .collect();
            for d in propagate(program, &launches, &mut slots, &injections) {
                if d.severity == Severity::Error {
                    reasons.push(format!(
                        "stage {stage_label}: [{}] {}",
                        d.kernel_name, d.message
                    ));
                }
            }
        }
    }

    if reasons.is_empty() {
        Ok(stages.into_iter().map(|(_, p, _)| p).collect())
    } else {
        Err(IterError::Refused {
            label: schedule.label.clone(),
            reasons,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::diffusion_model;
    use paraprox_ir::{Expr, KernelBuilder, MemSpace, Ty};

    #[test]
    fn exact_and_preset_schedules_pass_the_gate() {
        let model = diffusion_model();
        for schedule in IterSchedule::presets(20) {
            let stages = gate_schedule(&model, &schedule)
                .unwrap_or_else(|e| panic!("schedule {} refused: {e}", schedule.label));
            assert_eq!(stages.len(), 1 + schedule.distinct_approxes().len());
        }
    }

    #[test]
    fn contexts_cover_stencil_and_residual() {
        let model = diffusion_model();
        let exact = iter_launch_contexts(&model, &IterSchedule::exact());
        assert_eq!(exact.len(), 2);
        let sampled =
            iter_launch_contexts(&model, &IterSchedule::named("sampled-check", 20).unwrap());
        assert_eq!(sampled.len(), 3);
        // The sampled residual context launches fewer blocks.
        assert!(sampled[2].1.grid.0 < sampled[1].1.grid.0);
    }

    #[test]
    fn in_place_stencil_is_refused() {
        // Violate the ping-pong contract: write the *current* field.
        let mut model = diffusion_model();
        let mut kb = KernelBuilder::new("in_place");
        let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
        let next = kb.buffer("next", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.load(cur, gid.clone());
        kb.store(cur, gid.clone(), v.clone() * Expr::f32(0.5));
        kb.store(next, gid, v);
        model.stencil = model.program.add_kernel(kb.finish());
        let err = gate_schedule(&model, &IterSchedule::exact()).unwrap_err();
        match err {
            IterError::Refused { reasons, .. } => {
                assert!(
                    reasons.iter().any(|r| r.contains("in place")),
                    "{reasons:?}"
                );
            }
            other => panic!("expected refusal, got {other}"),
        }
    }

    #[test]
    fn value_dependent_branch_refuses_approx_stages_only() {
        // A residual whose control flow depends on the *field value*
        // (flush tiny diffs to zero before accumulating): every lint is
        // clean and the exact schedule passes, but once an approximate
        // stage injects replication error at the stencil's field load,
        // the propagated error reaches the branch condition and the
        // error-propagation verdict must refuse the schedule.
        let mut model = diffusion_model();
        let mut kb = KernelBuilder::new("gated_residual");
        let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
        let next = kb.buffer("next", Ty::F32, MemSpace::Global);
        let partials = kb.buffer("partials", Ty::F32, MemSpace::Global);
        let mul = kb.scalar("mul", Ty::I32);
        let off = kb.scalar("off", Ty::I32);
        let mask = kb.scalar("mask", Ty::I32);
        let count = kb.scalar("count", Ty::I32);
        let s_a = kb.shared_array("s_a", Ty::F32, RESIDUAL_BLOCK);
        let s_b = kb.shared_array("s_b", Ty::F32, RESIDUAL_BLOCK);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let t = kb.let_("t", KernelBuilder::global_id_x());
        let d = kb.let_mut("d", Ty::F32, Expr::f32(0.0));
        kb.if_(t.clone().lt(count), |kb| {
            let idx = kb.let_(
                "idx",
                (mul.clone() * t.clone() + off.clone()) & mask.clone(),
            );
            let a = kb.load(cur, idx.clone());
            let b = kb.load(next, idx);
            let diff = kb.let_("diff", (b - a).abs());
            // The data-dependent branch: only accumulate diffs above a
            // noise floor.
            kb.if_(diff.clone().gt(Expr::f32(1e-6)), |kb| {
                kb.assign(d, diff.clone());
            });
        });
        kb.store(s_a, tid.clone(), Expr::Var(d));
        kb.sync();
        let mut stride = RESIDUAL_BLOCK / 2;
        while stride >= 1 {
            let s = Expr::i32(stride as i32);
            kb.if_else(
                tid.clone().lt(s.clone()),
                |kb| {
                    let lo = kb.load(s_a, tid.clone());
                    let hi = kb.load(s_a, tid.clone() + s.clone());
                    kb.store(s_b, tid.clone(), lo + hi);
                },
                |kb| {
                    let v = kb.load(s_a, tid.clone());
                    kb.store(s_b, tid.clone(), v);
                },
            );
            kb.sync();
            let v = kb.load(s_b, tid.clone());
            kb.store(s_a, tid.clone(), v);
            kb.sync();
            stride /= 2;
        }
        kb.if_(tid.eq_(Expr::i32(0)), |kb| {
            let total = kb.load(s_a, Expr::i32(0));
            kb.store(partials, KernelBuilder::block_id_x(), total);
        });
        model.residual = model.program.add_kernel(kb.finish());

        gate_schedule(&model, &IterSchedule::exact())
            .expect("exact schedule carries no injected error and must pass");
        let approx = IterSchedule::presets(20)
            .into_iter()
            .find(|s| !s.distinct_approxes().is_empty())
            .expect("some preset approximates");
        let err = gate_schedule(&model, &approx).unwrap_err();
        match err {
            IterError::Refused { reasons, .. } => {
                assert!(
                    reasons.iter().any(|r| r.contains("branch")),
                    "expected an error-propagation branch-sink refusal, got {reasons:?}"
                );
            }
            other => panic!("expected refusal, got {other}"),
        }
    }

    #[test]
    fn racy_residual_is_refused() {
        // Swap in a residual kernel whose block fold drops the barriers:
        // lanes read shared slots other lanes are writing in the same
        // phase. The race lint must produce an error-severity witness.
        let mut model = diffusion_model();
        let mut kb = KernelBuilder::new("racy_residual");
        let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
        let next = kb.buffer("next", Ty::F32, MemSpace::Global);
        let partials = kb.buffer("partials", Ty::F32, MemSpace::Global);
        let _mul = kb.scalar("mul", Ty::I32);
        let _off = kb.scalar("off", Ty::I32);
        let _mask = kb.scalar("mask", Ty::I32);
        let _count = kb.scalar("count", Ty::I32);
        let sdata = kb.shared_array("sdata", Ty::F32, RESIDUAL_BLOCK);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let t = kb.let_("t", KernelBuilder::global_id_x());
        let a = kb.load(cur, t.clone());
        let b = kb.load(next, t.clone());
        kb.store(sdata, tid.clone(), (b - a).abs());
        // No sync: immediately read the neighbour lane's slot.
        let half = Expr::i32((RESIDUAL_BLOCK / 2) as i32);
        kb.if_(tid.clone().lt(half.clone()), |kb| {
            let lo = kb.load(sdata, tid.clone());
            let hi = kb.load(sdata, tid.clone() + half);
            kb.store(partials, KernelBuilder::block_id_x(), lo + hi);
        });
        model.residual = model.program.add_kernel(kb.finish());
        let err = gate_schedule(&model, &IterSchedule::exact()).unwrap_err();
        assert!(matches!(err, IterError::Refused { .. }), "{err}");
    }
}
