//! The iterative job model: stencil kernel + residual reduction + launch
//! geometry.

use paraprox_approx::{approximate_stencil, StencilScheme};
use paraprox_ir::{Expr, KernelBuilder, KernelId, MemSpace, Program, Scalar, Ty};
use paraprox_patterns::stencil::find_stencils;
use paraprox_prng::splitmix64;
use paraprox_quality::Metric;
use paraprox_vgpu::Dim2;

use crate::IterError;

/// Threads per block of the residual reduction kernel (one shared-memory
/// tree per block). A power of two so the halving tree is exact.
pub const RESIDUAL_BLOCK: usize = 64;

/// One iterative loop-of-stencil-reduce job, device-independent.
///
/// Conventions the job runner and the gate rely on:
///
/// - The stencil kernel's parameters are `[cur, next, scalars...]`:
///   it reads the `cur` field (param 0), writes the stepped field into
///   `next` (param 1), and never does the reverse. The loop ping-pongs
///   the two buffers, so `next` is declared input-overwritten on every
///   launch ([`paraprox_vgpu::Device::launch_overwriting`]).
/// - The residual kernel (built by [`IterModel::new`]) has parameters
///   `[cur, next, partials, mul, off, mask, count]` and writes one
///   partial sum of `|next - cur|` per block; the host folds the partials
///   in ascending block order, so the residual is bit-stable at any
///   worker count.
/// - `width * height` is a power of two, so the sampling permutation
///   `t -> (mul*t + off) & (n-1)` with odd `mul` is a bijection.
pub struct IterModel {
    /// Job name (used in reports and bench output).
    pub name: String,
    /// Program holding both kernels.
    pub program: Program,
    /// The stencil step kernel.
    pub stencil: KernelId,
    /// The residual reduction kernel.
    pub residual: KernelId,
    /// Field width in elements.
    pub width: usize,
    /// Field height in elements.
    pub height: usize,
    /// Stencil launch grid.
    pub grid: Dim2,
    /// Stencil launch block.
    pub block: Dim2,
    /// Scalar arguments appended after `[cur, next]` on every stencil
    /// launch.
    pub stencil_scalars: Vec<Scalar>,
    /// Quality metric comparing converged fields.
    pub metric: Metric,
}

impl std::fmt::Debug for IterModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterModel")
            .field("name", &self.name)
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

/// Arguments for building an [`IterModel`]; see [`IterModel::new`].
pub struct ModelParts {
    /// Job name.
    pub name: String,
    /// Program already holding the stencil kernel (the residual kernel is
    /// appended by [`IterModel::new`]).
    pub program: Program,
    /// The stencil kernel inside `program`.
    pub stencil: KernelId,
    /// Field width (elements).
    pub width: usize,
    /// Field height (elements).
    pub height: usize,
    /// Stencil launch grid.
    pub grid: Dim2,
    /// Stencil launch block.
    pub block: Dim2,
    /// Scalar arguments for the stencil kernel.
    pub stencil_scalars: Vec<Scalar>,
    /// Quality metric.
    pub metric: Metric,
}

impl IterModel {
    /// Assemble a model: validates the geometry and appends the shared
    /// residual reduction kernel to the program.
    ///
    /// # Errors
    ///
    /// [`IterError::Model`] when `width * height` is not a power of two,
    /// is smaller than [`RESIDUAL_BLOCK`], or exceeds `2^14` (the bound
    /// under which the sampling permutation's `mul * t` product cannot
    /// overflow `i32`), or when the stencil grid does not cover the
    /// field.
    pub fn new(parts: ModelParts) -> Result<IterModel, IterError> {
        let ModelParts {
            name,
            mut program,
            stencil,
            width,
            height,
            grid,
            block,
            stencil_scalars,
            metric,
        } = parts;
        let n = width * height;
        if !n.is_power_of_two() || n < RESIDUAL_BLOCK {
            return Err(IterError::Model(format!(
                "field size {n} must be a power of two and at least {RESIDUAL_BLOCK}"
            )));
        }
        if n > (1 << 14) {
            return Err(IterError::Model(format!(
                "field size {n} exceeds 2^14; the i32 sampling permutation would overflow"
            )));
        }
        if grid.count() * block.count() < n {
            return Err(IterError::Model(format!(
                "stencil launch covers {} threads for {n} elements",
                grid.count() * block.count()
            )));
        }
        let residual = add_residual_kernel(&mut program, &format!("{name}_residual"));
        Ok(IterModel {
            name,
            program,
            stencil,
            residual,
            width,
            height,
            grid,
            block,
            stencil_scalars,
            metric,
        })
    }

    /// Total field elements.
    pub fn elems(&self) -> usize {
        self.width * self.height
    }

    /// Length of the partial-sums buffer: one slot per full-grid residual
    /// block. Sampled launches use fewer blocks and leave the tail
    /// untouched (the host only folds the launched prefix).
    pub fn partials_len(&self) -> usize {
        self.elems() / RESIDUAL_BLOCK
    }

    /// Build the program variant whose stencil kernel is rewritten with
    /// [`paraprox_approx::approximate_stencil`] at `(scheme, reach)`.
    /// Every stencil candidate reading the `cur` field (param 0) is
    /// rewritten; the kernel keeps its [`KernelId`], and the residual
    /// kernel is untouched (schedules always launch the residual from the
    /// base program anyway).
    ///
    /// # Errors
    ///
    /// [`IterError::Model`] when the kernel has no stencil candidate on
    /// param 0 (nothing to approximate); [`IterError::Approx`] when the
    /// rewrite itself refuses.
    pub fn variant(&self, scheme: StencilScheme, reach: u32) -> Result<Program, IterError> {
        let kernel = self.program.kernel(self.stencil);
        let candidates: Vec<_> = find_stencils(kernel)
            .into_iter()
            .filter(|c| c.buffer == paraprox_ir::MemRef::Param(0))
            .collect();
        if candidates.is_empty() {
            return Err(IterError::Model(format!(
                "kernel `{}` has no stencil candidate on the field buffer",
                kernel.name
            )));
        }
        let mut program = self.program.clone();
        for c in &candidates {
            program = approximate_stencil(&program, self.stencil, c, scheme, reach)?;
        }
        Ok(program)
    }
}

/// Deterministic residual sampling parameters for one check.
///
/// Returns `(mul, off)` for the affine permutation
/// `t -> (mul*t + off) & (n-1)`: `mul` is odd and below `n`, so the map
/// is a bijection on `0..n` and a `count`-element prefix of lanes reads
/// `count` *distinct* field elements. Both values are derived host-side
/// from `(seed, iter)` with [`paraprox_prng::splitmix64`], which is what
/// makes sampled schedules bit-identical at any worker count.
pub fn sample_params(seed: u64, iter: u32, n: usize) -> (i32, i32) {
    debug_assert!(n.is_power_of_two());
    let mut state = seed ^ (u64::from(iter).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let r1 = splitmix64(&mut state);
    let r2 = splitmix64(&mut state);
    let mul = ((r1 as usize % (n / 2)) * 2 + 1) as i32;
    let off = (r2 as usize % n) as i32;
    (mul, off)
}

/// Append the shared residual reduction kernel to `program`.
///
/// Parameters: `[cur, next, partials, mul, off, mask, count]`. Lane `t`
/// (for `t < count`) reads field index `(mul*t + off) & mask` from both
/// fields and contributes `|next - cur|`; each block folds its
/// [`RESIDUAL_BLOCK`] lanes through a barrier-separated halving tree and
/// stores one partial per block. Launched 1-D with
/// `count / RESIDUAL_BLOCK` blocks.
///
/// The tree is *double-buffered* (each level reads one shared array and
/// writes the other, with a copy-back phase between levels) — the same
/// idiom as the workspace's three-phase scan. The race lint deliberately
/// ignores `if` guards, so the classic single-array guarded tree is
/// flagged as a potential read-write collision; splitting the read and
/// write arrays keeps every barrier phase's access sets disjoint without
/// relying on guards.
fn add_residual_kernel(program: &mut Program, name: &str) -> KernelId {
    let mut kb = KernelBuilder::new(name);
    let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
    let next = kb.buffer("next", Ty::F32, MemSpace::Global);
    let partials = kb.buffer("partials", Ty::F32, MemSpace::Global);
    let mul = kb.scalar("mul", Ty::I32);
    let off = kb.scalar("off", Ty::I32);
    let mask = kb.scalar("mask", Ty::I32);
    let count = kb.scalar("count", Ty::I32);
    let s_a = kb.shared_array("s_a", Ty::F32, RESIDUAL_BLOCK);
    let s_b = kb.shared_array("s_b", Ty::F32, RESIDUAL_BLOCK);
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    let t = kb.let_("t", KernelBuilder::global_id_x());
    let d = kb.let_mut("d", Ty::F32, Expr::f32(0.0));
    kb.if_(t.clone().lt(count), |kb| {
        let idx = kb.let_(
            "idx",
            (mul.clone() * t.clone() + off.clone()) & mask.clone(),
        );
        let a = kb.load(cur, idx.clone());
        let b = kb.load(next, idx);
        kb.assign(d, (b - a).abs());
    });
    kb.store(s_a, tid.clone(), Expr::Var(d));
    kb.sync();
    let mut stride = RESIDUAL_BLOCK / 2;
    while stride >= 1 {
        let s = Expr::i32(stride as i32);
        kb.if_else(
            tid.clone().lt(s.clone()),
            |kb| {
                let lo = kb.load(s_a, tid.clone());
                let hi = kb.load(s_a, tid.clone() + s.clone());
                kb.store(s_b, tid.clone(), lo + hi);
            },
            |kb| {
                let v = kb.load(s_a, tid.clone());
                kb.store(s_b, tid.clone(), v);
            },
        );
        kb.sync();
        let v = kb.load(s_b, tid.clone());
        kb.store(s_a, tid.clone(), v);
        kb.sync();
        stride /= 2;
    }
    kb.if_(tid.eq_(Expr::i32(0)), |kb| {
        let total = kb.load(s_a, Expr::i32(0));
        kb.store(partials, KernelBuilder::block_id_x(), total);
    });
    program.add_kernel(kb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn copy_model(width: usize, height: usize) -> Result<IterModel, IterError> {
        // Minimal valid stencil kernel: next[i] = cur[i].
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("copy");
        let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
        let next = kb.buffer("next", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.load(cur, gid.clone());
        kb.store(next, gid, v);
        let stencil = program.add_kernel(kb.finish());
        IterModel::new(ModelParts {
            name: "copy".to_string(),
            program,
            stencil,
            width,
            height,
            grid: Dim2::linear(width * height / 64),
            block: Dim2::linear(64),
            stencil_scalars: Vec::new(),
            metric: Metric::MeanRelative,
        })
    }

    #[test]
    fn new_validates_geometry() {
        assert!(copy_model(64, 2).is_ok());
        // Not a power of two.
        assert!(matches!(copy_model(96, 1), Err(IterError::Model(_))));
        // Too small.
        assert!(matches!(copy_model(32, 1), Err(IterError::Model(_))));
        // Too large for the i32 permutation.
        assert!(matches!(copy_model(256, 256), Err(IterError::Model(_))));
    }

    #[test]
    fn residual_kernel_is_appended() {
        let m = copy_model(64, 4).unwrap();
        assert_eq!(m.elems(), 256);
        assert_eq!(m.partials_len(), 4);
        let k = m.program.kernel(m.residual);
        assert_eq!(k.name, "copy_residual");
        assert_eq!(k.params.len(), 7);
    }

    #[test]
    fn sample_params_form_a_bijection() {
        let n = 256;
        for iter in 0..8 {
            let (mul, off) = sample_params(0x17E4, iter, n);
            assert!(mul > 0 && (mul as usize) < n && mul % 2 == 1);
            assert!(off >= 0 && (off as usize) < n);
            let mut seen = vec![false; n];
            for t in 0..n as i64 {
                let idx = ((mul as i64 * t + off as i64) & (n as i64 - 1)) as usize;
                assert!(!seen[idx], "collision at t={t}");
                seen[idx] = true;
            }
        }
        // Deterministic in (seed, iter); different iters differ.
        assert_eq!(sample_params(7, 3, n), sample_params(7, 3, n));
        assert_ne!(sample_params(7, 3, n), sample_params(7, 4, n));
        assert_ne!(sample_params(7, 3, n), sample_params(8, 3, n));
    }

    #[test]
    fn variant_requires_a_stencil_candidate() {
        // The copy kernel reads a single cell: no stencil tile, so no
        // variant can be built.
        let m = copy_model(64, 2).unwrap();
        assert!(matches!(
            m.variant(StencilScheme::Row, 1),
            Err(IterError::Model(_))
        ));
    }
}
