//! Iterative loop-of-stencil-reduce jobs with convergence-aware
//! approximation schedules.
//!
//! Paraprox's pattern rewrites treat each kernel launch as an isolated
//! request: detect a pattern, emit an approximate variant, let the runtime
//! tuner pick a rung. Many data-parallel applications, however, are
//! *iterative solvers*: the same stencil kernel is launched over a
//! ping-pong buffer pair until a residual reduction falls under a
//! tolerance. For those, the interesting approximation knobs live on the
//! **loop**, not on any single launch:
//!
//! - **Reach ramps** — run cheap reduced-reach stencil variants
//!   ([`paraprox_approx::approximate_stencil`]) for the early iterations,
//!   where the field is far from the fixed point anyway, and switch to the
//!   exact kernel to polish.
//! - **Sampled convergence checks** — evaluate the residual only every
//!   `k`-th iteration, and on a deterministic [`paraprox_prng`]-derived
//!   sample of the grid rather than every element.
//! - **Residual-trend early exit** — feed measured residual decay ratios
//!   into a [`paraprox_quality::QualityStream`] EWMA and stop as soon as
//!   the extrapolated trend lands under tolerance.
//!
//! This crate makes that loop a first-class job model:
//!
//! - [`IterModel`] packages the stencil kernel, a shared residual-reduce
//!   kernel over the ping-pong pair, launch geometry, and a quality
//!   metric.
//! - [`ConvergenceSpec`] states when the loop is done (absolute/relative
//!   residual tolerance, iteration cap).
//! - [`IterSchedule`] is one point in the schedule space; schedules are
//!   exposed as rungs through [`paraprox_runtime::Approximable`], so the
//!   offline tuner and the serving-time TOQ back-off ladder own the knobs
//!   exactly as they do for single-launch rewrites.
//! - [`gate_schedule`] refuses any schedule whose stage programs fail the
//!   static safety analyses ([`paraprox_analysis`]) under the loop's
//!   launch contexts — including both parities of the loop-carried buffer
//!   swap and the sampled residual launches.
//! - [`IterativeApp`] drives the loop on one [`paraprox_vgpu::Device`]:
//!   one pooled worker scope serves every launch of every iteration, with
//!   the swapped-in output buffer declared input-overwritten so worker
//!   images skip its refresh copy.
//!
//! Determinism contract (asserted by the workspace `iter_suite`): exact
//! schedules are bit-identical across worker counts and engines;
//! approximate schedules are bit-identical across worker counts for a
//! fixed `(seed, schedule)` because every sampling decision is made
//! host-side from [`paraprox_prng::splitmix64`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
mod job;
mod model;
mod schedule;
#[cfg(test)]
pub(crate) mod testutil;

pub use gate::{gate_schedule, iter_launch_contexts};
pub use job::{FieldGen, IterRun, IterativeApp};
pub use model::{sample_params, IterModel, ModelParts, RESIDUAL_BLOCK};
pub use schedule::{ConvergenceSpec, IterSchedule, PredictorSpec, ReachStage};

/// Errors from building models, gating schedules, or running the loop.
#[derive(Debug)]
pub enum IterError {
    /// The model is structurally unusable (bad dimensions, missing
    /// kernels, no stencil candidate to approximate).
    Model(String),
    /// A stencil rewrite failed.
    Approx(paraprox_approx::ApproxError),
    /// The safety analyses refused a schedule: at least one stage program
    /// produced an error-severity diagnostic under the loop's launch
    /// contexts, or a kernel's effect summary breaks the ping-pong
    /// contract.
    Refused {
        /// Label of the refused schedule.
        label: String,
        /// Human-readable reasons (one per diagnostic).
        reasons: Vec<String>,
    },
    /// A device launch failed while running the loop.
    Launch(String),
}

impl std::fmt::Display for IterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IterError::Model(m) => write!(f, "iterative model error: {m}"),
            IterError::Approx(e) => write!(f, "stencil rewrite failed: {e}"),
            IterError::Refused { label, reasons } => {
                write!(f, "schedule `{label}` refused by analysis: ")?;
                let mut first = true;
                for r in reasons {
                    if !first {
                        write!(f, "; ")?;
                    }
                    write!(f, "{r}")?;
                    first = false;
                }
                Ok(())
            }
            IterError::Launch(m) => write!(f, "launch failed: {m}"),
        }
    }
}

impl std::error::Error for IterError {}

impl From<paraprox_approx::ApproxError> for IterError {
    fn from(e: paraprox_approx::ApproxError) -> IterError {
        IterError::Approx(e)
    }
}
