//! Shared fixtures for the crate's unit tests.

use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_prng::Rng;
use paraprox_quality::Metric;
use paraprox_vgpu::Dim2;

use crate::model::{IterModel, ModelParts};
use crate::schedule::ConvergenceSpec;

/// A 5-point damped Jacobi step on a 64x8 field: enough structure for
/// stencil detection, the full lint suite, and a converging loop. The
/// row pitch is a scalar parameter — the stencil detector needs the
/// symbolic `w`-term to recognize the 2-D tile.
pub(crate) fn diffusion_model() -> IterModel {
    let (w, h) = (64i32, 8i32);
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("diffuse");
    let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
    let next = kb.buffer("next", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let i = kb.let_("i", y.clone() * width.clone() + x.clone());
    let interior = x.clone().gt(Expr::i32(0))
        & x.clone().lt(width.clone() - Expr::i32(1))
        & y.clone().gt(Expr::i32(0))
        & y.clone().lt(height.clone() - Expr::i32(1));
    let c = kb.load(cur, i.clone());
    kb.if_else(
        interior,
        |kb| {
            let nb = kb.load(cur, i.clone() - width.clone());
            let sb = kb.load(cur, i.clone() + width.clone());
            let eb = kb.load(cur, i.clone() + Expr::i32(1));
            let wb = kb.load(cur, i.clone() - Expr::i32(1));
            let avg = kb.let_("avg", (nb + sb + eb + wb) * Expr::f32(0.25));
            let stepped = c.clone() + (avg - c.clone()) * Expr::f32(0.8);
            kb.store(next, i.clone(), stepped);
        },
        |kb| {
            kb.store(next, i.clone(), c.clone());
        },
    );
    let stencil = program.add_kernel(kb.finish());
    IterModel::new(ModelParts {
        name: "diffuse".to_string(),
        program,
        stencil,
        width: w as usize,
        height: h as usize,
        grid: Dim2::new(w as usize / 16, h as usize / 8),
        block: Dim2::new(16, 8),
        stencil_scalars: vec![Scalar::I32(w), Scalar::I32(h)],
        metric: Metric::MeanRelative,
    })
    .unwrap()
}

/// Convergence criteria matched to the fixture model.
pub(crate) fn diffusion_spec() -> ConvergenceSpec {
    ConvergenceSpec {
        tol_abs: 1e-7,
        tol_rel: 0.02,
        max_iters: 60,
    }
}

/// A smooth positive field in `[1, 2)`, deterministic in the seed.
pub(crate) fn diffusion_field(seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xD1FF);
    let n = 64 * 8;
    let mut field = vec![0.0f32; n];
    let mut v = 1.5f32;
    for cell in field.iter_mut() {
        v = 0.9 * v + 0.1 * (1.0 + rng.next_f32());
        *cell = v;
    }
    field
}
