//! Convergence criteria and approximation schedules for iterative jobs.

use paraprox_approx::StencilScheme;

/// When an iterative job is considered converged.
///
/// The loop stops at iteration `t` when the measured mean-absolute
/// residual `r_t` satisfies `r_t <= max(tol_abs, tol_rel * r_first)`,
/// where `r_first` is the first residual the schedule measured, or when
/// `max_iters` iterations have run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceSpec {
    /// Absolute residual tolerance.
    pub tol_abs: f64,
    /// Tolerance relative to the first measured residual.
    pub tol_rel: f64,
    /// Hard cap on iterations (the loop always terminates).
    pub max_iters: u32,
}

impl ConvergenceSpec {
    /// The effective tolerance given the first measured residual.
    pub fn tolerance(&self, first_residual: f64) -> f64 {
        self.tol_abs.max(self.tol_rel * first_residual)
    }
}

/// Residual-trend early-exit predictor.
///
/// Consecutive residual checks yield decay ratios `r_t / r_{t-1}`; an
/// EWMA (smoothing factor `alpha`, via
/// [`paraprox_quality::QualityStream`]) tracks the trend. Once at least
/// `min_checks` ratios have been observed and the trend is contracting,
/// the loop exits early if the extrapolation
/// `r_t * ewma^horizon` already lands under tolerance — predicting that
/// the next `horizon` checks would only confirm convergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorSpec {
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest ratio).
    pub alpha: f64,
    /// How many future checks the trend is extrapolated over.
    pub horizon: u32,
    /// Minimum observed decay ratios before the predictor may fire.
    pub min_checks: u64,
}

/// One stage of a reach ramp: from iteration `from_iter` (inclusive)
/// onwards, run the stencil with this approximation — `None` means the
/// exact kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachStage {
    /// First iteration this stage applies to.
    pub from_iter: u32,
    /// `(scheme, reach)` for [`paraprox_approx::approximate_stencil`], or
    /// `None` for the exact stencil.
    pub approx: Option<(StencilScheme, u32)>,
}

/// A convergence-aware approximation schedule: one rung in the iterative
/// job's tuner ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSchedule {
    /// Rung label (shown by the tuner and the CLI).
    pub label: String,
    /// Reach-ramp stages, in ascending `from_iter` order. The stage in
    /// effect at iteration `t` is the last one with `from_iter <= t`;
    /// iterations before the first stage run exact.
    pub stages: Vec<ReachStage>,
    /// Evaluate the residual after every `check_every`-th iteration
    /// (1 = every iteration). Two checks are unconditional regardless of
    /// this stride: after iteration 0 (the baseline the relative
    /// tolerance anchors to, so sparse-check schedules chase the same
    /// target as the exact loop) and after the final iteration (so a
    /// capped run still reports a residual).
    pub check_every: u32,
    /// Residual sample density: check `n >> sample_log2` elements chosen
    /// by a host-side deterministic affine permutation (0 = the full
    /// grid). Clamped so at least one reduction block runs.
    pub sample_log2: u32,
    /// Optional residual-trend early exit.
    pub predictor: Option<PredictorSpec>,
    /// Seed for the sampling permutation. Part of the schedule identity:
    /// fixed `(seed, schedule)` means bit-identical runs at any worker
    /// count.
    pub seed: u64,
}

impl IterSchedule {
    /// The exact schedule: exact stencil every iteration, full residual
    /// every iteration, no predictor. This is the reference the tuner
    /// measures every other rung against.
    pub fn exact() -> IterSchedule {
        IterSchedule {
            label: "exact".to_string(),
            stages: Vec::new(),
            check_every: 1,
            sample_log2: 0,
            predictor: None,
            seed: 0,
        }
    }

    /// True when the schedule is semantically the exact reference: no
    /// approximate stage, full checks every iteration, no predictor.
    pub fn is_exact(&self) -> bool {
        self.stages.iter().all(|s| s.approx.is_none())
            && self.check_every <= 1
            && self.sample_log2 == 0
            && self.predictor.is_none()
    }

    /// The stencil approximation in effect at iteration `iter`.
    pub fn approx_at(&self, iter: u32) -> Option<(StencilScheme, u32)> {
        self.stages
            .iter()
            .rfind(|s| s.from_iter <= iter)
            .and_then(|s| s.approx)
    }

    /// True when the residual is evaluated after iteration `iter`.
    pub fn checks_after(&self, iter: u32) -> bool {
        (iter + 1).is_multiple_of(self.check_every.max(1))
    }

    /// Distinct stencil approximations the schedule uses, in first-use
    /// order (the stage programs a gate must build and vet).
    pub fn distinct_approxes(&self) -> Vec<(StencilScheme, u32)> {
        let mut out: Vec<(StencilScheme, u32)> = Vec::new();
        for s in &self.stages {
            if let Some(a) = s.approx {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// The preset schedule ladder for a loop capped at `max_iters`,
    /// exact rung first. These are the rungs `bench_iter` sweeps and the
    /// CLI exposes by name:
    ///
    /// - `exact` — the reference.
    /// - `sampled-check` — exact stencil; residual every 4 iterations on
    ///   a 1/8 sample.
    /// - `reach-ramp` — row-snapped reach-1 stencil for the first half
    ///   of the iteration budget, exact after; residual every 2
    ///   iterations.
    /// - `trend-exit` — exact stencil, sampled checks, EWMA early exit.
    /// - `aggressive` — ramp + sparse sampled checks + predictor.
    pub fn presets(max_iters: u32) -> Vec<IterSchedule> {
        let half = (max_iters / 2).max(1);
        let predictor = PredictorSpec {
            alpha: 0.4,
            horizon: 6,
            min_checks: 3,
        };
        vec![
            IterSchedule::exact(),
            IterSchedule {
                label: "sampled-check".to_string(),
                stages: Vec::new(),
                check_every: 4,
                sample_log2: 3,
                predictor: None,
                seed: 0x17E4,
            },
            IterSchedule {
                label: "reach-ramp".to_string(),
                stages: vec![
                    ReachStage {
                        from_iter: 0,
                        approx: Some((StencilScheme::Row, 1)),
                    },
                    ReachStage {
                        from_iter: half,
                        approx: None,
                    },
                ],
                check_every: 2,
                sample_log2: 1,
                predictor: None,
                seed: 0x17E4,
            },
            IterSchedule {
                label: "trend-exit".to_string(),
                stages: Vec::new(),
                check_every: 2,
                sample_log2: 2,
                predictor: Some(predictor),
                seed: 0x17E4,
            },
            IterSchedule {
                label: "aggressive".to_string(),
                stages: vec![
                    ReachStage {
                        from_iter: 0,
                        approx: Some((StencilScheme::Row, 1)),
                    },
                    ReachStage {
                        from_iter: half,
                        approx: None,
                    },
                ],
                check_every: 4,
                sample_log2: 3,
                predictor: Some(predictor),
                seed: 0x17E4,
            },
        ]
    }

    /// Look up a preset by label.
    pub fn named(name: &str, max_iters: u32) -> Option<IterSchedule> {
        IterSchedule::presets(max_iters)
            .into_iter()
            .find(|s| s.label == name)
    }

    /// A human-readable per-stage plan of the schedule over `max_iters`
    /// iterations (one line per fact), for `inspect --schedule`.
    pub fn describe(&self, max_iters: u32) -> String {
        let mut lines = Vec::new();
        lines.push(format!(
            "schedule `{}` over {} iterations:",
            self.label, max_iters
        ));
        // Stencil plan, compressed into runs of identical stages.
        let mut start = 0u32;
        let mut cur = self.approx_at(0);
        for t in 1..max_iters {
            let next = self.approx_at(t);
            if next != cur {
                lines.push(stage_line(start, t, cur));
                start = t;
                cur = next;
            }
        }
        lines.push(stage_line(start, max_iters, cur));
        let sample = if self.sample_log2 == 0 {
            "the full grid".to_string()
        } else {
            format!("a 1/{} sample", 1u64 << self.sample_log2)
        };
        lines.push(format!(
            "  residual: every {} iteration(s) on {} (seed {:#x})",
            self.check_every.max(1),
            sample,
            self.seed
        ));
        match &self.predictor {
            Some(p) => lines.push(format!(
                "  predictor: EWMA(alpha={}) early exit, horizon {}, after {} checks",
                p.alpha, p.horizon, p.min_checks
            )),
            None => lines.push("  predictor: off".to_string()),
        }
        lines.join("\n")
    }
}

fn stage_line(from: u32, to: u32, approx: Option<(StencilScheme, u32)>) -> String {
    match approx {
        Some((scheme, reach)) => format!(
            "  iters {from}..{to}: stencil {}, reach {reach}",
            scheme.label()
        ),
        None => format!("  iters {from}..{to}: stencil exact"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_exact() {
        let e = IterSchedule::exact();
        assert!(e.is_exact());
        assert_eq!(e.approx_at(0), None);
        assert!(e.checks_after(0) && e.checks_after(7));
        assert!(e.distinct_approxes().is_empty());
    }

    #[test]
    fn presets_start_exact_and_have_unique_labels() {
        let presets = IterSchedule::presets(40);
        assert!(presets[0].is_exact());
        assert!(presets.len() >= 4);
        for (i, a) in presets.iter().enumerate() {
            assert!(!a.is_exact() || i == 0, "only rung 0 may be exact");
            for b in &presets[i + 1..] {
                assert_ne!(a.label, b.label);
            }
        }
        for p in &presets {
            assert_eq!(IterSchedule::named(&p.label, 40).as_ref(), Some(p));
        }
        assert!(IterSchedule::named("no-such", 40).is_none());
    }

    #[test]
    fn ramp_stages_select_by_iteration() {
        let s = IterSchedule::named("reach-ramp", 40).unwrap();
        assert_eq!(s.approx_at(0), Some((StencilScheme::Row, 1)));
        assert_eq!(s.approx_at(19), Some((StencilScheme::Row, 1)));
        assert_eq!(s.approx_at(20), None);
        assert_eq!(s.approx_at(39), None);
        assert_eq!(s.distinct_approxes(), vec![(StencilScheme::Row, 1)]);
        // check_every = 2: checks after odd iterations.
        assert!(!s.checks_after(0));
        assert!(s.checks_after(1));
        assert!(!s.checks_after(2));
    }

    #[test]
    fn describe_compresses_stages() {
        let s = IterSchedule::named("reach-ramp", 8).unwrap();
        let d = s.describe(8);
        assert!(d.contains("iters 0..4: stencil row"), "{d}");
        assert!(d.contains("iters 4..8: stencil exact"), "{d}");
        assert!(d.contains("residual: every 2"), "{d}");
        let e = IterSchedule::exact().describe(4);
        assert!(e.contains("iters 0..4: stencil exact"), "{e}");
        assert!(e.contains("the full grid"), "{e}");
    }

    #[test]
    fn tolerance_takes_the_larger_bound() {
        let spec = ConvergenceSpec {
            tol_abs: 1e-6,
            tol_rel: 0.05,
            max_iters: 10,
        };
        assert!((spec.tolerance(1.0) - 0.05).abs() < 1e-12);
        assert!((spec.tolerance(0.0) - 1e-6).abs() < 1e-18);
    }
}
