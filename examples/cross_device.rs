//! The paper's transparency story: write the kernel once, let Paraprox
//! pick a *different* approximation per platform. Convolution Separable
//! contains both a stencil and a reduction pattern; the tuner weighs the
//! generated variants against each device's cost profile.
//!
//! Run with:
//! ```sh
//! cargo run --release --example cross_device
//! ```

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_runtime::{Toq, Tuner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = paraprox_apps::find("Convolution").expect("registered app");
    println!(
        "{}: contains {} patterns; one source, two devices\n",
        app.spec.name, app.spec.patterns
    );
    for profile in [DeviceProfile::gtx560(), DeviceProfile::core_i7_965()] {
        let workload = (app.build)(Scale::Paper, 0);
        let table = latency_table_for(&profile);
        let compiled = compile(&workload, &table, &CompileOptions::default())?;
        let mut device_app = DeviceApp::new(
            Device::new(profile.clone()),
            &compiled,
            app.input_gen(Scale::Paper),
        );
        let tuner = Tuner {
            toq: Toq::paper_default(),
            training_seeds: (0..3).collect(),
        };
        let report = tuner.tune(&mut device_app)?;
        println!("{}:", profile.name);
        // Show the best candidate of each optimization family.
        let mut best_stencil: Option<&paraprox_runtime::CandidateProfile> = None;
        let mut best_reduction: Option<&paraprox_runtime::CandidateProfile> = None;
        for p in report.profiles.iter().filter(|p| p.meets_toq) {
            if p.label.starts_with("stencil")
                && best_stencil.map(|b| p.speedup > b.speedup).unwrap_or(true)
            {
                best_stencil = Some(p);
            }
            if p.label.starts_with("reduction")
                && best_reduction
                    .map(|b| p.speedup > b.speedup)
                    .unwrap_or(true)
            {
                best_reduction = Some(p);
            }
        }
        for (family, best) in [("stencil", best_stencil), ("reduction", best_reduction)] {
            match best {
                Some(p) => println!(
                    "  best {family:<10} {:<22} {:.2}x at {:.1}% quality",
                    p.label, p.speedup, p.mean_quality
                ),
                None => println!("  best {family:<10} (none met the TOQ)"),
            }
        }
        match report.chosen {
            Some(i) => println!(
                "  -> runtime selects: {} ({:.2}x)\n",
                report.profiles[i].label, report.profiles[i].speedup
            ),
            None => println!("  -> runtime keeps exact execution\n"),
        }
    }
    println!(
        "The same source program was approximated differently per platform,\n\
         with no per-device programmer effort — the paper's central claim."
    );
    Ok(())
}
