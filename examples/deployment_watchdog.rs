//! The runtime quality watchdog in action (paper §2 + §5): a deployed
//! approximate kernel faces an input-distribution shift, a periodic
//! calibration check catches the quality drop, and the runtime backs off
//! toward exact execution.
//!
//! Scenario: Kernel Density Estimation tuned on clustered data; mid-
//! deployment the data becomes adversarial for iteration skipping (density
//! mass alternating between strides), violating the TOQ.
//!
//! Run with:
//! ```sh
//! cargo run --release --example deployment_watchdog
//! ```

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::{kde, Scale};
use paraprox_runtime::{Deployment, Toq, Tuner};
use paraprox_vgpu::BufferInit;

/// Seeds at and above this value produce the shifted distribution.
const SHIFT_AT: u64 = 100;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DeviceProfile::gtx560();
    let workload = kde::build(Scale::Paper, 0);
    let table = latency_table_for(&profile);
    let compiled = compile(&workload, &table, &CompileOptions::default())?;

    // Input generator with a mid-deployment distribution shift: after
    // SHIFT_AT, every odd-indexed sample carries the density mass, which a
    // stride-2 (or 4, or 8) sampler systematically misses.
    let input_gen = Box::new(move |seed: u64| -> Vec<BufferInit> {
        if seed < SHIFT_AT {
            return kde::gen_inputs(Scale::Paper, seed);
        }
        let base = kde::gen_inputs(Scale::Paper, seed);
        let BufferInit::F32(queries) = base[0].clone() else {
            unreachable!()
        };
        let BufferInit::F32(samples) = base[1].clone() else {
            unreachable!()
        };
        let shifted: Vec<f32> = samples
            .iter()
            .enumerate()
            .map(|(i, _)| if i % 2 == 1 { 0.5 } else { 0.0 })
            .collect();
        let focused: Vec<f32> = queries.iter().map(|_| 0.5).collect();
        vec![BufferInit::F32(focused), BufferInit::F32(shifted)]
    });

    let mut app = DeviceApp::new(Device::new(profile), &compiled, input_gen);
    let tuner = Tuner {
        toq: Toq::paper_default(),
        training_seeds: (0..4).collect(),
    };
    let report = tuner.tune(&mut app)?;
    println!("tuned on clustered data:");
    for p in report.profiles.iter().filter(|p| p.meets_toq) {
        println!(
            "  {:<20} {:.2}x at {:.1}%",
            p.label, p.speedup, p.mean_quality
        );
    }
    // The ladder already ends in its terminal exact rung.
    let ladder: Vec<String> = report
        .backoff_ladder()
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("back-off ladder: {}\n", ladder.join(" -> "));

    let mut deployment = Deployment::new(&report, Toq::paper_default(), 4);
    println!("deploying with a calibration check every 4th invocation;");
    println!("the input distribution shifts at invocation 21:\n");
    for i in 0..40u64 {
        let seed = if i < 20 { 10 + i } else { SHIFT_AT + i };
        let before = deployment.current_variant();
        let result = deployment.invoke(&mut app, seed)?;
        if let Some(q) = result.checked_quality {
            println!(
                "  invocation {:>2}: variant {:<8} check {:>6.2}% {}",
                i + 1,
                before
                    .map(|v| report.profiles[v].label.clone())
                    .unwrap_or_else(|| "exact".into()),
                q,
                if result.backed_off {
                    "-> BACK OFF"
                } else {
                    "ok"
                }
            );
        }
        if before.is_none() {
            println!(
                "  invocation {:>2}: running exact — ladder exhausted",
                i + 1
            );
            break;
        }
    }
    println!(
        "\nthe watchdog caught the violation and walked down the ladder, exactly\n\
         the Green/SAGE recalibration loop the paper delegates to its runtime."
    );
    Ok(())
}
