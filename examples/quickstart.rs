//! Quickstart: approximate BlackScholes end to end.
//!
//! Builds the BlackScholes workload, compiles it with Paraprox (pattern
//! detection + approximate kernel generation), tunes the variants against
//! a 90% target output quality on the simulated GTX 560, and reports the
//! chosen kernel, its speedup, and its quality.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::{black_scholes, Scale};
use paraprox_runtime::{Deployment, Toq, Tuner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DeviceProfile::gtx560();
    println!("device: {}", profile.name);

    // 1. Build the workload (program + pipeline + training data).
    let workload = black_scholes::build(Scale::Paper, 0);
    println!(
        "workload: {} ({} kernels, {} functions)",
        workload.name,
        workload.program.kernel_count(),
        workload.program.func_count()
    );

    // 2. Compile: detect patterns, generate approximate variants.
    let table = latency_table_for(&profile);
    let compiled = compile(&workload, &table, &CompileOptions::default())?;
    println!("patterns detected: {:?}", compiled.pattern_names());
    println!("variants generated: {}", compiled.variants.len());
    for v in &compiled.variants {
        println!("  - {}", v.label);
    }

    // 3. Tune: profile every variant on training inputs, pick the fastest
    //    one meeting the TOQ.
    let app = paraprox_apps::black_scholes::app();
    let mut device_app =
        DeviceApp::new(Device::new(profile), &compiled, app.input_gen(Scale::Paper));
    let tuner = Tuner {
        toq: Toq::paper_default(),
        training_seeds: (0..5).collect(),
    };
    let report = tuner.tune(&mut device_app)?;
    println!("\ntuning report (TOQ = {}):", tuner.toq);
    for p in &report.profiles {
        println!(
            "  {:<28} quality {:6.2}%  speedup {:5.2}x  {}",
            p.label,
            p.mean_quality,
            p.speedup,
            if p.meets_toq { "ok" } else { "below TOQ" }
        );
    }
    match report.chosen {
        Some(i) => println!(
            "\nchosen: {} ({:.2}x speedup at {:.1}% quality)",
            report.profiles[i].label,
            report.chosen_speedup(),
            report.chosen_quality()
        ),
        None => println!("\nno variant qualified; exact execution retained"),
    }

    // 4. Deploy with the quality watchdog: run 20 production invocations
    //    on fresh inputs, checking quality every 5th.
    let mut deployment = Deployment::new(&report, Toq::paper_default(), 5);
    let mut total_cycles = 0u64;
    for seed in 100..120 {
        let result = deployment.invoke(&mut device_app, seed)?;
        total_cycles += result.cycles;
        if let Some(q) = result.checked_quality {
            println!(
                "  invocation {:>3}: calibration check, quality {:.2}%{}",
                deployment.invocations(),
                q,
                if result.backed_off {
                    " -> backed off"
                } else {
                    ""
                }
            );
        }
    }
    println!(
        "deployed 20 invocations, mean cycles {} (variant {:?})",
        total_cycles / 20,
        deployment.current_variant()
    );
    Ok(())
}
