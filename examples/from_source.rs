//! The full paper pipeline from *source code*: parse a CUDA-flavored
//! kernel string, detect its pattern, generate approximate variants, and
//! tune — no builder API in sight. This mirrors how Paraprox sits on
//! Clang's AST in the original system.
//!
//! Run with:
//! ```sh
//! cargo run --release --example from_source
//! ```

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox::{Metric, Workload};
use paraprox_ir::Scalar;
use paraprox_runtime::{Toq, Tuner};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

const SOURCE: &str = r#"
// Sigmoid-bump scoring function: division + exponentials make it a
// memoization candidate under Eq. (1).
__device__ float score(float x, float sharpness) {
    float e = expf(-sharpness * x);
    float sig = 1.0f / (1.0f + e);
    float bump = sig * sig * (3.0f - 2.0f * sig);
    return bump / (1.0f + 0.1f * x * x);
}

__global__ void score_all(float* values, float* out, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {
        out[gid] = score(values[gid], 4.0f);
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the kernel source.
    let program = paraprox_lang::parse_program(SOURCE)?;
    println!(
        "parsed {} function(s), {} kernel(s):\n",
        program.func_count(),
        program.kernel_count()
    );
    println!("{program}");

    // 2. Wrap it into a workload: pipeline, metric, training data.
    const N: usize = 4096;
    let n = N;
    fn gen_values(seed: u64) -> Vec<f32> {
        let mut rng = paraprox_prng::Rng::seed_from_u64(seed);
        (0..N).map(|_| rng.random_range(-2.0f32..2.0)).collect()
    }
    let kernel = program.kernel_by_name("score_all")?;
    let func = program.func_by_name("score")?;
    let mut pipeline = Pipeline::default();
    let values = pipeline.add_buffer(BufferSpec::f32("values", gen_values(0)));
    let out = pipeline.add_buffer(BufferSpec::zeroed_f32("out", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / 64),
        block: Dim2::linear(64),
        args: vec![
            PlanArg::Buffer(values),
            PlanArg::Buffer(out),
            PlanArg::Scalar(Scalar::I32(n as i32)),
        ],
    });
    pipeline.outputs = vec![out];
    let mut trng = paraprox_prng::Rng::seed_from_u64(0x5C0);
    let training: Vec<Vec<Scalar>> = (0..128)
        .map(|_| {
            vec![
                Scalar::F32(trng.random_range(-2.0f32..2.0)),
                Scalar::F32(4.0),
            ]
        })
        .collect();
    let workload = Workload::new("score_all", program, pipeline, Metric::MeanRelative)
        .with_training(func, training)
        .with_input_slots(vec![values]);

    // 3. Compile + tune on the simulated GPU.
    let profile = DeviceProfile::gtx560();
    let compiled = compile(
        &workload,
        &latency_table_for(&profile),
        &CompileOptions::default(),
    )?;
    println!(
        "patterns: {:?}; variants: {}",
        compiled.pattern_names(),
        compiled.variants.len()
    );
    let mut app = DeviceApp::new(
        Device::new(profile),
        &compiled,
        Box::new(move |seed| vec![BufferInit::F32(gen_values(seed))]),
    );
    let report = Tuner {
        toq: Toq::paper_default(),
        training_seeds: (0..4).collect(),
    }
    .tune(&mut app)?;
    for p in &report.profiles {
        println!(
            "  {:<28} quality {:6.2}%  speedup {:5.2}x",
            p.label, p.mean_quality, p.speedup
        );
    }
    match report.chosen {
        Some(i) => println!(
            "\nchosen: {} — a kernel written as source text, approximated automatically",
            report.profiles[i].label
        ),
        None => println!("\nno qualifying variant"),
    }
    Ok(())
}
