//! Image-processing scenario: explore the stencil approximation's tuning
//! knobs (scheme × reaching distance) on the 3×3 mean filter, the way the
//! paper's §3.2 describes them — including what each scheme does to the
//! generated kernel.
//!
//! Run with:
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use paraprox::{Device, DeviceProfile};
use paraprox_approx::{approximate_stencil, StencilScheme};
use paraprox_apps::{mean_filter, Scale};
use paraprox_ir::count_ops;
use paraprox_patterns::stencil::find_stencils;
use paraprox_quality::Metric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = mean_filter::build(Scale::Paper, 7);
    let kernel_id = workload.program.kernel_by_name("mean3x3")?;

    // 1. Detect the tile.
    let candidates = find_stencils(workload.program.kernel(kernel_id));
    let cand = candidates.first().expect("mean filter has a 3x3 tile");
    println!(
        "detected {}x{} tile over buffer {:?} with {} accesses",
        cand.tile_h,
        cand.tile_w,
        cand.buffer,
        cand.offsets.len()
    );
    let exact_loads = count_ops(&workload.program.kernel(kernel_id).body).loads;
    println!("exact kernel issues {exact_loads} loads per thread\n");

    // 2. Run the exact pipeline once as the quality baseline.
    let profile = DeviceProfile::gtx560();
    let mut device = Device::new(profile.clone());
    let exact = workload.pipeline.execute(&mut device, &workload.program)?;

    // 3. Sweep every scheme x reaching distance.
    println!(
        "{:<10} {:>6} {:>8} {:>9} {:>9}",
        "scheme", "reach", "loads", "quality", "speedup"
    );
    for scheme in [
        StencilScheme::Center,
        StencilScheme::Row,
        StencilScheme::Column,
    ] {
        for reach in [1u32, 2] {
            let approx_program =
                approximate_stencil(&workload.program, kernel_id, cand, scheme, reach)?;
            let loads = count_ops(&approx_program.kernel(kernel_id).body).loads;
            let run = workload.pipeline.execute(&mut device, &approx_program)?;
            let quality = Metric::MeanRelative.quality(&exact.flat_output(), &run.flat_output());
            let speedup = exact.stats.total_cycles() as f64 / run.stats.total_cycles() as f64;
            println!(
                "{:<10} {:>6} {:>8} {:>8.2}% {:>8.2}x",
                scheme.label(),
                reach,
                loads,
                quality,
                speedup
            );
        }
    }
    println!(
        "\ncenter collapses the whole tile to one access (paper Fig. 6a); row/column\n\
         keep one line of the tile (Figs. 6b/6c). The load counts above are the\n\
         rewritten kernel's actual per-thread memory instructions."
    );
    Ok(())
}
