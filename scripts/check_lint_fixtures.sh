#!/usr/bin/env bash
# Meta-lint: every error-severity lint code registered in
# error_lint_codes() (crates/analysis/src/diag.rs) must ship with both a
# positive and a negative fixture in crates/analysis/tests/lints.rs,
# marked by `// lint-fixture: <code> positive` / `... negative` comments
# on the covering tests. A lint that can fail a build must itself be
# pinned in both directions before it ships.
set -euo pipefail
cd "$(dirname "$0")/.."

registry=crates/analysis/src/diag.rs
fixtures=crates/analysis/tests/lints.rs

# Extract the string literals from the error_lint_codes() body.
codes=$(sed -n '/pub fn error_lint_codes/,/^}/p' "$registry" |
    grep -o '"[a-z][a-z-]*"' | tr -d '"')
if [ -z "$codes" ]; then
    echo "check_lint_fixtures: failed to parse any codes from $registry" >&2
    exit 1
fi

fail=0
for code in $codes; do
    for side in positive negative; do
        if ! grep -q "^// lint-fixture: $code $side\$" "$fixtures"; then
            echo "check_lint_fixtures: error lint \`$code\` has no $side" \
                "fixture marker in $fixtures" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "check_lint_fixtures: FAIL — every error-severity lint needs a" \
        "tripping fixture and a minimally-different clean twin" >&2
    exit 1
fi
echo "check_lint_fixtures: OK ($(echo "$codes" | wc -w) codes, both directions)"
