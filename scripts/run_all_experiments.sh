#!/usr/bin/env bash
# Regenerate every table/figure/ablation of EXPERIMENTS.md into results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
bins=(table1 fig04_bit_tuning fig05_pixel_similarity fig11_speedup fig12_tradeoff
      fig13_error_cdf fig14_one_size fig15_nearest_linear fig16_table_location
      fig17_serialization fig18_scan_cascade ablation_adjustment ablation_cse
      ablation_bit_tuning)
for b in "${bins[@]}"; do
    echo "== $b"
    cargo run --release -q -p paraprox-bench --bin "$b" | tee "results/$b.txt"
done
echo "all experiment outputs written to results/"
