#!/usr/bin/env bash
# Full local verification: formatting, release build, the complete
# workspace test suite, clippy with warnings denied, and a smoke run of
# the interpreter-engine benchmark (which asserts bit-identity between
# the bytecode engine and the tree-walking oracle on all 13 apps).
# Everything runs offline (the workspace has no external dependencies),
# so this works in sandboxed CI.
#
# usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> check_lint_fixtures (every error-severity lint has a fixture pair)"
# Meta-lint: each code in error_lint_codes() must have a positive and a
# negative fixture marker in crates/analysis/tests/lints.rs, so an
# error-severity lint can never ship untested in either direction.
scripts/check_lint_fixtures.sh

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1, root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> paraprox-cli analyze smoke (13 apps, test scale, JSON partition gate)"
# Machine-readable pass over every app: the analyze command itself exits
# non-zero on error-severity findings, and the JSON is additionally
# asserted to report zero findings of any severity and zero Critical
# buffers placed in approximate memory.
for app in "Black" "Quasi" "Gamma" "Box" "HotSpot" "Convolution" "Gaussian" "Mean" "Matrix" "Image" "Naive" "Kernel Density" "Cumulative"; do
  out="$(cargo run --release -q -p paraprox-cli -- analyze "$app" --scale test --json)"
  case "$out" in
    *'"findings":[],"errors":0,"warnings":0,"misplaced":0'*) ;;
    *)
      echo "FAIL: analyze --json for '$app' reports findings or misplacements:" >&2
      echo "$out" >&2
      exit 1
      ;;
  esac
done

echo "==> bench_interp --smoke (engine bit-identity + perf gate: geomean >= 1.0x)"
# bench_interp --smoke exits non-zero when the bytecode engine's geomean
# host speedup over the tree-walker drops below parity, so an interpreter
# performance regression fails verification here.
(cd target && cargo run --release -p paraprox-bench --bin bench_interp -- --smoke)

echo "==> bench_approxmem --smoke (tolerant auto-placement lint-clean + rate-0 bit-identity)"
# bench_approxmem --smoke exits non-zero when the partition-driven
# auto-placement trips the approx-placement lint on any app, or when the
# approximate placement at rate 0 is not bit-identical to the all-exact
# run — either would mean the criticality partition or the injection
# path regressed.
(cd target && cargo run --release -p paraprox-bench --bin bench_approxmem -- --smoke)

echo "==> bench_errorprop --smoke (static bounds sound on all apps, >= 1 app prunes calibration)"
# bench_errorprop --smoke exits non-zero when any measured rung error
# exceeds its static error-propagation bound (a soundness violation of
# the abstract interpreter), when a static prune would lose a rung that
# dynamic tuning deploys, or when no app prunes at least one rung before
# measurement — the analysis must stay sound *and* keep paying for
# itself in skipped calibration launches.
(cd target && cargo run --release -p paraprox-bench --bin bench_errorprop -- --smoke)

echo "==> paraprox-cli inspect-schedule smoke (iterative apps: every preset admitted by the gate)"
# inspect --schedule prints the per-iteration plan and then runs the
# static-analysis gate under the loop's launch contexts; it exits
# non-zero on a refusal, so a gating regression on any preset rung of
# any iterative app fails verification here.
for app in jacobi sobel; do
  for sched in exact sampled-check reach-ramp trend-exit aggressive; do
    cargo run --release -q -p paraprox-cli -- inspect "$app" --schedule "$sched" --scale test >/dev/null
  done
done

echo "==> bench_iter --smoke (iterative loops: exact converges + replays bit-identical, best schedule >= 1.3x within TOQ)"
# bench_iter --smoke exits non-zero when the exact convergence loop hits
# the iteration cap, when replaying a schedule on the same seed is not
# bit-identical, or when no approximate schedule reaches 1.3x fewer
# cycles than the exact loop within the default 90% TOQ.
(cd target && cargo run --release -p paraprox-bench --bin bench_iter -- --smoke)

echo "==> paraprox-cli serve smoke (drift -> back-off -> re-promotion, both profiles)"
for dev in gpu cpu; do
  cargo run --release -q -p paraprox-cli -- serve --device "$dev" --scale test \
    --requests 40 --drift-at 10 --drift-len 12 --check-every 4 --promote-after 2 \
    --shards 2 --batch-window 8
done

echo "==> bench_serve --smoke (serving engine perf gate: batched >= 0.90x unbatched)"
# bench_serve --smoke exits non-zero when the sharded+batched engine's
# closed-loop throughput drops below 0.90x of the single-shard unbatched
# baseline on the same seeded stream — headroom for wall-clock noise on
# small hosts, while a real serving-path performance regression still
# fails verification here.
(cd target && cargo run --release -p paraprox-bench --bin bench_serve -- --smoke)

echo "==> verify OK"
