#!/usr/bin/env bash
# Full local verification: release build, the complete workspace test
# suite, and clippy with warnings denied. Everything runs offline (the
# workspace has no external dependencies), so this works in sandboxed CI.
#
# usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1, root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
