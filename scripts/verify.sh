#!/usr/bin/env bash
# Full local verification: formatting, release build, the complete
# workspace test suite, clippy with warnings denied, and a smoke run of
# the interpreter-engine benchmark (which asserts bit-identity between
# the bytecode engine and the tree-walking oracle on all 13 apps).
# Everything runs offline (the workspace has no external dependencies),
# so this works in sandboxed CI.
#
# usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1, root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> paraprox-cli analyze smoke (13 apps, test scale)"
for app in "Black" "Quasi" "Gamma" "Box" "HotSpot" "Convolution" "Gaussian" "Mean" "Matrix" "Image" "Naive" "Kernel Density" "Cumulative"; do
  cargo run --release -q -p paraprox-cli -- analyze "$app" --scale test
done

echo "==> bench_interp --smoke (engine bit-identity + perf gate: geomean >= 1.0x)"
# bench_interp --smoke exits non-zero when the bytecode engine's geomean
# host speedup over the tree-walker drops below parity, so an interpreter
# performance regression fails verification here.
(cd target && cargo run --release -p paraprox-bench --bin bench_interp -- --smoke)

echo "==> paraprox-cli serve smoke (drift -> back-off -> re-promotion, both profiles)"
for dev in gpu cpu; do
  cargo run --release -q -p paraprox-cli -- serve --device "$dev" --scale test \
    --requests 40 --drift-at 10 --drift-len 12 --check-every 4 --promote-after 2 \
    --shards 2 --batch-window 8
done

echo "==> bench_serve --smoke (serving engine perf gate: batched >= unbatched)"
# bench_serve --smoke exits non-zero when the sharded+batched engine's
# closed-loop throughput drops below the single-shard unbatched baseline
# on the same seeded stream, so a serving-path performance regression
# fails verification here.
(cd target && cargo run --release -p paraprox-bench --bin bench_serve -- --smoke)

echo "==> verify OK"
