//! Workspace façade for the Paraprox reproduction.
//!
//! This crate exists to host the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the member crates, most importantly [`paraprox`].
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use paraprox;
pub use paraprox_approx as approx;
pub use paraprox_apps as apps;
pub use paraprox_ir as ir;
pub use paraprox_iter as iter;
pub use paraprox_lang as lang;
pub use paraprox_patterns as patterns;
pub use paraprox_quality as quality;
pub use paraprox_runtime as runtime;
pub use paraprox_vgpu as vgpu;
