//! Workspace-level integration tests: the full Paraprox flow — build →
//! detect → rewrite → tune → deploy — for every benchmark application, on
//! both device profiles, at test scale.

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::{registry, Scale};
use paraprox_runtime::{Deployment, Toq, Tuner};

fn tune(
    app: &paraprox_apps::App,
    profile: DeviceProfile,
) -> (paraprox_runtime::TuneReport, DeviceApp) {
    let workload = (app.build)(Scale::Test, 0);
    let table = latency_table_for(&profile);
    let compiled = compile(&workload, &table, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", app.spec.name));
    let mut device_app =
        DeviceApp::new(Device::new(profile), &compiled, app.input_gen(Scale::Test));
    let tuner = Tuner {
        toq: Toq::paper_default(),
        training_seeds: vec![0, 1],
    };
    let report = tuner
        .tune(&mut device_app)
        .unwrap_or_else(|e| panic!("{}: tuning failed: {e}", app.spec.name));
    (report, device_app)
}

#[test]
fn every_app_generates_variants_and_tunes_on_gpu() {
    for app in registry() {
        let (report, _) = tune(&app, DeviceProfile::gtx560());
        assert!(
            !report.profiles.is_empty(),
            "{}: no variants generated",
            app.spec.name
        );
        // Whatever is chosen must respect the TOQ and actually be faster.
        if let Some(i) = report.chosen {
            let p = &report.profiles[i];
            assert!(
                p.meets_toq,
                "{}: chosen variant violates TOQ",
                app.spec.name
            );
            assert!(
                p.speedup > 1.0,
                "{}: chosen variant is no faster ({}x)",
                app.spec.name,
                p.speedup
            );
        }
    }
}

#[test]
fn most_apps_find_a_qualifying_variant_on_both_devices() {
    // At test scale a couple of apps may legitimately fall back to exact
    // (smaller inputs mean relatively larger sampling error), but the
    // majority must approximate successfully on both devices.
    for profile in [DeviceProfile::gtx560(), DeviceProfile::core_i7_965()] {
        let mut chosen = 0;
        let mut total = 0;
        for app in registry() {
            let (report, _) = tune(&app, profile.clone());
            total += 1;
            if report.chosen.is_some() {
                chosen += 1;
            }
        }
        assert!(
            chosen * 10 >= total * 7,
            "only {chosen}/{total} apps approximated on {}",
            profile.name
        );
    }
}

#[test]
fn deployment_watchdog_stays_healthy_on_fresh_inputs() {
    let app = paraprox_apps::find("BlackScholes").expect("app");
    let (report, mut device_app) = tune(&app, DeviceProfile::gtx560());
    assert!(report.chosen.is_some(), "BlackScholes must approximate");
    let mut deployment = Deployment::new(&report, Toq::paper_default(), 3);
    for seed in 50..65u64 {
        let result = deployment.invoke(&mut device_app, seed).expect("invoke");
        if let Some(q) = result.checked_quality {
            assert!(q > 80.0, "quality collapsed to {q}");
        }
    }
    // Training distribution == deployment distribution: no back-off.
    assert!(
        deployment.current_variant().is_some(),
        "watchdog should not have exhausted the ladder"
    );
}

#[test]
fn approximate_outputs_track_exact_outputs_in_magnitude() {
    use paraprox_runtime::Approximable;
    // Guards against adjustment bugs (e.g. double-scaled reductions): the
    // chosen variant's output mean must be within 25% of the exact mean.
    for app in registry() {
        let (report, mut device_app) = tune(&app, DeviceProfile::gtx560());
        let Some(chosen) = report.chosen else {
            continue;
        };
        let exact = device_app.run_exact(9).expect("exact");
        let approx = device_app.run_variant(chosen, 9).expect("variant");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let em = mean(&exact.output);
        let am = mean(&approx.output);
        assert!(
            (am - em).abs() <= 0.25 * em.abs().max(1e-9),
            "{}: mean drifted {em} -> {am}",
            app.spec.name
        );
    }
}

#[test]
fn cross_device_shapes_match_the_paper() {
    // The qualitative cross-platform observations of paper §4.3 that our
    // cost model encodes structurally.
    let gpu = DeviceProfile::gtx560();
    let cpu = DeviceProfile::core_i7_965();

    // Naive Bayes: atomics make the GPU exact version slow, so the GPU
    // gains at least as much as the CPU.
    let nb = paraprox_apps::find("Naive Bayes").expect("app");
    let (gpu_report, _) = tune(&nb, gpu.clone());
    let (cpu_report, _) = tune(&nb, cpu.clone());
    assert!(
        gpu_report.chosen_speedup() >= 0.9 * cpu_report.chosen_speedup(),
        "NaiveBayes: GPU {}x should be at least comparable to CPU {}x",
        gpu_report.chosen_speedup(),
        cpu_report.chosen_speedup()
    );

    // KDE: exp is SFU-cheap on the GPU, so skipping exp-heavy iterations
    // helps the CPU at least as much.
    let kde = paraprox_apps::find("Kernel Density").expect("app");
    let (gpu_report, _) = tune(&kde, gpu);
    let (cpu_report, _) = tune(&kde, cpu);
    assert!(
        cpu_report.chosen_speedup() >= 0.9 * gpu_report.chosen_speedup(),
        "KDE: CPU {}x should be at least comparable to GPU {}x",
        cpu_report.chosen_speedup(),
        gpu_report.chosen_speedup()
    );
}
