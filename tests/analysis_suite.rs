//! Integration tests for the static-analysis suite (tier-2).
//!
//! Two soundness obligations, from opposite directions:
//!
//! * **No false positives on real code**: every kernel of the 13 paper
//!   applications is lint-clean under its real launch shapes.
//! * **No false negatives on racy code** (see `differential_races`): every
//!   kernel that *dynamically* diverges when the vGPU's intra-block store
//!   schedule is permuted must have been statically flagged.

use paraprox::analyze_workload;
use paraprox_analysis::{analyze_kernel, LaunchContext, Severity};
use paraprox_apps::{registry, Scale};
use paraprox_ir::{Expr, KernelBuilder, KernelId, MemSpace, Program, Ty};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, ExecEngine};

/// All 13 exact applications report zero diagnostics — not even warnings.
/// The analyses are conservative, so this is the precision guarantee that
/// keeps the lint suite usable as a compile gate.
#[test]
fn all_thirteen_apps_are_lint_clean() {
    for scale in [Scale::Test, Scale::Paper] {
        for app in registry() {
            let workload = (app.build)(scale, 0);
            let diags = analyze_workload(&workload);
            assert!(
                diags.is_empty(),
                "{} ({scale:?}) has {} finding(s):\n{}",
                app.spec.name,
                diags.len(),
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Differential soundness: static verdict vs. dynamic schedule permutation
// ---------------------------------------------------------------------------
//
// `Device::set_schedule_seed` permutes the order in which the lanes of a
// block apply their stores. Under the vGPU's lockstep semantics the only
// dynamically observable intra-block races are same-statement write-write
// conflicts on shared memory — exactly the conflicts the static detector
// searches for. So the harness runs a zoo of fixture kernels under several
// permuted schedules and asserts the one-directional soundness claim:
// **every kernel whose output diverges between schedules was statically
// flagged**. (The converse does not hold — the detector also flags races,
// e.g. missing-barrier read-write conflicts, that lockstep execution
// happens to hide — so clean fixtures only assert schedule invariance.)

/// One racy/clean fixture kernel plus the launch it is exercised under.
struct Fixture {
    name: &'static str,
    program: Program,
    kernel: KernelId,
    /// Output buffer length, elements (single i32 global buffer, arg 0).
    out_len: usize,
}

fn fixture(name: &'static str, build: impl FnOnce(&mut KernelBuilder)) -> Fixture {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new(name);
    build(&mut kb);
    let kernel = program.add_kernel(kb.finish());
    Fixture {
        name,
        program,
        kernel,
        out_len: 32,
    }
}

/// The fixture zoo: every schedule-divergent kernel here must be caught
/// statically; the rest must stay bit-identical across schedules.
fn fixtures() -> Vec<Fixture> {
    vec![
        // Classic last-writer race with an affine witness: every lane
        // stores to shared slot 0, the winner is schedule-dependent.
        fixture("racy_const_slot", |kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let s = kb.shared_array("s", Ty::I32, 1);
            let tx = kb.let_("tx", KernelBuilder::thread_id_x());
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            kb.store(s, Expr::i32(0), tx);
            kb.sync();
            kb.store(out, gid, kb.load(s, Expr::i32(0)));
        }),
        // Non-affine index (`tx % 16`): lanes k and k+16 collide on slot k.
        // The detector cannot produce a witness, so it must fall back to a
        // conservative flag — and the kernel really does diverge.
        fixture("racy_modulo_slot", |kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let s = kb.shared_array("s", Ty::I32, 16);
            let tx = kb.let_("tx", KernelBuilder::thread_id_x());
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            let slot = kb.let_("slot", tx.clone().rem(Expr::i32(16)));
            kb.store(s, slot.clone(), tx);
            kb.sync();
            kb.store(out, gid, kb.load(s, slot));
        }),
        // Clean: every lane owns its own slot throughout.
        fixture("clean_private_slots", |kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let s = kb.shared_array("s", Ty::I32, 32);
            let tx = kb.let_("tx", KernelBuilder::thread_id_x());
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            kb.store(s, tx.clone(), tx.clone() * Expr::i32(3));
            kb.sync();
            kb.store(out, gid, kb.load(s, tx));
        }),
        // Clean: neighbor exchange, but correctly separated by a barrier.
        fixture("clean_neighbor_after_sync", |kb| {
            let out = kb.buffer("out", Ty::I32, MemSpace::Global);
            let s = kb.shared_array("s", Ty::I32, 32);
            let tx = kb.let_("tx", KernelBuilder::thread_id_x());
            let gid = kb.let_("gid", KernelBuilder::global_id_x());
            kb.store(s, tx.clone(), tx.clone() + Expr::i32(100));
            kb.sync();
            let left = kb.let_("left", (tx.clone() + Expr::i32(31)).rem(Expr::i32(32)));
            kb.store(out, gid, kb.load(s, left));
        }),
    ]
}

/// Run a fixture under one store schedule; returns the output buffer.
fn run_fixture(fx: &Fixture, seed: Option<u64>) -> Vec<i32> {
    let mut device = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk));
    device.set_schedule_seed(seed);
    let out = device.alloc_i32(MemSpace::Global, &vec![0; fx.out_len]);
    device
        .launch(
            &fx.program,
            fx.kernel,
            Dim2::linear(1),
            Dim2::linear(fx.out_len),
            &[out.into()],
        )
        .unwrap();
    device.read_i32(out).unwrap()
}

/// Statically analyze a fixture under the same launch shape the dynamic
/// runs use; true when any race diagnostic (warning or error) fires.
fn statically_flagged(fx: &Fixture) -> bool {
    let mut ctx = LaunchContext::with_dims((1, 1), (fx.out_len as u32, 1));
    ctx.buffer_len.push(Some(fx.out_len));
    ctx.scalar.push(None);
    analyze_kernel(&fx.program, fx.kernel, Some(&ctx))
        .iter()
        .any(|d| d.severity == Severity::Error || d.severity == Severity::Warning)
}

/// Every dynamically-observed schedule divergence was statically flagged,
/// and the two racy fixtures really do diverge (the harness is not
/// vacuous). Statically-clean fixtures must be schedule-invariant.
#[test]
fn differential_races() {
    let mut divergent = Vec::new();
    for fx in fixtures() {
        let baseline = run_fixture(&fx, None);
        let diverges = (1..=4u64).any(|seed| run_fixture(&fx, Some(seed)) != baseline);
        let flagged = statically_flagged(&fx);
        if diverges {
            divergent.push(fx.name);
            assert!(
                flagged,
                "`{}` diverges under permuted store schedules but the race \
                 detector did not flag it (missed race — soundness hole)",
                fx.name
            );
        }
        if !flagged {
            assert!(
                !diverges,
                "`{}` was reported clean yet its output depends on the \
                 store schedule",
                fx.name
            );
        }
    }
    assert_eq!(
        divergent,
        vec!["racy_const_slot", "racy_modulo_slot"],
        "the racy fixtures should actually exhibit their races dynamically"
    );
}

/// The 13 paper applications are statically clean, so their pipelines must
/// be bit-identical under any store schedule — the dynamic half of the
/// precision guarantee in `all_thirteen_apps_are_lint_clean`.
#[test]
fn apps_are_schedule_invariant() {
    for app in registry() {
        let workload = (app.build)(Scale::Test, 0);
        let mut outputs = Vec::new();
        for seed in [None, Some(11), Some(12)] {
            let mut device = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk));
            device.set_schedule_seed(seed);
            let run = workload
                .pipeline
                .execute(&mut device, &workload.program)
                .unwrap();
            outputs.push(run.flat_output());
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "{} output changed under a permuted store schedule despite the \
             static analyses reporting it race-free",
            app.spec.name
        );
    }
}
