//! Randomized tests (seeded in-repo PRNG) on the core invariants of the
//! reproduction: quantization, metrics, affine decomposition, reduction
//! adjustment, scan prefix structure, and the cache model.

use paraprox_approx::InputRange;
use paraprox_ir::{BinOp, CmpOp, Expr, Scalar, UnOp};
use paraprox_patterns::affine::{decompose, LinComb};
use paraprox_prng::Rng;
use paraprox_quality::{ErrorCdf, Metric};

/// Quantization levels are always in range and monotone in the value.
#[test]
fn quantization_levels_in_range_and_monotone() {
    let mut r = Rng::seed_from_u64(0x11);
    for _ in 0..256 {
        let min = r.random_range(-1000.0f32..1000.0);
        let width = r.random_range(0.001f32..1000.0);
        let q = r.random_range(1u32..16);
        let a = r.random_range(-2000.0f32..2000.0);
        let b = r.random_range(-2000.0f32..2000.0);
        let range = InputRange {
            min,
            max: min + width,
        };
        let la = range.level_of(a, q);
        let lb = range.level_of(b, q);
        assert!(la < (1u64 << q) as u32);
        assert!(lb < (1u64 << q) as u32);
        if a <= b {
            assert!(la <= lb, "levels must be monotone: {a}->{la}, {b}->{lb}");
        }
    }
}

/// A representative value re-quantizes to its own level, and lies
/// inside the input range.
#[test]
fn representative_roundtrip() {
    let mut r = Rng::seed_from_u64(0x22);
    for _ in 0..256 {
        let min = r.random_range(-100.0f32..100.0);
        let width = r.random_range(0.01f32..100.0);
        let q = r.random_range(1u32..12);
        let level_frac = r.random_range(0.0f64..1.0);
        let range = InputRange {
            min,
            max: min + width,
        };
        let levels = 1u64 << q;
        let level = ((level_frac * levels as f64) as u64).min(levels - 1) as u32;
        let rep = range.rep_of(level, q);
        assert!(rep >= range.min && rep <= range.max);
        assert_eq!(range.level_of(rep, q), level);
    }
}

/// Quality is 100% iff outputs match; always within [0, 100].
#[test]
fn metric_quality_bounds() {
    let mut r = Rng::seed_from_u64(0x33);
    for _ in 0..64 {
        let n = r.random_range(1usize..64);
        let values: Vec<f64> = (0..n).map(|_| r.random_range(-1e3f64..1e3)).collect();
        for m in [Metric::L1Norm, Metric::L2Norm, Metric::MeanRelative] {
            let q_same = m.quality(&values, &values);
            assert!((q_same - 100.0).abs() < 1e-9);
            let perturbed: Vec<f64> = values.iter().map(|v| v * 1.01 + 0.01).collect();
            let q = m.quality(&values, &perturbed);
            assert!((0.0..=100.0).contains(&q));
        }
    }
}

/// The error CDF is monotone and normalized.
#[test]
fn cdf_monotone_normalized() {
    let mut r = Rng::seed_from_u64(0x44);
    for _ in 0..64 {
        let n = r.random_range(1usize..128);
        let errors: Vec<f64> = (0..n).map(|_| r.random_range(0.0f64..1.0)).collect();
        let cdf = ErrorCdf::new(errors);
        let series = cdf.series(20);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}

/// Affine decomposition is a semantic identity: rebuilding the linear
/// combination evaluates to the same value as the original expression.
#[test]
fn lincomb_roundtrip_preserves_value() {
    let mut r = Rng::seed_from_u64(0x55);
    for _ in 0..256 {
        let a = r.random_range(-50i32..50);
        let b = r.random_range(-50i32..50);
        let c = r.random_range(-50i32..50);
        let x = r.random_range(-100i32..100);
        let w = r.random_range(-100i32..100);
        // Build (x + a) * w + b * x + c with x, w as opaque "variables"
        // represented by constants wrapped in casts (so decompose treats
        // them as opaque terms but evaluation still works).
        let xv = Expr::Cast(paraprox_ir::Ty::I32, Box::new(Expr::i32(x)));
        let wv = Expr::Cast(paraprox_ir::Ty::I32, Box::new(Expr::i32(w)));
        let original =
            (xv.clone() + Expr::i32(a)) * wv.clone() + Expr::i32(b) * xv.clone() + Expr::i32(c);
        let comb: LinComb = decompose(&original);
        let rebuilt = comb.to_expr();
        let program = paraprox_ir::Program::new();
        let v1 = paraprox_ir::eval_expr_pure(&program, &original)
            .unwrap()
            .as_i32()
            .unwrap();
        let v2 = paraprox_ir::eval_expr_pure(&program, &rebuilt)
            .unwrap()
            .as_i32()
            .unwrap();
        assert_eq!(v1, v2);
    }
}

/// Scalar binary ops on same-typed operands never panic, and produce
/// the operand type (comparisons produce bool).
#[test]
fn scalar_ops_type_stable() {
    let mut r = Rng::seed_from_u64(0x66);
    for _ in 0..512 {
        let a = r.random_range(-1e30f32..1e30);
        let b = r.random_range(-1e30f32..1e30);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max] {
            let out = op.apply(Scalar::F32(a), Scalar::F32(b)).unwrap();
            assert_eq!(out.ty(), paraprox_ir::Ty::F32);
        }
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
            let out = op.apply(Scalar::F32(a), Scalar::F32(b)).unwrap();
            assert_eq!(out.ty(), paraprox_ir::Ty::Bool);
        }
        let neg = UnOp::Neg.apply(Scalar::F32(a)).unwrap();
        assert_eq!(neg, Scalar::F32(-a));
    }
}

/// Reduction sampling + adjustment is exact for constant arrays
/// (the paper's uniform-distribution assumption, in the limit).
#[test]
fn adjustment_exact_for_constant_data() {
    let mut r = Rng::seed_from_u64(0x77);
    for _ in 0..128 {
        let value = r.random_range(-100.0f32..100.0);
        let len_pow = r.random_range(3u32..8);
        let skip_pow = r.random_range(1u32..3);
        let n = 1usize << len_pow;
        let skip = 1usize << skip_pow;
        let data = vec![value; n];
        let exact: f32 = data.iter().sum();
        let sampled: f32 = data.iter().step_by(skip).sum::<f32>() * skip as f32;
        assert!((exact - sampled).abs() <= 1e-3 * exact.abs().max(1.0));
    }
}

/// The scan approximation's prediction formula is exact when all
/// subarrays have identical contents.
#[test]
fn scan_prediction_exact_for_identical_subarrays() {
    let mut r = Rng::seed_from_u64(0x88);
    for _ in 0..64 {
        let b = r.random_range(4usize..32);
        let subarray: Vec<f64> = (0..b).map(|_| r.random_range(0.0f64..10.0)).collect();
        let g = r.random_range(4usize..10);
        let skip_frac = r.random_range(1usize..3);
        let skip = (g / (2 * skip_frac)).max(1);
        let kept = g - skip;
        // Full input: g copies of the subarray.
        let input: Vec<f64> = (0..g).flat_map(|_| subarray.iter().copied()).collect();
        // Exact prefix sums.
        let mut exact = Vec::with_capacity(g * b);
        let mut acc = 0.0;
        for v in &input {
            acc += v;
            exact.push(acc);
        }
        // Predicted tail: result of subarray (j - kept) plus the running
        // total of the kept prefix.
        let total_kept = exact[kept * b - 1];
        for j in kept..g {
            let src = j - kept;
            for t in 0..b {
                let predicted = exact[src * b + t] + total_kept;
                let actual = exact[j * b + t];
                assert!(
                    (predicted - actual).abs() < 1e-6 * actual.abs().max(1.0),
                    "block {j} elem {t}: {predicted} vs {actual}"
                );
            }
        }
    }
}

#[test]
fn cache_hit_rate_monotone_in_size() {
    use paraprox_vgpu::{Cache, CacheConfig};
    // A fixed pseudo-random trace; bigger caches never hit less.
    let trace: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 65536).collect();
    let mut prev_hits = 0u64;
    for bytes in [1024usize, 4096, 16384, 65536] {
        let mut cfg = CacheConfig::gpu_l1_16k();
        cfg.l1.bytes = bytes;
        let mut cache = Cache::new(cfg.l1);
        for &addr in &trace {
            cache.access(addr);
        }
        assert!(
            cache.hits() >= prev_hits,
            "{bytes}B cache hit less than a smaller one"
        );
        prev_hits = cache.hits();
    }
}
