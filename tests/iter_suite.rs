//! Integration tests for the iterative loop-of-stencil-reduce subsystem
//! (tier-2): determinism of convergence loops across worker counts and
//! execution engines, and the safety gate's refusals — shown to be
//! justified by a dynamic race witness, not just a static lint.

use paraprox_apps::{iter_registry, IterApp, Scale};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Ty};
use paraprox_iter::{gate_schedule, IterError, IterModel, IterSchedule, ModelParts};
use paraprox_quality::Metric;
use paraprox_vgpu::{ArgValue, Device, DeviceProfile, Dim2, ExecEngine};

/// Run one convergence loop and return the converged field as raw bits.
fn run_bits(
    app: &IterApp,
    schedule: &IterSchedule,
    workers: usize,
    engine: ExecEngine,
    seed: u64,
) -> Vec<u64> {
    let device = Device::new(
        DeviceProfile::gtx560()
            .with_parallelism(workers)
            .with_engine(engine),
    );
    let mut job = app
        .instantiate(Scale::Test, device)
        .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    let out = job
        .run_schedule(schedule, seed)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", app.name, schedule.label));
    out.output.iter().map(|v| v.to_bits()).collect()
}

/// The exact loop is bit-identical at 1, 2, and 4 workers under both
/// execution engines, on every registered iterative app. The loop's
/// convergence decisions feed back into control flow (how many launches
/// run), so any worker-dependent residual would diverge the whole
/// trajectory — this pins the full pipeline, not just one launch.
#[test]
fn exact_loop_bit_identical_across_workers_and_engines() {
    for app in iter_registry() {
        let exact = IterSchedule::exact();
        let baseline = run_bits(&app, &exact, 1, ExecEngine::TreeWalk, 42);
        for engine in [ExecEngine::TreeWalk, ExecEngine::Bytecode] {
            for workers in [1usize, 2, 4] {
                let got = run_bits(&app, &exact, workers, engine, 42);
                assert_eq!(
                    baseline, got,
                    "{}: exact loop diverged at {workers} worker(s) on {engine:?}",
                    app.name
                );
            }
        }
    }
}

/// Approximate schedules are bit-identical for a fixed `(seed, schedule)`
/// at any worker count and engine: the sampled residual checks draw their
/// permutation host-side from the schedule seed, never from execution
/// order.
#[test]
fn approx_schedules_worker_invariant_for_fixed_seed_and_schedule() {
    for app in iter_registry() {
        let cap = (app.spec)(Scale::Test).max_iters;
        for schedule in IterSchedule::presets(cap) {
            if schedule.is_exact() {
                continue;
            }
            let a = run_bits(&app, &schedule, 1, ExecEngine::TreeWalk, 7);
            let b = run_bits(&app, &schedule, 4, ExecEngine::Bytecode, 7);
            assert_eq!(
                a, b,
                "{}/{}: fixed (seed, schedule) must be worker- and engine-invariant",
                app.name, schedule.label
            );
        }
    }
}

/// Different schedule seeds really do sample different residual subsets:
/// the loop may check different residual values and stop at different
/// iterations, but both runs still converge to tolerance.
#[test]
fn schedule_seed_is_part_of_the_schedule_identity() {
    let app = iter_registry().remove(0);
    let cap = (app.spec)(Scale::Test).max_iters;
    let mut schedule = IterSchedule::named("sampled-check", cap).expect("preset exists");
    let device = Device::new(DeviceProfile::gtx560());
    let mut job = app.instantiate(Scale::Test, device).unwrap();
    job.run_schedule(&schedule, 3).unwrap();
    let first = job.last_run().unwrap().clone();
    schedule.seed ^= 0xBEEF;
    job.add_schedule(schedule.clone()).unwrap();
    job.run_schedule(&schedule, 3).unwrap();
    let second = job.last_run().unwrap().clone();
    assert!(first.converged && second.converged);
    assert_ne!(
        first.residual.to_bits(),
        second.residual.to_bits(),
        "different sampling seeds must observe different residual estimates"
    );
}

/// A stencil whose block communicates through one shared slot with no
/// disjoint phases: every lane stores its own field value to `s[0]` in
/// the same statement, then every lane reads it back after the barrier.
/// The winner of the write-write race decides the whole block's output.
fn racy_model() -> IterModel {
    let (w, h) = (64i32, 8i32);
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("racy_step");
    let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
    let next = kb.buffer("next", Ty::F32, MemSpace::Global);
    let s = kb.shared_array("s", Ty::F32, 1);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let i = kb.let_("i", y * Expr::i32(w) + x);
    let v = kb.load(cur, i.clone());
    kb.store(s, Expr::i32(0), v);
    kb.sync();
    let winner = kb.load(s, Expr::i32(0));
    kb.store(next, i, winner);
    let stencil = program.add_kernel(kb.finish());
    IterModel::new(ModelParts {
        name: "racy".to_string(),
        program,
        stencil,
        width: w as usize,
        height: h as usize,
        grid: Dim2::new(4, 1),
        block: Dim2::new(16, 8),
        stencil_scalars: Vec::new(),
        metric: Metric::MeanRelative,
    })
    .unwrap()
}

/// The gate statically refuses the racy model — and the refusal is
/// *justified*: replaying the same launch under permuted intra-block
/// store schedules (the dynamic race witness the vGPU exposes) produces
/// divergent outputs, so no approximation schedule may be built on it.
#[test]
fn refused_schedule_is_statically_rejected_and_dynamically_diverges() {
    let model = racy_model();

    // Static: every schedule (even the exact one) is refused with a
    // race diagnostic on the shared slot.
    let err = gate_schedule(&model, &IterSchedule::exact()).unwrap_err();
    match &err {
        IterError::Refused { label, reasons } => {
            assert_eq!(label, "exact");
            assert!(
                reasons.iter().any(|r| r.contains("race")),
                "refusal must cite the race: {reasons:?}"
            );
        }
        other => panic!("expected refusal, got {other}"),
    }

    // Dynamic: the same launch under different store-application
    // schedules lands different winners in `s[0]`.
    let n = model.elems();
    let field: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let mut outputs: Vec<Vec<u32>> = Vec::new();
    for seed in 1..=4u64 {
        let mut device = Device::new(DeviceProfile::gtx560());
        device.set_schedule_seed(Some(seed));
        let cur = device.alloc_f32(MemSpace::Global, &field);
        let next = device.alloc_f32(MemSpace::Global, &vec![0.0f32; n]);
        device
            .launch(
                &model.program,
                model.stencil,
                model.grid,
                model.block,
                &[ArgValue::Buffer(cur), ArgValue::Buffer(next)],
            )
            .unwrap();
        outputs.push(
            device
                .read_f32(next)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        );
    }
    assert!(
        outputs.iter().any(|o| *o != outputs[0]),
        "a statically-refused schedule must show a dynamic divergence witness"
    );
}

/// The preset ladder passes the gate on every registered app — what the
/// gate admits, the tuner may safely profile.
#[test]
fn preset_ladder_admitted_on_every_registered_app() {
    for app in iter_registry() {
        let model = (app.build)(Scale::Test);
        let cap = (app.spec)(Scale::Test).max_iters;
        for schedule in IterSchedule::presets(cap) {
            gate_schedule(&model, &schedule)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", app.name, schedule.label));
        }
    }
}
