//! Integration tests for the approximate-memory space and the
//! buffer-criticality partition that gates it (tier-2).
//!
//! Mirrors the differential structure of `analysis_suite.rs`, from both
//! directions:
//!
//! * **The gate refuses what it must**: force-placing a Critical buffer
//!   into `MemSpace::Approx` is a compile-time refusal
//!   (`CompileError::Analysis` with an `approx-placement` finding) — and
//!   the refusal is justified, because injecting flips into that buffer
//!   really does corrupt addresses or control flow.
//! * **The gate permits what it may**: the auto-placement (every
//!   partition-Tolerant slot re-spaced) passes the lint on all 13 paper
//!   applications, and at rate 0 is bit-identical to the all-exact run
//!   at every worker count.

use paraprox::{
    analyze_workload, compile, latency_table_for, partition_program, tolerant_buffer_slots,
    CompileError, CompileOptions, Criticality, DeviceApp, DeviceProfile, Workload,
};
use paraprox_apps::{registry, Scale};
use paraprox_ir::{KernelBuilder, MemSpace, Program, Ty};
use paraprox_quality::Metric;
use paraprox_vgpu::{
    BufferSpec, Device, Dim2, ExecEngine, LaunchPlan, Pipeline, PipelineRun, PlanArg,
};

const N: usize = 64;

/// A gather workload: `out[gid] = data[idx[gid]]`. The index buffer is
/// Critical (it forms addresses); `data` and `out` are Tolerant.
fn gather_workload() -> Workload {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("gather");
    let idx = kb.buffer("idx", Ty::I32, MemSpace::Global);
    let data = kb.buffer("data", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let j = kb.let_("j", kb.load(idx, gid.clone()));
    kb.store(out, gid, kb.load(data, j));
    let kernel = program.add_kernel(kb.finish());

    let mut pipeline = Pipeline::default();
    // A permutation of 0..N so every fetch lands in-bounds when exact.
    let indices: Vec<i32> = (0..N as i32).map(|i| (i * 7) % N as i32).collect();
    let data_init: Vec<f32> = (0..N).map(|i| i as f32 * 1.5).collect();
    let idx_b = pipeline.add_buffer(BufferSpec::i32("idx", indices));
    let data_b = pipeline.add_buffer(BufferSpec::f32("data", data_init));
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", N));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(N / 32),
        block: Dim2::linear(32),
        args: vec![
            PlanArg::Buffer(idx_b),
            PlanArg::Buffer(data_b),
            PlanArg::Buffer(out_b),
        ],
    });
    pipeline.outputs.push(out_b);
    Workload::new("gather", program, pipeline, Metric::MeanRelative)
}

fn run_at(workload: &Workload, rate: f64, workers: usize) -> PipelineRun {
    let mut device = Device::new(DeviceProfile::gtx560().with_parallelism(workers));
    device.set_approx_rate(rate);
    device.set_approx_seed(99);
    workload
        .pipeline
        .execute(&mut device, &workload.program)
        .expect("pipeline must execute")
}

fn bits(run: &PipelineRun) -> Vec<Vec<u64>> {
    run.outputs
        .iter()
        .map(|o| o.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// The partition classifies the gather fixture exactly as intended.
#[test]
fn gather_partition_is_as_expected() {
    let w = gather_workload();
    let parts = partition_program(&w.program);
    let verdicts = &parts[0].verdicts;
    assert_eq!(verdicts[0].criticality, Criticality::Critical, "idx");
    assert_eq!(verdicts[1].criticality, Criticality::Tolerant, "data");
    assert_eq!(verdicts[2].criticality, Criticality::Tolerant, "out");
    assert!(
        !verdicts[0].witness.is_empty(),
        "Critical verdicts carry a witness chain"
    );
    assert_eq!(tolerant_buffer_slots(&w, &parts), vec![1, 2]);
}

/// Force-placing the Critical index buffer is statically refused, with
/// the witness chain in the diagnostic.
#[test]
fn critical_placement_is_statically_refused() {
    let mut w = gather_workload();
    w.pipeline.buffers[0] = w.pipeline.buffers[0].clone().with_space(MemSpace::Approx);
    let table = latency_table_for(&DeviceProfile::gtx560());
    match compile(&w, &table, &CompileOptions::minimal()) {
        Err(CompileError::Analysis(diags)) => {
            assert!(
                diags.iter().any(|d| d.code == "approx-placement"),
                "refusal must cite the placement lint: {diags:?}"
            );
        }
        other => panic!("Critical placement must be refused, got {other:?}"),
    }
}

/// ...and the refusal is not paranoia: if the device were allowed to
/// serve the index buffer from approximate memory, injected flips would
/// corrupt addresses — the run either faults out-of-bounds or gathers
/// the wrong elements. This is the dynamic half of the differential
/// argument: the lint refuses exactly the placements that demonstrably
/// break under injection.
#[test]
fn critical_placement_demonstrably_diverges_under_injection() {
    let mut w = gather_workload();
    w.pipeline.buffers[0] = w.pipeline.buffers[0].clone().with_space(MemSpace::Approx);
    let exact = run_at(&gather_workload(), 0.0, 1);
    let mut device = Device::new(DeviceProfile::gtx560());
    device.set_approx_rate(0.25);
    device.set_approx_seed(99);
    let diverged = match w.pipeline.execute(&mut device, &w.program) {
        Err(_) => true, // a flipped index walked out of bounds
        Ok(run) => bits(&run) != bits(&exact),
    };
    assert!(
        diverged,
        "flips in the index buffer must corrupt the gather"
    );
}

/// Tolerant placement at rate 0 is bit-identical to exact, at every
/// worker count and under both engines.
#[test]
fn tolerant_placement_at_rate_zero_is_bit_identical() {
    let exact = bits(&run_at(&gather_workload(), 0.0, 1));
    let mut w = gather_workload();
    for slot in [1usize, 2] {
        w.pipeline.buffers[slot] = w.pipeline.buffers[slot]
            .clone()
            .with_space(MemSpace::Approx);
    }
    for workers in [1usize, 2, 4] {
        for engine in [ExecEngine::TreeWalk, ExecEngine::Bytecode] {
            let mut device = Device::new(
                DeviceProfile::gtx560()
                    .with_parallelism(workers)
                    .with_engine(engine),
            );
            device.set_approx_rate(0.0);
            let run = w.pipeline.execute(&mut device, &w.program).unwrap();
            assert_eq!(
                bits(&run),
                exact,
                "rate-0 tolerant placement diverged ({engine:?}, {workers} workers)"
            );
        }
    }
}

/// Tolerant placement under injection perturbs values but never
/// addresses: the run must complete (no out-of-bounds faults) no matter
/// the rate, because flips are confined to payload data.
#[test]
fn tolerant_placement_never_faults() {
    let mut w = gather_workload();
    for slot in [1usize, 2] {
        w.pipeline.buffers[slot] = w.pipeline.buffers[slot]
            .clone()
            .with_space(MemSpace::Approx);
    }
    for rate in [0.01, 0.25, 1.0] {
        let run = run_at(&w, rate, 1);
        assert_eq!(run.outputs[0].len(), N);
    }
}

/// All 13 paper applications pass the partition lint under the tolerant
/// auto-placement, and that placement is bit-identical to exact at rate 0
/// across worker counts.
#[test]
fn apps_auto_placement_is_clean_and_rate_zero_identical() {
    for app in registry() {
        let mut workload = (app.build)(Scale::Test, 0);
        let exact = bits(&run_at(&workload, 0.0, 1));
        let partition = partition_program(&workload.program);
        let slots = tolerant_buffer_slots(&workload, &partition);
        for &slot in &slots {
            workload.pipeline.buffers[slot] = workload.pipeline.buffers[slot]
                .clone()
                .with_space(MemSpace::Approx);
        }
        let placements: Vec<_> = analyze_workload(&workload)
            .into_iter()
            .filter(|d| d.code == "approx-placement")
            .collect();
        assert!(
            placements.is_empty(),
            "{}: auto-placement tripped the lint: {placements:?}",
            app.spec.name
        );
        for workers in [1usize, 2, 4] {
            let run = run_at(&workload, 0.0, workers);
            assert_eq!(
                bits(&run),
                exact,
                "{}: rate-0 auto-placement diverged at {workers} workers",
                app.spec.name
            );
        }
    }
}

/// Hand-placing a Critical buffer in any app is refused. Uses the first
/// app with a Critical global-buffer launch argument (Naive Bayes'
/// class-count histogram, among others, qualifies).
#[test]
fn apps_critical_placement_is_refused() {
    let mut refused = 0usize;
    for app in registry() {
        let mut workload = (app.build)(Scale::Test, 0);
        let partition = partition_program(&workload.program);
        // Find a pipeline slot feeding a Critical global param.
        let mut target = None;
        'outer: for launch in &workload.pipeline.launches {
            let part = partition.iter().find(|p| p.kernel == launch.kernel);
            for (pi, arg) in launch.args.iter().enumerate() {
                if let PlanArg::Buffer(slot) = arg {
                    let critical = part.is_some_and(|p| {
                        p.verdict(paraprox_ir::MemRef::Param(pi))
                            .is_some_and(|v| v.criticality == Criticality::Critical)
                    });
                    if critical && workload.pipeline.buffers[*slot].space == MemSpace::Global {
                        target = Some(*slot);
                        break 'outer;
                    }
                }
            }
        }
        let Some(slot) = target else { continue };
        workload.pipeline.buffers[slot] = workload.pipeline.buffers[slot]
            .clone()
            .with_space(MemSpace::Approx);
        let table = latency_table_for(&DeviceProfile::gtx560());
        assert!(
            matches!(
                compile(&workload, &table, &CompileOptions::minimal()),
                Err(CompileError::Analysis(_))
            ),
            "{}: Critical placement must be refused",
            app.spec.name
        );
        refused += 1;
    }
    assert!(
        refused >= 3,
        "the refusal check should not be vacuous (got {refused} apps)"
    );
}

/// The error rate rides the tuner's existing ladder: `with_approx_memory`
/// exposes one rung per rate after the rewrite variants, the tuner
/// profiles them like any other candidate, and running an approx rung
/// resets the device's rate afterwards.
#[test]
fn approx_rates_are_tuner_rungs() {
    use paraprox_runtime::{Approximable, Toq, Tuner};
    let app = paraprox_apps::find("mean filter").expect("registered app");
    let workload = (app.build)(Scale::Test, 0);
    let profile = DeviceProfile::gtx560();
    let table = latency_table_for(&profile);
    let compiled = compile(&workload, &table, &CompileOptions::default()).unwrap();

    let base = DeviceApp::new(
        Device::new(profile.clone()),
        &compiled,
        app.input_gen(Scale::Test),
    );
    let base_count = base.variant_count();
    let mut with_mem = DeviceApp::new(Device::new(profile), &compiled, app.input_gen(Scale::Test))
        .with_approx_memory(&compiled, &[1e-4, 1e-2]);
    assert_eq!(with_mem.variant_count(), base_count + 2);
    assert!(with_mem
        .variant_label(base_count)
        .starts_with("approx-mem@"));
    assert!(with_mem
        .variant_label(base_count + 1)
        .starts_with("approx-mem@"));

    let tuner = Tuner {
        toq: Toq::paper_default(),
        training_seeds: vec![0, 1],
    };
    let report = tuner.tune(&mut with_mem).expect("tuning succeeds");
    assert_eq!(
        report.profiles.len(),
        base_count + 2,
        "every rung, including the approx-memory ones, is profiled"
    );
    let mem_rungs: Vec<_> = report
        .profiles
        .iter()
        .filter(|p| p.label.starts_with("approx-mem@"))
        .collect();
    assert_eq!(mem_rungs.len(), 2);
    for p in &mem_rungs {
        assert!(
            p.speedup > 1.0,
            "approx memory must be modeled cheaper ({}: {}x)",
            p.label,
            p.speedup
        );
        assert!(p.mean_quality <= 100.0);
    }
    // The low rate perturbs quality no more than the high rate does.
    assert!(mem_rungs[0].mean_quality >= mem_rungs[1].mean_quality);
}
